"""E4: regenerate Table 2 (the six systems)."""

import pytest

from repro.experiments import table2


def test_bench_table2(benchmark):
    result = benchmark(table2.run)
    print("\n" + result.render())
    assert result.data["srvr1"]["watt"] == 340
    assert result.data["emb2"]["inf_usd"] == pytest.approx(379, abs=1)
