"""E1: regenerate Table 1 (benchmark-suite summary)."""

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark(table1.run)
    print("\n" + result.render())
    assert set(result.data) == {
        "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr",
    }
