"""E8/E9: regenerate Figure 4 (memory-sharing slowdowns + provisioning).

Paper rows at 25% local / random / PCIe x4 (4 us): websearch 4.7%,
webmail 0.1%, ytube 1.4%, mapred-wc 0.2%, mapred-wr 0.7%; provisioning:
static 102%/116%/108%, dynamic 106%/116%/111%.
"""

import pytest

from repro.experiments import figure4


def test_bench_figure4(benchmark, bench_once):
    result = bench_once(benchmark, figure4.run)
    print("\n" + result.render())
    slowdowns = result.data["slowdowns"][0.25]
    assert slowdowns["websearch"]["pcie"] == pytest.approx(0.047, abs=0.015)
    assert slowdowns["webmail"]["pcie"] < 0.005
    prov = result.data["provisioning"]
    assert prov["dynamic"]["perf_per_tco"] == pytest.approx(1.11, abs=0.05)
