"""E12/E13: regenerate Figure 5 (unified designs N1 and N2).

Paper headline: 1.5x (N1) to 2x (N2) average Perf/TCO-$; 2-3.5x (N1) and
3.5-6x (N2) on ytube/mapreduce; webmail degradation; similar gains vs
srvr2/desk baselines.
"""

from repro.experiments import figure5


def test_bench_figure5_sim(benchmark, bench_once):
    result = bench_once(benchmark, figure5.run, method="sim")
    print("\n" + result.render())
    tco = result.data["vs_srvr1"]["Perf/TCO-$"]
    assert tco.hmean("N1") > 1.25
    assert tco.hmean("N2") > 1.35
    for bench in ("ytube", "mapred-wc", "mapred-wr"):
        assert tco.value(bench, "N2") > 3.0
