"""E7: regenerate Figure 3 (cooling architectures).

Paper claims: ~2x cooling efficiency and 320 systems/rack for dual-entry;
~4x and 1250 systems/rack for aggregated microblades; heat pipes at 3x
copper conductivity.
"""

import pytest

from repro.experiments import figure3


def test_bench_figure3(benchmark):
    result = benchmark(figure3.run)
    print("\n" + result.render())
    assert result.data["dual-entry"]["cooling_efficiency"] == pytest.approx(2.0, abs=0.5)
    assert result.data["aggregated-microblade"]["cooling_efficiency"] == pytest.approx(
        4.0, abs=0.6
    )
