"""EXT-2/3/4: extension experiments (ablation, scale-out, diurnal)."""

from repro.experiments import ablation, diurnal, scaleout


def test_bench_ablation(benchmark, bench_once):
    result = bench_once(benchmark, ablation.run, method="analytic")
    print("\n" + result.render())
    contributions = result.data["contributions"]
    assert max(contributions, key=contributions.get) == "N2-no-embedded"


def test_bench_scaleout(benchmark, bench_once):
    result = bench_once(benchmark, scaleout.run)
    print("\n" + result.render())
    eq = result.data["equivalence"]
    assert eq["websearch"]["overhead_ratio"] > eq["websearch"]["naive_ratio"]
    for key, values in result.data["cluster"].items():
        assert values["aggregation"] > 0.85, key


def test_bench_diurnal(benchmark):
    result = benchmark(diurnal.run)
    print("\n" + result.render())
    assert all(v["savings"] > 0 for v in result.data.values())
