"""Benchmark-harness configuration.

Each ``test_bench_*`` module regenerates one paper table/figure under
pytest-benchmark timing and prints the regenerated rows (run with
``pytest benchmarks/ --benchmark-only -s`` to see them).  Heavy
experiments use ``benchmark.pedantic`` with a single round.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (full-pipeline experiments)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    return run_once
