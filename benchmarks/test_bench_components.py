"""Micro-benchmarks of the core machinery (multi-round timings).

Not tied to a paper artifact; these track the performance of the
substrates that every experiment is built on.
"""

import random

from repro.memsim.trace import WORKLOAD_TRACES
from repro.memsim.twolevel import TwoLevelMemorySimulator
from repro.flashcache.models import FlashCachedDiskModel, RemoteSanDiskModel
from repro.platforms.catalog import platform
from repro.platforms.storage import LAPTOP_DISK
from repro.simulator.analytic import AnalyticServerModel
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.base import ResourceDemand
from repro.workloads.suite import make_workload


def test_bench_des_run(benchmark):
    """One closed-loop DES run (websearch on srvr2, 1000 requests)."""
    plat = platform("srvr2")
    workload = make_workload("websearch")
    config = SimConfig(warmup_requests=100, measure_requests=900, seed=2)

    def run():
        return ServerSimulator(plat, workload, population=48, config=config).run()

    result = benchmark(run)
    assert result.throughput_rps > 0


def test_bench_mva_solve(benchmark):
    """Analytic MVA solve for one (platform, workload) pair."""
    model = AnalyticServerModel(platform("desk"), make_workload("webmail"))
    result = benchmark(lambda: model.throughput_rps(population=96))
    assert result > 0


def test_bench_workload_sampling(benchmark):
    """Drawing requests from the calibrated websearch sampler."""
    workload = make_workload("websearch")
    rng = random.Random(1)

    def draw_batch():
        return [workload.sample(rng) for _ in range(500)]

    batch = benchmark(draw_batch)
    assert len(batch) == 500


def test_bench_two_level_memory_trace(benchmark):
    """Trace-driven two-level memory simulation (webmail, short trace)."""
    sim = TwoLevelMemorySimulator(WORKLOAD_TRACES["webmail"], 0.25, policy="random")
    stats = benchmark(lambda: sim.run(60_000))
    assert stats.accesses > 0


def test_bench_flash_cache_lookups(benchmark):
    """Flash-cache service-time computation under Zipf traffic."""
    model = FlashCachedDiskModel(RemoteSanDiskModel(LAPTOP_DISK), "websearch")
    demand = ResourceDemand(disk_ios=1.5, disk_bytes=300_000.0)
    rng = random.Random(3)

    def serve_batch():
        return [model.service_ms(demand, rng) for _ in range(1000)]

    times = benchmark(serve_batch)
    assert len(times) == 1000
