"""VAL-1 and EXT-5/6: validation report, future composition, power check."""

from repro.experiments import future, power_accounting, validation


def test_bench_validation_report(benchmark, bench_once):
    result = bench_once(benchmark, validation.run)
    print("\n" + result.render())
    # Every compared block produced deltas.
    assert all(result.data.values())


def test_bench_future_composition(benchmark, bench_once):
    result = bench_once(benchmark, future.run, method="analytic")
    print("\n" + result.render())
    assert result.data["N3-memlean"] > result.data["N2"]


def test_bench_power_accounting(benchmark, bench_once):
    result = bench_once(benchmark, power_accounting.run)
    print("\n" + result.render())
    factors = [f for vals in result.data.values() for f in vals.values()]
    assert min(factors) > 0.4 and max(factors) <= 1.0
