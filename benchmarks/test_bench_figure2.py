"""E5/E6/E14: regenerate Figure 2 (cost breakdowns + efficiency matrix).

This is the heaviest experiment: the full DES matrix (QoS sweeps for the
three interactive benchmarks on all six systems).  Paper landmarks:
desk Perf/TCO-$ HMean ~132%, emb1 the best embedded platform, emb2 ~95%
(our calibration: emb2 lands lower; see EXPERIMENTS.md).
"""

from repro.experiments import figure2


def test_bench_figure2_sim(benchmark, bench_once):
    result = bench_once(benchmark, figure2.run, method="sim")
    print("\n" + result.render())
    tco = result.data["tables"]["Perf/TCO-$"]
    assert tco.hmean("desk") > 1.1
    assert tco.hmean("emb1") > tco.hmean("emb2")
