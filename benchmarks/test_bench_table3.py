"""E10/E11: regenerate Table 3 (flash disk caches with low-power disks).

Paper rows (Perf/Inf-$ / Perf/W / Perf/TCO-$): remote laptop 93/100/96,
+flash 99/109/104, laptop-2+flash 110/109/110.
"""

from repro.experiments import table3


def test_bench_table3_sim(benchmark, bench_once):
    result = bench_once(benchmark, table3.run, method="sim")
    print("\n" + result.render())
    eff = result.data["efficiencies"]
    assert eff["remote-laptop"]["perf_per_inf"] < 1.0
    assert eff["remote-laptop+flash"]["perf_per_tco"] > eff["remote-laptop"][
        "perf_per_tco"
    ]
    assert eff["remote-laptop2+flash"]["perf_per_tco"] > 1.0
