"""EXT-1: activity-factor and tariff sensitivity sweeps (section 2.2).

The paper reports both knobs leave the conclusions qualitatively
unchanged; the bench verifies desk and emb1 keep their Perf/TCO-$
advantage over srvr1 at every setting.
"""

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark, bench_once):
    result = bench_once(benchmark, sensitivity.run, method="analytic")
    print("\n" + result.render())
    for advantages in result.data["activity"].values():
        assert advantages["desk"] > 1.0
    for advantages in result.data["tariff"].values():
        assert advantages["desk"] > 1.0
