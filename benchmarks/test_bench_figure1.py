"""E2/E3: regenerate Figure 1 (cost model and srvr2 TCO breakdown).

Paper rows: srvr1 total $5,758 (3-yr P&C $2,464); srvr2 total $3,249
(P&C $1,561); srvr2 pie led by CPU HW ~20% and CPU P&C ~22%.
"""

import pytest

from repro.experiments import figure1


def test_bench_figure1(benchmark):
    result = benchmark(figure1.run)
    print("\n" + result.render())
    assert result.data["srvr1_total"] == pytest.approx(5758, abs=10)
    assert result.data["srvr2_total"] == pytest.approx(3249, abs=10)
