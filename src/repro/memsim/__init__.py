"""Ensemble-level memory sharing (paper section 3.4).

A memory blade provides a remote memory pool shared by the servers in an
enclosure over PCIe; each server keeps a smaller local memory and swaps
4 KB pages with the blade on a local-memory miss (exclusive caching,
detected as a TLB miss, serviced by a lightweight trap handler).

This package reproduces the paper's evaluation:

- :mod:`~repro.memsim.trace` -- synthetic page-access traces with
  per-workload locality (the paper gathered traces on the emb1 model;
  we generate statistically equivalent ones).
- :mod:`~repro.memsim.replacement` -- LRU and random replacement (the
  paper brackets implementable policies between these two).
- :mod:`~repro.memsim.twolevel` -- the two-level trace simulator and the
  slowdown model with PCIe x4 (4 us/page) and critical-block-first
  (CBF, 0.75 us) remote-access latencies.
- :mod:`~repro.memsim.blade` -- the memory-blade architecture: capacity
  allocation and per-server isolation.
- :mod:`~repro.memsim.provisioning` -- static vs dynamic provisioning
  cost/power analysis (Figure 4(c)).
- :mod:`~repro.memsim.sharing` -- content-based page sharing and
  compression extensions the paper lists as enabled optimizations.
- :mod:`~repro.memsim.dma` -- DMA I/O directly to the second-level
  memory (section 4 architectural enhancement).
- :mod:`~repro.memsim.ensemble` -- stochastic ensemble-provisioning
  study: why per-server peak sizing overprovisions.
- :mod:`~repro.memsim.redundancy` -- replica and parity (k+1 XOR) page
  placement across several enclosure blades, with blade-down failover,
  rebuild worklists, and page-conservation audits.
"""

from repro.memsim.trace import (
    PageTraceSpec,
    WORKLOAD_TRACES,
    cached_trace,
    generate_trace,
    trace_chunks,
)
from repro.memsim.replacement import LruPolicy, RandomPolicy, ReplacementPolicy
from repro.memsim.twolevel import (
    MissStats,
    TwoLevelMemorySimulator,
    PCIE_X4_PAGE_LATENCY_US,
    CBF_PAGE_LATENCY_US,
    lru_fraction_sweep,
    lru_miss_curve,
    measured_slowdown,
    slowdown_fraction,
)
from repro.memsim.blade import MemoryBlade, BladeAllocation
from repro.memsim.provisioning import (
    ProvisioningScheme,
    STATIC_PARTITIONING,
    DYNAMIC_PROVISIONING,
    provisioned_memory_spec,
    scheme_performance_ratio,
)
from repro.memsim.sharing import (
    CompressionModel,
    PageSharingModel,
    effective_capacity_factor,
)
from repro.memsim.dma import DmaDirectModel
from repro.memsim.ensemble import MemoryDemandModel, ProvisioningStudy
from repro.memsim.remote_memory import RemoteMemoryModel, make_remote_memory_model
from repro.memsim.redundancy import (
    BladeGroup,
    RedundancyAudit,
    RedundancyPolicy,
    ServiceProfile,
    auto_blade_group,
)

__all__ = [
    "PageTraceSpec",
    "WORKLOAD_TRACES",
    "cached_trace",
    "generate_trace",
    "trace_chunks",
    "lru_fraction_sweep",
    "lru_miss_curve",
    "measured_slowdown",
    "scheme_performance_ratio",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "MissStats",
    "TwoLevelMemorySimulator",
    "PCIE_X4_PAGE_LATENCY_US",
    "CBF_PAGE_LATENCY_US",
    "slowdown_fraction",
    "MemoryBlade",
    "BladeAllocation",
    "ProvisioningScheme",
    "STATIC_PARTITIONING",
    "DYNAMIC_PROVISIONING",
    "provisioned_memory_spec",
    "CompressionModel",
    "PageSharingModel",
    "effective_capacity_factor",
    "DmaDirectModel",
    "MemoryDemandModel",
    "ProvisioningStudy",
    "RemoteMemoryModel",
    "make_remote_memory_model",
    "BladeGroup",
    "RedundancyAudit",
    "RedundancyPolicy",
    "ServiceProfile",
    "auto_blade_group",
]
