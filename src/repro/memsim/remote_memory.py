"""Remote-memory traffic as an explicit simulated resource.

The paper's section 3.4 evaluation is trace-driven and admits that "our
trace-based methodology cannot account for the second-order impact of
PCIe link contention".  This module closes that gap: it converts a
request's CPU work into an expected number of remote-page misses (using
the same per-workload trace calibration as the slowdown model) so the
simulator can charge those misses against *explicit shared resources* --
the server's PCIe link and, crucially, the memory-blade controller that
several servers share.

Per request:

    page_touches  = touches_per_ms x cpu_ms_ref
    remote_misses = page_touches x miss_rate(local_fraction)
    link_time     = remote_misses x page_latency
    trap_cpu_time = remote_misses x trap_overhead   (the lightweight
                    OS/hypervisor fault handler runs on the CPU)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.trace import WORKLOAD_TRACES
from repro.memsim.twolevel import (
    PCIE_X4_PAGE_LATENCY_US,
    TwoLevelMemorySimulator,
)
from repro.workloads.base import ResourceDemand

#: CPU time of the lightweight trap handler per remote miss, microseconds
#: (page-table update, DMA setup; Ekman & Stenstrom-style handler).
DEFAULT_TRAP_OVERHEAD_US = 0.5

#: Per-miss penalty when the memory blade is DOWN and the server falls
#: back to local-memory-only operation, microseconds.  Pages that would
#: have been one 4 us PCIe transfer away must instead be paged in from
#: the swap path (the SAN'd laptop disk).  The OS's swap read-ahead
#: clusters faults into multi-page reads, amortizing the ~10 ms
#: seek+SAN overhead across a 64-page cluster (~156 us/page) plus the
#: 4 KB transfer itself -- call it 200 us per missing page, a 50x
#: degradation over the healthy 4 us PCIe path.
DEFAULT_DEGRADED_MISS_LATENCY_US = 200.0


@dataclass(frozen=True)
class RemoteMemoryModel:
    """Per-request remote-paging costs for one workload."""

    workload_name: str
    local_fraction: float = 0.25
    page_latency_us: float = PCIE_X4_PAGE_LATENCY_US
    trap_overhead_us: float = DEFAULT_TRAP_OVERHEAD_US
    #: Pre-computed miss rate; filled by :func:`make_remote_memory_model`.
    miss_rate: float = 0.0
    touches_per_ms: float = 0.0
    #: Per-miss cost while the blade is down (local-memory-only mode).
    degraded_miss_latency_us: float = DEFAULT_DEGRADED_MISS_LATENCY_US

    def __post_init__(self) -> None:
        if not 0 < self.local_fraction <= 1:
            raise ValueError("local fraction must be in (0, 1]")
        if self.page_latency_us < 0 or self.trap_overhead_us < 0:
            raise ValueError("latencies must be >= 0")
        if not 0 <= self.miss_rate <= 1:
            raise ValueError("miss rate must be in [0, 1]")
        if self.touches_per_ms < 0:
            raise ValueError("touch rate must be >= 0")
        if self.degraded_miss_latency_us < 0:
            raise ValueError("degraded miss latency must be >= 0")

    def misses_per_request(self, demand: ResourceDemand) -> float:
        """Expected remote-page misses for one request."""
        return self.touches_per_ms * demand.cpu_ms_ref * self.miss_rate

    def link_time_ms(self, demand: ResourceDemand) -> float:
        """PCIe/blade transfer time charged per request."""
        return self.misses_per_request(demand) * self.page_latency_us / 1000.0

    def trap_cpu_ms(self, demand: ResourceDemand) -> float:
        """Extra CPU time for fault handling per request."""
        return self.misses_per_request(demand) * self.trap_overhead_us / 1000.0

    def span_attrs(self, demand: ResourceDemand) -> dict:
        """Attributes for a traced remote-memory span.

        Rounded so span logs stay compact; values are expectations, not
        sampled counts (the model charges mean traffic per request).
        """
        misses = self.misses_per_request(demand)
        return {
            "misses": round(misses, 4),
            "trap_cpu_ms": round(self.trap_cpu_ms(demand), 6),
            "local_fraction": self.local_fraction,
        }

    def degraded_time_ms(self, demand: ResourceDemand) -> float:
        """Capacity-miss penalty per request while the blade is DOWN.

        Graceful degradation: the server keeps serving from its local
        memory only, and every would-be remote hit becomes a page-in
        from the swap path instead of a PCIe transfer.  Charged against
        the server's disk, not the (unavailable) blade link.
        """
        return (
            self.misses_per_request(demand) * self.degraded_miss_latency_us / 1000.0
        )

    def failover_time_ms(
        self,
        demand: ResourceDemand,
        direct_fraction: float,
        failover_fraction: float,
        amplification: float,
    ) -> float:
        """Link transfer time with part of the page set failed over.

        ``direct_fraction`` of misses pay the normal per-page transfer;
        ``failover_fraction`` are served from surviving replicas or
        reconstructed stripes at ``amplification`` transfers per page
        (1.0 for a replica read, k for a k+1 parity reconstruction).
        All of it still crosses the shared blade-controller link.
        """
        return self.link_time_ms(demand) * (
            direct_fraction + failover_fraction * amplification
        )

    def residual_degraded_time_ms(
        self, demand: ResourceDemand, lost_fraction: float
    ) -> float:
        """Swap-path penalty for the unrecoverable slice of the page set.

        Pages whose every replica is gone behave exactly like the
        blade-down mode of :meth:`degraded_time_ms`, scaled down to the
        lost fraction; the rest of the working set stays remote.
        """
        return self.degraded_time_ms(demand) * lost_fraction


def make_remote_memory_model(
    workload_name: str,
    local_fraction: float = 0.25,
    page_latency_us: float = PCIE_X4_PAGE_LATENCY_US,
    policy: str = "random",
    trace_length: int | None = None,
) -> RemoteMemoryModel:
    """Build a model with the miss rate measured by the trace simulator.

    ``policy="lru"`` reads the rate off the workload's memoized
    single-pass miss-ratio curve (``repro.perf.kernels``); the default
    random policy keeps the scalar bracketing replay.
    """
    try:
        spec = WORKLOAD_TRACES[workload_name]
    except KeyError as exc:
        raise KeyError(
            f"no memory trace for workload {workload_name!r}; "
            f"known: {sorted(WORKLOAD_TRACES)}"
        ) from exc
    stats = TwoLevelMemorySimulator(
        spec, local_fraction, policy=policy
    ).run(trace_length)
    return RemoteMemoryModel(
        workload_name=workload_name,
        local_fraction=local_fraction,
        page_latency_us=page_latency_us,
        miss_rate=stats.miss_rate,
        touches_per_ms=spec.touches_per_ms,
    )
