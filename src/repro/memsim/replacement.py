"""Local-memory replacement policies: LRU and random.

The paper deliberately brackets implementable policies between LRU and
random replacement ("rather than exhaustively studying page replacement
policies, we only model LRU and random replacement, expecting that an
implementable policy would have performance between these points").

Both policies model an *exclusive* two-level hierarchy: the local memory
holds ``capacity`` pages; a miss swaps the victim page with the requested
remote page (the victim moves to the memory blade).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List


class ReplacementPolicy(ABC):
    """An exclusive local-memory page cache.

    Tracks evictions: in the exclusive two-level design every eviction is
    a victim page travelling to the memory blade.  The paper notes the
    victim writeback is decoupled from the critical-path fetch, so
    evictions cost blade-link *bandwidth* but not request latency.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.evictions = 0

    @abstractmethod
    def access(self, page: int) -> bool:
        """Touch ``page``; return True on a local hit, False on a miss."""

    @abstractmethod
    def resident_pages(self) -> int:
        """Number of pages currently in local memory."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def access(self, page: int) -> bool:
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            return True
        if len(pages) >= self.capacity:
            pages.popitem(last=False)  # evict LRU victim to the blade
            self.evictions += 1
        pages[page] = None
        return False

    def resident_pages(self) -> int:
        return len(self._pages)


class RandomPolicy(ReplacementPolicy):
    """Random-victim replacement (O(1) via index-backed array)."""

    def __init__(self, capacity: int, seed: int = 0):
        super().__init__(capacity)
        self._slots: List[int] = []
        self._index: Dict[int, int] = {}
        self._rng = random.Random(seed)

    def access(self, page: int) -> bool:
        if page in self._index:
            return True
        if len(self._slots) >= self.capacity:
            victim_slot = self._rng.randrange(self.capacity)
            victim = self._slots[victim_slot]
            del self._index[victim]
            self._slots[victim_slot] = page
            self._index[page] = victim_slot
            self.evictions += 1
        else:
            self._index[page] = len(self._slots)
            self._slots.append(page)
        return False

    def resident_pages(self) -> int:
        return len(self._slots)


def make_policy(name: str, capacity: int, seed: int = 0) -> ReplacementPolicy:
    """Factory: ``"lru"`` or ``"random"``."""
    if name == "lru":
        return LruPolicy(capacity)
    if name == "random":
        return RandomPolicy(capacity, seed=seed)
    raise ValueError(f"unknown replacement policy {name!r}")
