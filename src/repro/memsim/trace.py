"""Synthetic page-access trace generation.

The paper gathers memory traces of the benchmark suite on the emb1
processor model and replays them through a simple two-level memory
simulator.  We generate statistically equivalent traces: a mixture of

- *Zipf-skewed reuse*: hot pages (heap, code, caches) drawn from a
  bounded Zipf distribution over the workload footprint, with a fixed
  random permutation so hot pages are spread across the address space, and
- *sequential scans*: runs of consecutive pages (streaming file/media
  buffers), which have little reuse and stress the replacement policy.

Per-workload parameters (footprint, skew, scan share, page-touch rate)
are chosen so the simulated slowdowns at a 25% local memory reproduce the
shape of the paper's Figure 4(b): websearch and ytube, the workloads with
the largest memory usage, see the largest slowdowns; webmail and
mapred-wc are nearly unaffected.

Footprints are scaled down from the 2 GB baseline (the paper itself
scales datasets for simulation time); miss *rates* at a fixed local
*fraction* are approximately scale-invariant for this trace family, which
the property tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator

import numpy as np


@dataclass(frozen=True)
class PageTraceSpec:
    """Statistical parameters of one workload's page-access stream."""

    name: str
    #: Distinct 4 KB pages touched (working-set footprint).
    footprint_pages: int
    #: Zipf exponent of the reuse component (higher = more concentrated).
    zipf_alpha: float
    #: Fraction of accesses that belong to sequential scans.
    sequential_fraction: float
    #: Page touches per millisecond of execution (drives the slowdown
    #: model: every local-memory miss costs one remote page transfer).
    touches_per_ms: float
    #: Length of one sequential run, pages.
    run_length: int = 64

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if not 0 <= self.sequential_fraction <= 1:
            raise ValueError("sequential fraction must be in [0, 1]")
        if self.zipf_alpha < 0 or self.touches_per_ms <= 0:
            raise ValueError("invalid trace parameters")
        if self.run_length <= 0:
            raise ValueError("run length must be positive")


#: Trace specs per benchmark.  websearch and ytube have the largest
#: memory usage (paper: "the workloads with larger memory usage,
#: websearch and ytube, have the largest slowdown").
WORKLOAD_TRACES: Dict[str, PageTraceSpec] = {
    "websearch": PageTraceSpec(
        "websearch", footprint_pages=65536, zipf_alpha=1.00,
        sequential_fraction=0.10, touches_per_ms=55.0,
    ),
    "webmail": PageTraceSpec(
        "webmail", footprint_pages=16384, zipf_alpha=1.30,
        sequential_fraction=0.02, touches_per_ms=13.0,
    ),
    "ytube": PageTraceSpec(
        "ytube", footprint_pages=65536, zipf_alpha=1.05,
        sequential_fraction=0.18, touches_per_ms=18.0,
    ),
    "mapred-wc": PageTraceSpec(
        "mapred-wc", footprint_pages=32768, zipf_alpha=1.20,
        sequential_fraction=0.05, touches_per_ms=6.0,
    ),
    "mapred-wr": PageTraceSpec(
        "mapred-wr", footprint_pages=32768, zipf_alpha=1.05,
        sequential_fraction=0.10, touches_per_ms=10.0,
    ),
}


def generate_trace(
    spec: PageTraceSpec, length: int, seed: int = 0
) -> np.ndarray:
    """Generate ``length`` page accesses (page ids in ``[0, footprint)``)."""
    if length <= 0:
        raise ValueError("trace length must be positive")
    rng = np.random.default_rng(seed)
    n = spec.footprint_pages

    # Zipf reuse component: inverse-CDF sampling over ranks.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-spec.zipf_alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    # Fixed permutation rank -> page id (hot pages spread over the space).
    permutation = np.random.default_rng(12345).permutation(n)

    seq_accesses = int(length * spec.sequential_fraction)
    zipf_accesses = length - seq_accesses

    zipf_pages = permutation[np.searchsorted(cdf, rng.random(zipf_accesses))]

    # Sequential scans: runs of consecutive pages at random offsets.
    runs = max(1, -(-seq_accesses // spec.run_length))
    starts = rng.integers(0, n, size=runs)
    seq_parts = [
        (start + np.arange(spec.run_length)) % n for start in starts
    ]
    seq_pages = np.concatenate(seq_parts)[:seq_accesses] if seq_accesses else (
        np.empty(0, dtype=np.int64)
    )

    # Interleave: shuffle scan runs into the reuse stream at block level.
    trace = np.empty(length, dtype=np.int64)
    mask = np.zeros(length, dtype=bool)
    if seq_accesses:
        positions = rng.choice(length, size=seq_accesses, replace=False)
        mask[positions] = True
        trace[mask] = seq_pages
    trace[~mask] = zipf_pages
    return trace


@lru_cache(maxsize=8)
def cached_trace(spec: PageTraceSpec, length: int, seed: int = 0) -> np.ndarray:
    """Memoized :func:`generate_trace` (figure4/ablation/sensitivity all
    replay the same ``(spec, length, seed)`` traces across policies,
    fractions, and experiments).  The returned array is shared between
    callers and therefore marked read-only; copy before mutating.
    """
    trace = generate_trace(spec, length, seed=seed)
    trace.setflags(write=False)
    return trace


def trace_chunks(
    spec: PageTraceSpec, length: int, seed: int = 0, chunk: int = 65536
) -> Iterator[np.ndarray]:
    """The trace as a sequence of read-only batches.

    Scalar consumers (the Random-policy bracketing path, external
    tooling) can stream batches instead of holding ``length`` pages
    live, while still reading the *identical* access stream: chunks are
    views of the one memoized trace.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    trace = cached_trace(spec, length, seed=seed)
    for start in range(0, length, chunk):
        yield trace[start:start + chunk]
