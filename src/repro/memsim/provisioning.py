"""Static vs dynamic memory provisioning (paper Figure 4(c)).

Two provisioning schemes, both keeping 25% of the baseline capacity as
local memory per server:

- *Static partitioning*: same total DRAM as the baseline; the remaining
  75% lives on memory blades built from slower devices at the commodity
  "sweet spot", 24% cheaper per GB (DRAMeXchange).
- *Dynamic provisioning*: 20% of servers use only their local memory, so
  total system memory is 85% of baseline (25% local + 60% on blades).

Memory-blade DRAM stays in active power-down mode (>90% power reduction
for DDR2) because accesses are page-granular and dominated by the PCIe
transfer; each server additionally pays for its PCIe connection
($10, 1.45 W).  The paper assumes a 2% performance slowdown across all
benchmarks for the cost/power evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.components import ComponentSpec
from repro.memsim.blade import PCIE_PER_SERVER_COST_USD, PCIE_PER_SERVER_POWER_W

#: Remote (memory-blade) devices: slower but cheaper commodity parts.
REMOTE_PRICE_DISCOUNT = 0.24
#: Active power-down keeps >90% of device power off (DDR2).
REMOTE_POWERDOWN_SAVINGS = 0.90
#: Paper's assumed uniform slowdown for the cost/power evaluation.
ASSUMED_SLOWDOWN = 0.02


@dataclass(frozen=True)
class ProvisioningScheme:
    """One memory-provisioning scheme."""

    name: str
    #: Fraction of baseline capacity kept as per-server local memory.
    local_fraction: float
    #: Fraction of baseline capacity placed on memory blades.
    remote_fraction: float

    def __post_init__(self) -> None:
        if not 0 < self.local_fraction <= 1:
            raise ValueError("local fraction must be in (0, 1]")
        if self.remote_fraction < 0:
            raise ValueError("remote fraction must be >= 0")
        if self.local_fraction + self.remote_fraction > 1.0 + 1e-9:
            raise ValueError("total provisioned capacity exceeds baseline")

    @property
    def total_fraction(self) -> float:
        """Total system DRAM relative to the baseline."""
        return self.local_fraction + self.remote_fraction

    def memory_cost_factor(self) -> float:
        """Memory hardware cost relative to baseline (before the PCIe adder)."""
        return (
            self.local_fraction
            + self.remote_fraction * (1.0 - REMOTE_PRICE_DISCOUNT)
        )

    def memory_power_factor(self) -> float:
        """Memory power relative to baseline (before the PCIe adder)."""
        return (
            self.local_fraction
            + self.remote_fraction * (1.0 - REMOTE_POWERDOWN_SAVINGS)
        )


#: Same total DRAM as baseline: 25% local, 75% on blades.
STATIC_PARTITIONING = ProvisioningScheme(
    name="static", local_fraction=0.25, remote_fraction=0.75
)

#: 20% of servers use only local memory: total 85% of baseline.
DYNAMIC_PROVISIONING = ProvisioningScheme(
    name="dynamic", local_fraction=0.25, remote_fraction=0.60
)


def scheme_performance_ratio(
    scheme: ProvisioningScheme,
    workload: str | None = None,
    latency_us: float | None = None,
    trace_length: int | None = None,
) -> float:
    """Performance ratio ``1 / (1 + slowdown)`` under a scheme.

    With no workload this is the paper's uniform assumed 2% slowdown
    (the Figure 4(c) evaluation).  Given a workload name, the slowdown
    is instead *measured* from that workload's exact-LRU miss-ratio
    curve at the scheme's local fraction -- one memoized trace pass per
    workload, so sweeping schemes or workloads costs nothing extra.
    """
    if workload is None:
        return 1.0 / (1.0 + ASSUMED_SLOWDOWN)
    # Imported here: twolevel sits above this module in the memsim stack.
    from repro.memsim.twolevel import PCIE_X4_PAGE_LATENCY_US, measured_slowdown

    if latency_us is None:
        latency_us = PCIE_X4_PAGE_LATENCY_US
    slowdown = measured_slowdown(
        workload, scheme.local_fraction, latency_us, trace_length
    )
    return 1.0 / (1.0 + slowdown)


def provisioned_memory_spec(
    baseline_memory: ComponentSpec, scheme: ProvisioningScheme
) -> ComponentSpec:
    """Memory component (cost, power) under a provisioning scheme.

    Includes the per-server PCIe connection overhead.
    """
    return ComponentSpec(
        cost_usd=baseline_memory.cost_usd * scheme.memory_cost_factor()
        + PCIE_PER_SERVER_COST_USD,
        power_w=baseline_memory.power_w * scheme.memory_power_factor()
        + PCIE_PER_SERVER_POWER_W,
    )
