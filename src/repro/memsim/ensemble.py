"""Ensemble-level memory provisioning statistics (section 3.4 motivation).

The memory blade exists because "per-server sizing for peak loads can
lead to significant ensemble-level overprovisioning" (the paper, citing
Fan et al. and Ranganathan et al.): individual servers rarely peak
simultaneously, so provisioning every server for its own peak buys far
more DRAM than the ensemble ever uses at once.

This module quantifies that effect with a stochastic demand model:

- each server's memory demand follows a mean-reverting AR(1) process
  (bursty but correlated in time), truncated to [floor, peak];
- *per-server provisioning* must buy ``peak`` for every server;
- *ensemble provisioning* buys local memory per server plus a shared
  blade sized so the aggregate demand exceeds capacity with probability
  at most ``overflow_tolerance``.

The gap between the two is the memory the blade design saves -- and the
empirical justification for the paper's dynamic-provisioning assumption
(total memory at 85% of per-server-peak baseline).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class MemoryDemandModel:
    """AR(1) mean-reverting per-server memory demand, GB."""

    mean_gb: float = 2.2
    stddev_gb: float = 0.8
    peak_gb: float = 4.0
    floor_gb: float = 0.5
    #: AR(1) coefficient: demand changes slowly relative to sampling.
    persistence: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.floor_gb <= self.mean_gb <= self.peak_gb:
            raise ValueError("need 0 < floor <= mean <= peak")
        if self.stddev_gb <= 0:
            raise ValueError("stddev must be positive")
        if not 0 <= self.persistence < 1:
            raise ValueError("persistence must be in [0, 1)")

    def sample_path(self, steps: int, rng: random.Random) -> List[float]:
        """One server's demand time series."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        innovation_std = self.stddev_gb * math.sqrt(1 - self.persistence**2)
        value = min(
            self.peak_gb,
            max(self.floor_gb, rng.gauss(self.mean_gb, self.stddev_gb)),
        )
        path = [value]
        for _ in range(steps - 1):
            value = (
                self.mean_gb
                + self.persistence * (value - self.mean_gb)
                + rng.gauss(0.0, innovation_std)
            )
            value = min(self.peak_gb, max(self.floor_gb, value))
            path.append(value)
        return path


@dataclass
class ProvisioningStudy:
    """Monte-Carlo comparison of per-server vs ensemble provisioning."""

    demand: MemoryDemandModel
    servers: int = 32
    local_gb_per_server: float = 1.0
    steps: int = 500
    seed: int = 1

    def __post_init__(self) -> None:
        if self.servers <= 0 or self.steps <= 0:
            raise ValueError("servers and steps must be positive")
        if self.local_gb_per_server < 0:
            raise ValueError("local memory must be >= 0")

    def aggregate_demand_samples(self) -> List[float]:
        """Time series of total ensemble demand, GB."""
        rng = random.Random(self.seed)
        paths = [
            self.demand.sample_path(self.steps, rng) for _ in range(self.servers)
        ]
        return [
            sum(path[t] for path in paths) for t in range(self.steps)
        ]

    def per_server_provisioned_gb(self) -> float:
        """Total DRAM under per-server peak sizing."""
        return self.servers * self.demand.peak_gb

    def ensemble_provisioned_gb(self, overflow_tolerance: float = 0.01) -> float:
        """Local memory plus a blade sized to the aggregate quantile."""
        if not 0 < overflow_tolerance < 1:
            raise ValueError("overflow tolerance must be in (0, 1)")
        samples = sorted(self.aggregate_demand_samples())
        index = min(
            len(samples) - 1,
            max(0, math.ceil((1 - overflow_tolerance) * len(samples)) - 1),
        )
        aggregate_quantile = samples[index]
        local_total = self.servers * self.local_gb_per_server
        blade = max(0.0, aggregate_quantile - local_total)
        return local_total + blade

    def savings(self, overflow_tolerance: float = 0.01) -> float:
        """Fraction of DRAM saved by ensemble provisioning."""
        per_server = self.per_server_provisioned_gb()
        ensemble = self.ensemble_provisioned_gb(overflow_tolerance)
        return 1.0 - ensemble / per_server

    def redundant_ensemble_provisioned_gb(
        self,
        capacity_overhead: float,
        overflow_tolerance: float = 0.01,
    ) -> float:
        """Ensemble provisioning with the blade slice bought redundantly.

        Redundancy multiplies only the *shared blade* capacity -- local
        DRAM stays unreplicated (a server loss takes its local working
        set with it either way; the blade is the shared-fate resource
        worth protecting).  ``capacity_overhead`` is raw/usable from
        :class:`~repro.memsim.redundancy.RedundancyPolicy`
        (``.capacity_overhead``): 2.0 for 2-replica, (k+1)/k for k+1
        parity, 1.0 for unprotected.
        """
        if capacity_overhead < 1.0:
            raise ValueError("capacity overhead must be >= 1.0")
        total = self.ensemble_provisioned_gb(overflow_tolerance)
        local_total = self.servers * self.local_gb_per_server
        blade = max(0.0, total - local_total)
        return local_total + blade * capacity_overhead

    def redundant_savings(
        self,
        capacity_overhead: float,
        overflow_tolerance: float = 0.01,
    ) -> float:
        """DRAM saved vs per-server peak, after paying for redundancy.

        The paper's headline savings shrink once the blade is bought
        ``capacity_overhead`` times over; this can go negative when the
        redundant blade outweighs the statistical-multiplexing win --
        the break-even EXT-13's durability-adjusted TCO table prices.
        """
        per_server = self.per_server_provisioned_gb()
        redundant = self.redundant_ensemble_provisioned_gb(
            capacity_overhead, overflow_tolerance
        )
        return 1.0 - redundant / per_server

    def overflow_rate(self, provisioned_gb: float) -> float:
        """Fraction of time steps whose aggregate demand exceeds capacity."""
        if provisioned_gb < 0:
            raise ValueError("capacity must be >= 0")
        samples = self.aggregate_demand_samples()
        return sum(1 for s in samples if s > provisioned_gb) / len(samples)
