"""DMA I/O directly into second-level memory (section 4 enhancement).

"Our memory sharing design can be further improved by having DMA I/O
going directly to the second-level memory."  In the baseline design,
disk/network DMA lands in local memory; buffers that belong to the cold
working set are then evicted to the blade, paying the page transfer
*twice* (DMA-in then swap-out), and a later touch pays a third transfer
(swap-in).

With DMA-direct, I/O buffers destined for the cold set land on the blade
immediately: the swap-out disappears, and the I/O-triggered share of
remote misses is serviced as part of the (already-paid) I/O itself.

The model: a fraction ``io_buffer_fraction`` of remote-memory misses are
first touches of freshly-DMAed I/O buffers.  DMA-direct removes those
misses' transfer cost and the matching eviction traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.twolevel import slowdown_fraction


@dataclass(frozen=True)
class DmaDirectModel:
    """Effect of blade-direct DMA on remote-paging overheads."""

    #: Share of remote misses caused by freshly-DMAed I/O buffers.
    io_buffer_fraction: float = 0.3
    #: Residual per-miss cost for DMA-direct pages (mapping updates),
    #: as a fraction of the full page-transfer latency.
    residual_cost_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0 <= self.io_buffer_fraction <= 1:
            raise ValueError("I/O buffer fraction must be in [0, 1]")
        if not 0 <= self.residual_cost_fraction <= 1:
            raise ValueError("residual cost fraction must be in [0, 1]")

    def effective_miss_cost_factor(self) -> float:
        """Mean per-miss cost relative to the non-DMA-direct design."""
        return (
            self.io_buffer_fraction * self.residual_cost_fraction
            + (1.0 - self.io_buffer_fraction)
        )

    def slowdown(
        self, miss_rate: float, touches_per_ms: float, latency_us: float
    ) -> float:
        """Remote-paging slowdown with DMA-direct enabled."""
        base = slowdown_fraction(miss_rate, touches_per_ms, latency_us)
        return base * self.effective_miss_cost_factor()

    def transfer_traffic_factor(self) -> float:
        """Blade-link traffic relative to the baseline design.

        Each I/O-buffer miss previously cost three page movements
        (DMA-in to local, evict to blade, later swap-in); DMA-direct
        reduces those to one (DMA-in to blade) plus the eventual swap-in,
        i.e. 2/3 of the traffic for the I/O share.
        """
        io_share = self.io_buffer_fraction
        return io_share * (2.0 / 3.0) + (1.0 - io_share)
