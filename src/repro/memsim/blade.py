"""The memory-blade architecture: allocation, isolation, page transfer.

The paper's memory blade is a remote memory pool attached over PCIe to
the servers in one enclosure.  A hardware controller on the blade manages
it: "sending pages to and receiving pages from the processor blades,
while enforcing the per-server memory allocation to provide security and
fault isolation."

This module implements that controller functionally: per-server capacity
allocations, page read/write with strict isolation checks, and transfer
accounting (used by tests and by the provisioning analysis to validate
capacity arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Page size used throughout the memory system (paper: page granularity).
PAGE_SIZE_BYTES = 4096

#: Per-server PCIe x4 connection cost and power (paper section 3.4:
#: "a per-server (x4 lane) cost of $10 and power consumption of 1.45 W").
PCIE_PER_SERVER_COST_USD = 10.0
PCIE_PER_SERVER_POWER_W = 1.45


class IsolationError(Exception):
    """A server touched a page outside its allocation."""


@dataclass
class BladeAllocation:
    """One server's slice of the blade pool."""

    server_id: str
    pages: int
    #: Pages currently swapped out to the blade by this server.
    resident: Dict[int, bytes] = field(default_factory=dict)

    @property
    def used_pages(self) -> int:
        return len(self.resident)


class MemoryBlade:
    """A remote memory pool shared by the servers of one enclosure."""

    def __init__(self, capacity_gb: float):
        if capacity_gb <= 0:
            raise ValueError("blade capacity must be positive")
        self.capacity_pages = int(capacity_gb * (1 << 30) / PAGE_SIZE_BYTES)
        self._allocations: Dict[str, BladeAllocation] = {}
        self.transfers_to_blade = 0
        self.transfers_from_blade = 0

    @property
    def allocated_pages(self) -> int:
        return sum(a.pages for a in self._allocations.values())

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.allocated_pages

    def allocate(self, server_id: str, pages: int) -> BladeAllocation:
        """Reserve ``pages`` for a server; rejects over-commitment."""
        if pages <= 0:
            raise ValueError("allocation must be positive")
        if server_id in self._allocations:
            raise ValueError(f"server {server_id!r} already has an allocation")
        if pages > self.free_pages:
            raise MemoryError(
                f"blade has {self.free_pages} free pages, requested {pages}"
            )
        allocation = BladeAllocation(server_id=server_id, pages=pages)
        self._allocations[server_id] = allocation
        return allocation

    def release(self, server_id: str) -> None:
        """Release a server's allocation (server decommissioned)."""
        self._allocations.pop(server_id, None)

    def allocation_of(self, server_id: str) -> Optional[BladeAllocation]:
        return self._allocations.get(server_id)

    def _check(self, server_id: str, page_number: int) -> BladeAllocation:
        allocation = self._allocations.get(server_id)
        if allocation is None:
            raise IsolationError(f"server {server_id!r} has no allocation")
        if not 0 <= page_number < allocation.pages:
            raise IsolationError(
                f"server {server_id!r} touched page {page_number} outside its "
                f"allocation of {allocation.pages} pages"
            )
        return allocation

    def write_page(self, server_id: str, page_number: int, data: bytes) -> None:
        """Victim page swapped out from a server's local memory."""
        if len(data) != PAGE_SIZE_BYTES:
            raise ValueError(f"pages are {PAGE_SIZE_BYTES} bytes")
        allocation = self._check(server_id, page_number)
        allocation.resident[page_number] = data
        self.transfers_to_blade += 1

    def read_page(self, server_id: str, page_number: int) -> bytes:
        """Remote page fetched into a server's local memory (exclusive:
        the page leaves the blade)."""
        allocation = self._check(server_id, page_number)
        try:
            data = allocation.resident.pop(page_number)
        except KeyError:
            # Never-written page: zero-filled, like fresh anonymous memory.
            data = bytes(PAGE_SIZE_BYTES)
        self.transfers_from_blade += 1
        return data
