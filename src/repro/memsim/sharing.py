"""Content-based page sharing and memory compression (section 3.4).

The paper lists further memory-blade optimizations it "opens up the
possibility of": memory compression (IBM MXT) and content-based page
sharing across blades (VMware ESX).  This module models both as capacity
multipliers on the remote pool:

- *Content-based sharing*: pages with identical content across the
  servers of one enclosure are stored once.  The dedup ratio follows a
  birthday-style model over content classes: a fraction of pages
  (zero pages, common binaries/libraries) is highly shareable and
  collapses across servers; the rest is unique.
- *Compression*: MXT-style 2:1-class compression on the remaining pages,
  at a small access-latency penalty (decompression on fetch), which
  matters little behind the PCIe transfer the blade already pays.

``effective_capacity_factor`` composes both: how many logical GB one
physical GB of blade DRAM can hold.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PageSharingModel:
    """Cross-server content dedup on the memory blade."""

    #: Fraction of pages that belong to shareable content classes
    #: (zero pages, shared binaries, common file-cache content).
    shareable_fraction: float = 0.30
    #: Servers attached to one blade (sharing pool width).
    servers: int = 8

    def __post_init__(self) -> None:
        if not 0 <= self.shareable_fraction <= 1:
            raise ValueError("shareable fraction must be in [0, 1]")
        if self.servers <= 0:
            raise ValueError("server count must be positive")

    def dedup_ratio(self) -> float:
        """Physical pages needed per logical page (<= 1).

        Shareable pages are stored once per enclosure instead of once per
        server; unique pages are stored in full.
        """
        shared_cost = self.shareable_fraction / self.servers
        unique_cost = 1.0 - self.shareable_fraction
        return shared_cost + unique_cost

    def capacity_multiplier(self) -> float:
        """Logical capacity per physical GB from sharing alone."""
        return 1.0 / self.dedup_ratio()


@dataclass(frozen=True)
class CompressionModel:
    """MXT-style compression of blade-resident pages."""

    #: Average compression ratio on compressible pages (2.0 = 2:1).
    compression_ratio: float = 2.0
    #: Fraction of pages that compress well (media/encrypted data do not).
    compressible_fraction: float = 0.7
    #: Added decompression latency per remote page fetch, microseconds.
    decompression_latency_us: float = 1.0

    def __post_init__(self) -> None:
        if self.compression_ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        if not 0 <= self.compressible_fraction <= 1:
            raise ValueError("compressible fraction must be in [0, 1]")
        if self.decompression_latency_us < 0:
            raise ValueError("latency must be >= 0")

    def capacity_multiplier(self) -> float:
        """Logical capacity per physical GB from compression alone."""
        stored = (
            self.compressible_fraction / self.compression_ratio
            + (1.0 - self.compressible_fraction)
        )
        return 1.0 / stored

    def fetch_latency_us(self, base_latency_us: float) -> float:
        """Remote-fetch latency including expected decompression cost."""
        if base_latency_us < 0:
            raise ValueError("base latency must be >= 0")
        return base_latency_us + (
            self.compressible_fraction * self.decompression_latency_us
        )


def effective_capacity_factor(
    sharing: PageSharingModel | None = None,
    compression: CompressionModel | None = None,
) -> float:
    """Logical blade GB per physical GB with both optimizations."""
    factor = 1.0
    if sharing is not None:
        factor *= sharing.capacity_multiplier()
    if compression is not None:
        factor *= compression.capacity_multiplier()
    return factor
