"""Redundant page placement across enclosure memory blades.

The paper's N2 design concentrates risk: one memory blade backs an
entire enclosure (section 3.4), so a single blade fault degrades every
attached server at once -- the shared-fate cost of ensemble sharing.
Hamilton's modular-datacenter argument (PAPERS.md) is that low-cost
shared components are only viable when redundancy and automated
recovery are first-class.  This module supplies the placement half of
that story: a :class:`BladeGroup` spreads each server's remote pages
across several blades under a :class:`RedundancyPolicy`, either

- **replication** -- every page stored on ``copies`` distinct blades
  (read the primary; fail over to any surviving copy), or
- **parity** -- pages striped RAID-5 style over ``data_shards`` blades
  plus one rotating XOR-parity blade per stripe (a lost data page is
  reconstructed by XOR-ing its ``k - 1`` stripe siblings with the
  parity page).  Parity is maintained as real page content, so tests
  recover actual bytes, not just counters.

Blade repair models hardware replacement: the repaired blade comes back
*empty* and the copies it held must be rebuilt from survivors -- the
rebuild worklist :class:`repro.faults.recovery.RecoveryOrchestrator`
drains as background DES traffic.  All placement is a pure function of
(server slot, page number), so a run's layout consumes zero RNG.

Semantics follow :class:`~repro.memsim.blade.MemoryBlade` exactly:
exclusive caching (a read pops the page from every surviving copy and
removes its parity contribution), never-written pages read as zeros,
and per-server isolation is enforced on every blade a copy lands on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.memsim.blade import IsolationError, MemoryBlade, PAGE_SIZE_BYTES

#: Shared zero-filled page: never-written reads and bulk population
#: reference this one immutable object instead of allocating 4 KB each.
ZERO_PAGE = bytes(PAGE_SIZE_BYTES)


def _xor_pages(a: bytes, b: bytes) -> bytes:
    """XOR two 4 KB pages (parity maintenance)."""
    if a is ZERO_PAGE or not any(a):
        return b
    if b is ZERO_PAGE or not any(b):
        return a
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(PAGE_SIZE_BYTES, "little")


@dataclass(frozen=True)
class RedundancyPolicy:
    """How a blade group protects pages against blade loss.

    ``mode="replica"`` stores ``copies`` full copies of every page on
    distinct blades and tolerates ``copies - 1`` concurrent blade
    failures at a capacity overhead of ``copies``x.

    ``mode="parity"`` stripes pages over ``data_shards`` (k) blades with
    one rotating XOR-parity blade per stripe (m = 1, RAID-5; wider
    Reed-Solomon codes are out of scope), tolerating one blade failure
    at a capacity overhead of ``(k + 1) / k`` -- but a degraded read
    costs ``k`` transfers (the surviving stripe) instead of one.
    """

    mode: str = "replica"
    #: Total copies of each page in replica mode (primary included).
    copies: int = 2
    #: Data shards per parity stripe (k) in parity mode.
    data_shards: int = 4

    def __post_init__(self) -> None:
        if self.mode not in ("replica", "parity"):
            raise ValueError(f"unknown redundancy mode {self.mode!r}")
        if self.mode == "replica" and self.copies < 2:
            raise ValueError("replica mode needs copies >= 2")
        if self.mode == "parity" and self.data_shards < 2:
            raise ValueError("parity mode needs data_shards >= 2")

    @classmethod
    def replicated(cls, copies: int = 2) -> "RedundancyPolicy":
        return cls(mode="replica", copies=copies)

    @classmethod
    def parity(cls, data_shards: int = 4) -> "RedundancyPolicy":
        return cls(mode="parity", data_shards=data_shards)

    @property
    def fault_tolerance(self) -> int:
        """Concurrent blade failures survived without data loss."""
        return self.copies - 1 if self.mode == "replica" else 1

    @property
    def capacity_overhead(self) -> float:
        """Raw blade capacity bought per byte of protected data."""
        if self.mode == "replica":
            return float(self.copies)
        return (self.data_shards + 1) / self.data_shards

    @property
    def min_blades(self) -> int:
        """Distinct blades the placement needs."""
        return self.copies if self.mode == "replica" else self.data_shards + 1

    @property
    def group_width(self) -> int:
        """Blades involved in one server's placement group."""
        return self.min_blades

    @property
    def degraded_read_amplification(self) -> float:
        """Link transfers per page read while failed over."""
        return 1.0 if self.mode == "replica" else float(self.data_shards)

    @property
    def rebuild_transfers_per_page(self) -> float:
        """Link transfers to restore one lost copy (reads + the write)."""
        return 2.0 if self.mode == "replica" else float(self.data_shards + 1)

    def describe(self) -> str:
        if self.mode == "replica":
            return f"{self.copies}-replica"
        return f"parity {self.data_shards}+1"


@dataclass(frozen=True)
class ServiceProfile:
    """How a server's remote reads split across blade states.

    Fractions are over the server's written pages; ``amplification`` is
    the per-page link-transfer multiplier of the failover share.
    """

    direct_fraction: float = 1.0
    failover_fraction: float = 0.0
    amplification: float = 1.0
    lost_fraction: float = 0.0

    @property
    def healthy(self) -> bool:
        return self.failover_fraction == 0.0 and self.lost_fraction == 0.0


HEALTHY_PROFILE = ServiceProfile()


@dataclass(frozen=True)
class RedundancyAudit:
    """Page-conservation snapshot of a blade group.

    Every logically written page is in exactly one state; the
    conservation invariant the property tests assert is
    ``intact + degraded + lost == written`` with zero duplicates.
    """

    written: int
    #: Full redundancy: every copy resident on a live blade.
    intact: int
    #: Readable (directly or by reconstruction) but missing copies.
    degraded: int
    #: Unreadable: all copies down, wiped, or unreconstructable.
    lost: int
    #: Copies found beyond what the placement allows (always 0).
    duplicated: int

    @property
    def conserved(self) -> bool:
        return (
            self.intact + self.degraded + self.lost == self.written
            and self.duplicated == 0
        )


class BladeGroup:
    """Several memory blades behind one redundancy policy.

    Placement is deterministic: server ``slot`` (attach order) and page
    number fix every copy's blade.  In replica mode, server ``slot``'s
    copy ``j`` lives on blade ``(slot + j) % n``.  In parity mode,
    stripe ``s`` of server ``slot`` puts its parity page on blade
    ``(slot + s) % n`` and data position ``j`` on blade
    ``(slot + s + 1 + j) % n`` -- rotating parity so no blade becomes
    the parity hot spot.
    """

    def __init__(
        self,
        policy: RedundancyPolicy,
        blades: int,
        capacity_gb_per_blade: float = 1.0,
    ):
        if blades < policy.min_blades:
            raise ValueError(
                f"{policy.describe()} needs >= {policy.min_blades} blades, "
                f"got {blades}"
            )
        self.policy = policy
        self.blades: List[MemoryBlade] = [
            MemoryBlade(capacity_gb_per_blade) for _ in range(blades)
        ]
        self.live: List[bool] = [True] * blades
        self._slots: Dict[str, int] = {}
        self._pages: Dict[str, int] = {}
        #: Logical pages currently swapped out, per server.
        self._written: Dict[str, Set[int]] = {}
        #: Copies missing from LIVE blades (the rebuild worklist), as
        #: (server, kind, key, blade) with kind in {"data", "parity"}.
        self._worklist: List[Tuple[str, str, int, int]] = []
        #: Bumped on every state change; callers cache derived views
        #: (service profiles) against it.
        self.version = 0
        self.failover_reads = 0
        self.reconstructed_reads = 0
        self.lost_page_reads = 0
        self.pages_rebuilt = 0
        self.degraded_writes = 0
        self.lost_writes = 0

    # -- placement ----------------------------------------------------

    @property
    def nblades(self) -> int:
        return len(self.blades)

    def _replica_set(self, slot: int) -> List[int]:
        return [(slot + j) % self.nblades for j in range(self.policy.copies)]

    def _parity_blade(self, slot: int, stripe: int) -> int:
        return (slot + stripe) % self.nblades

    def _data_blade(self, slot: int, page: int) -> int:
        stripe, position = divmod(page, self.policy.data_shards)
        return (slot + stripe + 1 + position) % self.nblades

    def _stripe_pages(self, page: int) -> List[int]:
        k = self.policy.data_shards
        stripe = page // k
        return [stripe * k + j for j in range(k)]

    # -- membership ---------------------------------------------------

    def attach(self, server_id: str, pages: int) -> int:
        """Admit a server with a ``pages``-page allocation; returns slot."""
        if server_id in self._slots:
            raise ValueError(f"server {server_id!r} already attached")
        if pages <= 0:
            raise ValueError("allocation must be positive")
        slot = len(self._slots)
        if self.policy.mode == "replica":
            data_blades = self._replica_set(slot)
            parity_blades: List[int] = []
        else:
            # Rotating placement touches every blade.
            data_blades = list(range(self.nblades))
            parity_blades = data_blades
        for index in data_blades:
            self.blades[index].allocate(server_id, pages)
        stripes = -(-pages // self.policy.data_shards) if parity_blades else 0
        for index in parity_blades:
            self.blades[index].allocate(f"{server_id}#parity", stripes)
        self._slots[server_id] = slot
        self._pages[server_id] = pages
        self._written[server_id] = set()
        self.version += 1
        return slot

    def slot_of(self, server_id: str) -> int:
        try:
            return self._slots[server_id]
        except KeyError as exc:
            raise IsolationError(
                f"server {server_id!r} is not attached to this group"
            ) from exc

    def _check(self, server_id: str, page: int) -> int:
        slot = self.slot_of(server_id)
        if not 0 <= page < self._pages[server_id]:
            raise IsolationError(
                f"server {server_id!r} touched page {page} outside its "
                f"allocation of {self._pages[server_id]} pages"
            )
        return slot

    def populate(self, pages_per_server: Optional[int] = None) -> int:
        """Write (zero) pages for every attached server -- the steady
        remote working set the DES layer protects.  Returns pages
        written; shares one immutable zero page, so memory stays O(1).
        """
        total = 0
        for server_id in self._slots:
            limit = self._pages[server_id]
            count = limit if pages_per_server is None else min(
                pages_per_server, limit
            )
            for page in range(count):
                self.write_page(server_id, page, ZERO_PAGE)
                total += 1
        return total

    # -- page I/O -----------------------------------------------------

    def _resident(self, blade: int, owner: str, page: int) -> Optional[bytes]:
        allocation = self.blades[blade].allocation_of(owner)
        if allocation is None:
            return None
        return allocation.resident.get(page)

    def _parity_value(self, server_id: str, slot: int, stripe: int) -> bytes:
        blade = self._parity_blade(slot, stripe)
        value = self._resident(blade, f"{server_id}#parity", stripe)
        return value if value is not None else ZERO_PAGE

    def write_page(self, server_id: str, page: int, data: bytes) -> None:
        """Swap a victim page out to the group (all copies updated)."""
        if len(data) != PAGE_SIZE_BYTES:
            raise ValueError(f"pages are {PAGE_SIZE_BYTES} bytes")
        slot = self._check(server_id, page)
        written = self._written[server_id]
        if self.policy.mode == "replica":
            stored = 0
            for blade in self._replica_set(slot):
                if self.live[blade]:
                    self.blades[blade].write_page(server_id, page, data)
                    stored += 1
            if stored == 0:
                self.lost_writes += 1
            elif stored < self.policy.copies:
                self.degraded_writes += 1
                self._note_missing_copies(server_id, slot, page)
        else:
            old = self._read_value(server_id, slot, page, count=False)
            if old is None:
                old = ZERO_PAGE  # unreconstructable old value: 2+ faults
            blade = self._data_blade(slot, page)
            data_stored = False
            if self.live[blade]:
                self.blades[blade].write_page(server_id, page, data)
                data_stored = True
            stripe = page // self.policy.data_shards
            parity_blade = self._parity_blade(slot, stripe)
            parity_stored = False
            if self.live[parity_blade]:
                parity = _xor_pages(
                    _xor_pages(self._parity_value(server_id, slot, stripe), old),
                    data,
                )
                self.blades[parity_blade].write_page(
                    f"{server_id}#parity", stripe, parity
                )
                parity_stored = True
            if not data_stored and not parity_stored:
                self.lost_writes += 1
            elif not data_stored or not parity_stored:
                self.degraded_writes += 1
        written.add(page)
        self.version += 1

    def _read_value(
        self, server_id: str, slot: int, page: int, count: bool = True
    ) -> Optional[bytes]:
        """Current value of a written page, or None if unrecoverable.

        ``count=True`` bumps the failover/reconstruction counters (a
        real foreground read); internal peeks pass ``count=False``.
        """
        if page not in self._written[server_id]:
            return ZERO_PAGE
        if self.policy.mode == "replica":
            primary = self._replica_set(slot)[0]
            for rank, blade in enumerate(self._replica_set(slot)):
                if not self.live[blade]:
                    continue
                value = self._resident(blade, server_id, page)
                if value is not None:
                    if count and rank > 0:
                        self.failover_reads += 1
                    elif count and blade != primary:  # pragma: no cover
                        self.failover_reads += 1
                    return value
            return None
        blade = self._data_blade(slot, page)
        if self.live[blade]:
            value = self._resident(blade, server_id, page)
            if value is not None:
                return value
        # Reconstruct: XOR the surviving stripe with its parity page.
        stripe = page // self.policy.data_shards
        parity_blade = self._parity_blade(slot, stripe)
        if not self.live[parity_blade]:
            return None
        parity = self._resident(parity_blade, f"{server_id}#parity", stripe)
        if parity is None:
            # Parity copy itself missing (wiped, not yet rebuilt): only
            # a stripe with no written pages is trivially recoverable.
            if any(
                p in self._written[server_id] and p < self._pages[server_id]
                for p in self._stripe_pages(page)
            ):
                return None
            parity = ZERO_PAGE
        value = parity
        for sibling in self._stripe_pages(page):
            if sibling == page or sibling >= self._pages[server_id]:
                continue
            if sibling not in self._written[server_id]:
                continue
            sibling_blade = self._data_blade(slot, sibling)
            if not self.live[sibling_blade]:
                return None
            sibling_value = self._resident(sibling_blade, server_id, sibling)
            if sibling_value is None:
                return None
            value = _xor_pages(value, sibling_value)
        if count:
            self.reconstructed_reads += 1
        return value

    def read_page(self, server_id: str, page: int) -> bytes:
        """Fetch a page back into local memory (exclusive: every copy
        leaves the group and the parity contribution is removed).

        A page whose every copy is unreachable reads as zeros and counts
        as a lost-page read -- the data-loss event the durability model
        prices.
        """
        slot = self._check(server_id, page)
        value = self._read_value(server_id, slot, page)
        if value is None:
            self.lost_page_reads += 1
            value = ZERO_PAGE
        self._drop_page(server_id, slot, page, value)
        self._written[server_id].discard(page)
        self.version += 1
        return value

    def _drop_page(
        self, server_id: str, slot: int, page: int, value: bytes
    ) -> None:
        """Remove every stored copy of a page (exclusive-read pop)."""
        if self.policy.mode == "replica":
            for blade in self._replica_set(slot):
                allocation = self.blades[blade].allocation_of(server_id)
                if allocation is not None:
                    allocation.resident.pop(page, None)
        else:
            blade = self._data_blade(slot, page)
            allocation = self.blades[blade].allocation_of(server_id)
            if allocation is not None:
                allocation.resident.pop(page, None)
            stripe = page // self.policy.data_shards
            parity_blade = self._parity_blade(slot, stripe)
            if self.live[parity_blade]:
                parity = _xor_pages(
                    self._parity_value(server_id, slot, stripe), value
                )
                self.blades[parity_blade].write_page(
                    f"{server_id}#parity", stripe, parity
                )
        self._worklist = [
            item for item in self._worklist
            if not (item[0] == server_id and item[1] == "data"
                    and item[2] == page)
        ]

    def _note_missing_copies(
        self, server_id: str, slot: int, page: int
    ) -> None:
        """Queue rebuilds for copies that could not be stored but whose
        home blade is live (wiped and awaiting rebuild)."""
        for blade in self._replica_set(slot):
            if (
                self.live[blade]
                and self._resident(blade, server_id, page) is None
                and (server_id, "data", page, blade) not in self._worklist
            ):
                self._worklist.append((server_id, "data", page, blade))

    # -- blade lifecycle ----------------------------------------------

    def fail_blade(self, blade: int) -> None:
        """A blade drops out; its contents are unreachable (and will be
        gone by repair time -- repair is hardware replacement)."""
        if not self.live[blade]:
            raise ValueError(f"blade {blade} is already down")
        self.live[blade] = False
        # Copies homed on a down blade cannot be rebuilt yet; drop them
        # from the worklist (repair re-scans).
        self._worklist = [
            item for item in self._worklist if item[3] != blade
        ]
        self.version += 1

    def repair_blade(self, blade: int) -> None:
        """The replacement blade arrives empty; queue its rebuilds."""
        if self.live[blade]:
            raise ValueError(f"blade {blade} is not down")
        for allocation in self.blades[blade]._allocations.values():
            allocation.resident.clear()
        self.live[blade] = True
        self._rescan_worklist()
        self.version += 1

    def _rescan_worklist(self) -> None:
        """Rebuild worklist = copies absent from their live home blade."""
        worklist: List[Tuple[str, str, int, int]] = []
        for server_id, slot in self._slots.items():
            written = self._written[server_id]
            if self.policy.mode == "replica":
                for page in sorted(written):
                    for blade in self._replica_set(slot):
                        if (
                            self.live[blade]
                            and self._resident(blade, server_id, page) is None
                        ):
                            worklist.append((server_id, "data", page, blade))
            else:
                stripes: Set[int] = set()
                for page in sorted(written):
                    stripes.add(page // self.policy.data_shards)
                    blade = self._data_blade(slot, page)
                    if (
                        self.live[blade]
                        and self._resident(blade, server_id, page) is None
                    ):
                        worklist.append((server_id, "data", page, blade))
                for stripe in sorted(stripes):
                    blade = self._parity_blade(slot, stripe)
                    if (
                        self.live[blade]
                        and self._resident(blade, f"{server_id}#parity", stripe)
                        is None
                    ):
                        worklist.append((server_id, "parity", stripe, blade))
        self._worklist = worklist

    @property
    def pages_needing_rebuild(self) -> int:
        """Copies restorable right now (their home blade is live)."""
        return len(self._worklist)

    def degraded_pages(self) -> int:
        """Written pages currently below full redundancy."""
        count = 0
        for server_id, slot in self._slots.items():
            for page in self._written[server_id]:
                if self._page_state(server_id, slot, page) != "intact":
                    count += 1
        return count

    def rebuild_step(self, max_copies: int) -> int:
        """Restore up to ``max_copies`` missing copies from survivors.

        Deterministic order (the worklist is rebuilt sorted); returns
        the number actually restored.  Unrecoverable entries (source
        lost too) are dropped from the worklist -- they surface as
        ``lost`` in :meth:`audit`.
        """
        restored = 0
        while self._worklist and restored < max_copies:
            server_id, kind, key, blade = self._worklist.pop(0)
            slot = self._slots[server_id]
            if not self.live[blade]:  # failed again mid-rebuild
                continue
            if kind == "data":
                value = self._read_value(server_id, slot, key, count=False)
                if value is None:
                    continue
                owner = server_id
            else:
                value = ZERO_PAGE
                recoverable = True
                for page in self._stripe_pages(key * self.policy.data_shards):
                    if page >= self._pages[server_id]:
                        continue
                    if page not in self._written[server_id]:
                        continue
                    part = self._read_value(server_id, slot, page, count=False)
                    if part is None:
                        recoverable = False
                        break
                    value = _xor_pages(value, part)
                if not recoverable:
                    continue
                owner = f"{server_id}#parity"
            self.blades[blade].write_page(owner, key, value)
            self.pages_rebuilt += 1
            restored += 1
        if restored:
            self.version += 1
        return restored

    # -- derived views ------------------------------------------------

    def _page_state(self, server_id: str, slot: int, page: int) -> str:
        """"intact" | "degraded" | "lost" for one written page."""
        if self.policy.mode == "replica":
            live_copies = 0
            full = True
            for blade in self._replica_set(slot):
                if not self.live[blade]:
                    full = False
                    continue
                if self._resident(blade, server_id, page) is not None:
                    live_copies += 1
                else:
                    full = False
            if live_copies == 0:
                return "lost"
            return "intact" if full else "degraded"
        blade = self._data_blade(slot, page)
        direct = (
            self.live[blade]
            and self._resident(blade, server_id, page) is not None
        )
        stripe = page // self.policy.data_shards
        parity_blade = self._parity_blade(slot, stripe)
        parity_ok = (
            self.live[parity_blade]
            and self._resident(parity_blade, f"{server_id}#parity", stripe)
            is not None
        )
        if direct and parity_ok:
            return "intact"
        if direct:
            return "degraded"
        if self._read_value(server_id, slot, page, count=False) is not None:
            return "degraded"
        return "lost"

    def service_profile(self, server_id: str) -> ServiceProfile:
        """How this server's remote reads currently split (see
        :class:`ServiceProfile`); healthy groups return the shared
        :data:`HEALTHY_PROFILE`."""
        slot = self.slot_of(server_id)
        written = self._written[server_id]
        if not written:
            return HEALTHY_PROFILE
        direct = failover = lost = 0
        for page in written:
            state = self._page_state(server_id, slot, page)
            if state == "lost":
                lost += 1
                continue
            # Degraded pages whose primary copy survives still read
            # directly; failover applies when the primary is gone.
            if self.policy.mode == "replica":
                primary = self._replica_set(slot)[0]
                primary_ok = (
                    self.live[primary]
                    and self._resident(primary, server_id, page) is not None
                )
            else:
                blade = self._data_blade(slot, page)
                primary_ok = (
                    self.live[blade]
                    and self._resident(blade, server_id, page) is not None
                )
            if primary_ok:
                direct += 1
            else:
                failover += 1
        total = len(written)
        if failover == 0 and lost == 0:
            return HEALTHY_PROFILE
        return ServiceProfile(
            direct_fraction=direct / total,
            failover_fraction=failover / total,
            amplification=self.policy.degraded_read_amplification,
            lost_fraction=lost / total,
        )

    def audit(self) -> RedundancyAudit:
        """Page-conservation snapshot (see :class:`RedundancyAudit`)."""
        written = intact = degraded = lost = duplicated = 0
        for server_id, slot in self._slots.items():
            for page in self._written[server_id]:
                written += 1
                state = self._page_state(server_id, slot, page)
                if state == "intact":
                    intact += 1
                elif state == "degraded":
                    degraded += 1
                else:
                    lost += 1
                if self.policy.mode == "replica":
                    allowed = set(self._replica_set(slot))
                    copies = sum(
                        1 for blade in range(self.nblades)
                        if self._resident(blade, server_id, page) is not None
                    )
                    extra = sum(
                        1 for blade in range(self.nblades)
                        if blade not in allowed
                        and self._resident(blade, server_id, page) is not None
                    )
                    if copies > len(allowed) or extra:
                        duplicated += 1
                else:
                    home = self._data_blade(slot, page)
                    extra = sum(
                        1 for blade in range(self.nblades)
                        if blade != home
                        and self._resident(blade, server_id, page) is not None
                    )
                    if extra:
                        duplicated += 1
        return RedundancyAudit(
            written=written, intact=intact, degraded=degraded, lost=lost,
            duplicated=duplicated,
        )


def auto_blade_group(
    policy: RedundancyPolicy,
    blades: int,
    server_ids: Sequence[str],
    pages_per_server: int,
) -> BladeGroup:
    """A group sized so every server's allocation (data + parity, on
    every blade the rotation can touch) is guaranteed to fit."""
    per_blade_pages = len(server_ids) * (
        pages_per_server + -(-pages_per_server // policy.data_shards) + 1
    )
    capacity_gb = max(1.0, per_blade_pages * PAGE_SIZE_BYTES * 1.25 / (1 << 30))
    group = BladeGroup(policy, blades, capacity_gb_per_blade=capacity_gb)
    for server_id in server_ids:
        group.attach(server_id, pages_per_server)
    return group
