"""Two-level memory simulation and the remote-access slowdown model.

Reproduces the paper's section 3.4 evaluation: a trace of page accesses
runs against a local memory sized at a fraction of the workload footprint
(the paper studies 25% and 12.5%), counting misses to the second-level
(memory-blade) pool.  Miss latencies:

- PCIe 2.0 x4, 4 KB page transfer: 4 us per miss,
- critical-block-first (CBF) optimization: 0.75 us effective latency
  (the faulting access completes as soon as the needed block arrives).

The slowdown model follows the paper's trace methodology: each miss adds
one remote transfer to the execution, so

    slowdown = touches_per_ms * miss_rate * miss_latency_ms

is the fraction of extra execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence

from repro.memsim.replacement import make_policy
from repro.memsim.trace import PageTraceSpec, WORKLOAD_TRACES, cached_trace
from repro.perf.kernels import MissRatioCurve, miss_ratio_curve

#: Remote page-transfer latencies (paper section 3.4).
PCIE_X4_PAGE_LATENCY_US = 4.0
CBF_PAGE_LATENCY_US = 0.75

#: Default trace length relative to the footprint (enough for the local
#: memory to reach steady state; the first pass is discarded as warmup).
_TRACE_PASSES = 8


@dataclass(frozen=True)
class MissStats:
    """Outcome of one trace simulation."""

    accesses: int
    misses: int
    local_capacity_pages: int
    #: Victim pages written back to the blade during the measurement
    #: window (bandwidth cost; off the critical path per the paper).
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def blade_transfers(self) -> int:
        """Total page movements over the blade link (fetch + writeback)."""
        return self.misses + self.writebacks


def slowdown_fraction(
    miss_rate: float, touches_per_ms: float, latency_us: float
) -> float:
    """Fractional execution-time increase from remote-memory misses."""
    if not 0 <= miss_rate <= 1:
        raise ValueError("miss rate must be in [0, 1]")
    if touches_per_ms < 0 or latency_us < 0:
        raise ValueError("invalid slowdown parameters")
    return touches_per_ms * miss_rate * (latency_us / 1000.0)


class TwoLevelMemorySimulator:
    """Trace-driven simulator of the local + memory-blade hierarchy."""

    def __init__(self, spec: PageTraceSpec, local_fraction: float,
                 policy: str = "random", seed: int = 0):
        if not 0 < local_fraction <= 1:
            raise ValueError("local fraction must be in (0, 1]")
        self.spec = spec
        self.local_fraction = local_fraction
        self.policy_name = policy
        self.seed = seed
        self.local_capacity = max(1, int(spec.footprint_pages * local_fraction))

    def run(self, trace_length: int | None = None, engine: str = "auto") -> MissStats:
        """Simulate the trace; warmup (first footprint-fill pass) excluded.

        ``engine`` selects the implementation: ``"auto"`` (default) uses
        the single-pass stack-distance kernel for exact-LRU runs and the
        scalar replay otherwise; ``"kernel"`` demands the kernel (errors
        for non-LRU policies); ``"scalar"`` forces the oracle loop.  The
        two are bit-identical for LRU (``tests/perf/test_kernels.py``).
        """
        if engine not in ("auto", "kernel", "scalar"):
            raise ValueError(f"unknown engine {engine!r}")
        length = (
            trace_length
            if trace_length is not None
            else self.spec.footprint_pages * _TRACE_PASSES
        )
        if self.policy_name == "lru" and engine != "scalar":
            counts = lru_miss_curve(self.spec, length, self.seed).counts(
                self.local_capacity
            )
            return MissStats(
                accesses=counts.accesses, misses=counts.misses,
                local_capacity_pages=self.local_capacity,
                writebacks=counts.writebacks,
            )
        if engine == "kernel":
            raise ValueError(
                f"kernel engine requires exact LRU, not {self.policy_name!r}"
            )
        return self._run_scalar(length)

    def _run_scalar(self, length: int) -> MissStats:
        """Reference per-access replay (the oracle; also the Random path)."""
        trace = cached_trace(self.spec, length, seed=self.seed)
        policy = make_policy(self.policy_name, self.local_capacity, seed=self.seed)

        warmup = min(self.spec.footprint_pages, length // 2)
        misses = 0
        accesses = 0
        evictions_at_window = 0
        seen: set = set()
        for i, page in enumerate(trace):
            page = int(page)
            if i == warmup:
                evictions_at_window = policy.evictions
            first_touch = page not in seen
            if first_touch:
                seen.add(page)
            hit = policy.access(page)
            if i >= warmup:
                accesses += 1
                # Compulsory first touches are page allocations, not
                # remote fetches; only genuine capacity misses pay the
                # blade round trip.
                if not hit and not first_touch:
                    misses += 1
        return MissStats(
            accesses=accesses, misses=misses,
            local_capacity_pages=self.local_capacity,
            writebacks=policy.evictions - evictions_at_window,
        )

    def slowdown(self, latency_us: float, trace_length: int | None = None) -> float:
        """End-to-end slowdown fraction at the given miss latency."""
        stats = self.run(trace_length)
        return slowdown_fraction(
            stats.miss_rate, self.spec.touches_per_ms, latency_us
        )


@lru_cache(maxsize=16)
def lru_miss_curve(
    spec: PageTraceSpec, trace_length: int | None = None, seed: int = 0
) -> MissRatioCurve:
    """The workload's exact LRU miss-ratio curve (one pass, memoized).

    Every local-fraction sweep over the same ``(spec, length, seed)``
    reads all its capacities off this one curve instead of replaying the
    trace per fraction.  Warmup matches ``TwoLevelMemorySimulator.run``.
    """
    length = (
        trace_length
        if trace_length is not None
        else spec.footprint_pages * _TRACE_PASSES
    )
    trace = cached_trace(spec, length, seed=seed)
    warmup = min(spec.footprint_pages, length // 2)
    return miss_ratio_curve(trace, warmup=warmup)


def lru_fraction_sweep(
    spec: PageTraceSpec,
    fractions: Sequence[float],
    trace_length: int | None = None,
    seed: int = 0,
) -> Dict[float, MissStats]:
    """Exact LRU :class:`MissStats` for many local fractions at once."""
    curve = lru_miss_curve(spec, trace_length, seed)
    out: Dict[float, MissStats] = {}
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError("local fraction must be in (0, 1]")
        capacity = max(1, int(spec.footprint_pages * fraction))
        counts = curve.counts(capacity)
        out[fraction] = MissStats(
            accesses=counts.accesses, misses=counts.misses,
            local_capacity_pages=capacity, writebacks=counts.writebacks,
        )
    return out


def measured_slowdown(
    workload: str,
    local_fraction: float,
    latency_us: float = PCIE_X4_PAGE_LATENCY_US,
    trace_length: int | None = None,
) -> float:
    """Trace-measured slowdown fraction for a named workload under exact
    LRU (the lower bracket), read off the memoized miss-ratio curve.

    Raises ``KeyError`` for workloads without a trace spec -- callers
    that model unlisted benchmarks should fall back to the paper's
    assumed slowdown (see ``provisioning.ASSUMED_SLOWDOWN``).
    """
    spec = WORKLOAD_TRACES[workload]
    stats = lru_fraction_sweep(
        spec, (local_fraction,), trace_length=trace_length
    )[local_fraction]
    return slowdown_fraction(stats.miss_rate, spec.touches_per_ms, latency_us)
