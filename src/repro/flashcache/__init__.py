"""Flash-based disk caching with low-power disks (paper section 3.5).

The design: laptop-class low-power disks move to a basic SAN (so server
blades need not physically fit a disk, enabling the microblade form
factor), and a 1 GB NAND flash module on each server board caches
recently accessed disk pages (after Kgil and Mudge's FlashCache).  On a
page-cache miss, a software hash table is consulted to see whether the
flash holds the page; only flash misses travel to the remote disk.

- :mod:`~repro.flashcache.cache` -- the flash cache proper: hash-table
  lookup, LRU eviction, write-endurance (wear) tracking.
- :mod:`~repro.flashcache.models` -- :class:`DiskModel` strategies for the
  server simulator: local disk, remote SAN disk, and remote disk behind a
  flash cache.
- :mod:`~repro.flashcache.analysis` -- the Table 3(b) evaluation:
  performance and cost efficiencies of each disk configuration on emb1.
"""

from repro.flashcache.cache import FlashCache, FlashCacheStats
from repro.flashcache.models import (
    FLASH_OBJECT_PARAMS,
    FlashCachedDiskModel,
    LocalDiskModel,
    RemoteSanDiskModel,
    FlashObjectParams,
)
from repro.flashcache.analysis import (
    DISK_CONFIGURATIONS,
    DiskConfiguration,
    disk_configuration,
)

__all__ = [
    "FlashCache",
    "FlashCacheStats",
    "FLASH_OBJECT_PARAMS",
    "FlashObjectParams",
    "FlashCachedDiskModel",
    "LocalDiskModel",
    "RemoteSanDiskModel",
    "DISK_CONFIGURATIONS",
    "DiskConfiguration",
    "disk_configuration",
]
