"""The flash disk cache: lookup, LRU eviction, and wear tracking.

The paper: "the flash holds any recently accessed pages from disk.  Any
time a page is not found in the OS's page cache, the flash cache is
searched by looking up in a software hash table."  Flash wears out after
roughly 100,000 writes per block with 2008-era NAND; the paper argues the
3-year depreciation cycle and software fault-tolerance still make flash
attractive, which the lifetime estimate here quantifies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.platforms.storage import StorageDevice


@dataclass
class FlashCacheStats:
    """Hit/miss and wear counters."""

    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Total block writes (wear): insertions + write-through updates.
    block_writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FlashCache:
    """An LRU cache of disk objects held in NAND flash."""

    def __init__(self, device: StorageDevice, object_bytes: float):
        if not device.is_flash:
            raise ValueError("flash cache needs a flash device")
        if object_bytes <= 0:
            raise ValueError("object size must be positive")
        self.device = device
        self.object_bytes = object_bytes
        self.capacity_objects = max(
            1, int(device.capacity_gb * (1 << 30) / object_bytes)
        )
        self._objects: "OrderedDict[int, None]" = OrderedDict()
        #: Cumulative writes per cache slot index (coarse wear map).
        self._slot_writes: Dict[int, int] = {}
        self.stats = FlashCacheStats()

    def lookup(self, object_id: int) -> bool:
        """Hash-table lookup; refreshes LRU position on a hit."""
        self.stats.lookups += 1
        if object_id in self._objects:
            self._objects.move_to_end(object_id)
            self.stats.hits += 1
            return True
        return False

    def insert(self, object_id: int) -> None:
        """Install an object fetched from disk, evicting LRU if full."""
        if object_id in self._objects:
            self._objects.move_to_end(object_id)
            return
        if len(self._objects) >= self.capacity_objects:
            self._objects.popitem(last=False)
            self.stats.evictions += 1
        self._objects[object_id] = None
        self.stats.insertions += 1
        self._record_write()

    def write_update(self, object_id: int) -> None:
        """Write-through update of a cached object (wear, no population)."""
        if object_id in self._objects:
            self._objects.move_to_end(object_id)
            self._record_write()

    def replay(self, object_ids, is_write=None) -> FlashCacheStats:
        """Replay an access stream through the cache, one op at a time.

        Reads follow the model's discipline (``lookup``, install on a
        miss); writes are write-through updates.  ``is_write=None``
        treats the whole stream as reads.  This is the scalar oracle the
        vectorized kernels (``repro.perf.kernels.flash_hit_curve`` /
        ``flash_replay``) are tested against, and returns the live
        ``stats`` object for convenience.
        """
        if is_write is None:
            is_write = [False] * len(object_ids)
        if len(object_ids) != len(is_write):
            raise ValueError("object_ids and is_write must have equal length")
        for object_id, write in zip(object_ids, is_write):
            object_id = int(object_id)
            if write:
                self.write_update(object_id)
            elif not self.lookup(object_id):
                self.insert(object_id)
        return self.stats

    def export_metrics(self, metrics, **labels) -> None:
        """One-shot dump of the cache's counters into a labeled registry.

        ``metrics`` is a :class:`repro.obs.MetricsRegistry`; call once at
        the end of a run (counters would double-count if exported
        repeatedly into the same registry).
        """
        stats = self.stats
        metrics.counter("flash.lookups", **labels).inc(stats.lookups)
        metrics.counter("flash.hits", **labels).inc(stats.hits)
        metrics.counter("flash.insertions", **labels).inc(stats.insertions)
        metrics.counter("flash.evictions", **labels).inc(stats.evictions)
        metrics.counter("flash.block_writes", **labels).inc(stats.block_writes)
        metrics.gauge("flash.hit_rate", **labels).set(stats.hit_rate)
        metrics.gauge(
            "flash.resident_objects", **labels
        ).set(self.resident_objects)

    def _record_write(self) -> None:
        self.stats.block_writes += 1
        slot = self.stats.block_writes % self.capacity_objects
        self._slot_writes[slot] = self._slot_writes.get(slot, 0) + 1

    @property
    def resident_objects(self) -> int:
        return len(self._objects)

    def read_service_ms(self) -> float:
        """Service time to read one object from flash."""
        return self.device.access_time_ms(self.object_bytes, write=False)

    def write_service_ms(self) -> float:
        """Service time to install one object (write + amortized erase)."""
        return (
            self.device.access_time_ms(self.object_bytes, write=True)
            + self.device.erase_latency_ms
        )

    def estimated_lifetime_years(self, writes_per_second: float) -> float:
        """Wear-leveled lifetime at a sustained write rate.

        With perfect wear leveling every block absorbs an equal share of
        writes; lifetime = endurance * capacity_objects / write rate.
        """
        if writes_per_second <= 0:
            return float("inf")
        if self.device.write_endurance <= 0:
            return float("inf")
        total_writes = self.device.write_endurance * self.capacity_objects
        seconds = total_writes / writes_per_second
        return seconds / (365.25 * 24 * 3600)
