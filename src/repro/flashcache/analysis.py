"""The Table 3(b) disk-configuration study.

Four disk subsystems for the emb1 deployment target:

=====================  ==========================  ===========  ========
Configuration          Devices                     Disk HW      Disk W
=====================  ==========================  ===========  ========
baseline               local desktop disk          $120         10 W
remote-laptop          SAN laptop disk             $80          2 W
remote-laptop+flash    SAN laptop disk + 1GB flash $94          2.5 W
remote-laptop2+flash   SAN laptop-2 disk + flash   $54          2.5 W
=====================  ==========================  ===========  ========

Each configuration supplies a factory for its simulator
:class:`DiskModel` (flash caches keep state per simulation run, so the
factory builds a fresh model per run) and the cost/power deltas applied
to the server bill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.costmodel.components import ComponentSpec
from repro.flashcache.models import (
    FlashCachedDiskModel,
    LocalDiskModel,
    RemoteSanDiskModel,
)
from repro.platforms.storage import (
    DESKTOP_DISK,
    FLASH_1GB,
    LAPTOP2_DISK,
    LAPTOP_DISK,
    StorageDevice,
)


@dataclass(frozen=True)
class DiskConfiguration:
    """One row of Table 3(b): devices, costs, and a disk-model factory."""

    name: str
    description: str
    disk_cost_usd: float
    disk_power_w: float
    #: Builds a fresh DiskModel for one simulation run of ``workload``.
    model_factory: Callable[[str], object]

    def disk_component(self) -> ComponentSpec:
        """The server bill's disk component under this configuration."""
        return ComponentSpec(cost_usd=self.disk_cost_usd, power_w=self.disk_power_w)

    def make_disk_model(self, workload_name: str):
        """Instantiate the simulator disk model for one benchmark run."""
        return self.model_factory(workload_name)


def _local(device: StorageDevice) -> Callable[[str], object]:
    return lambda workload: LocalDiskModel(device)


def _remote(device: StorageDevice) -> Callable[[str], object]:
    return lambda workload: RemoteSanDiskModel(device)


def _remote_flash(device: StorageDevice) -> Callable[[str], object]:
    return lambda workload: FlashCachedDiskModel(
        RemoteSanDiskModel(device), workload, flash_device=FLASH_1GB
    )


#: Table 3(b) configurations in paper order (baseline first).
DISK_CONFIGURATIONS: List[DiskConfiguration] = [
    DiskConfiguration(
        name="baseline",
        description="local desktop-class disk (the paper's normalization)",
        disk_cost_usd=DESKTOP_DISK.price_usd,
        disk_power_w=DESKTOP_DISK.power_w,
        model_factory=_local(DESKTOP_DISK),
    ),
    DiskConfiguration(
        name="remote-laptop",
        description="low-power laptop disk on a SAN",
        disk_cost_usd=LAPTOP_DISK.price_usd,
        disk_power_w=LAPTOP_DISK.power_w,
        model_factory=_remote(LAPTOP_DISK),
    ),
    DiskConfiguration(
        name="remote-laptop+flash",
        description="SAN laptop disk with a 1 GB flash disk cache",
        disk_cost_usd=LAPTOP_DISK.price_usd + FLASH_1GB.price_usd,
        disk_power_w=LAPTOP_DISK.power_w + FLASH_1GB.power_w,
        model_factory=_remote_flash(LAPTOP_DISK),
    ),
    DiskConfiguration(
        name="remote-laptop2+flash",
        description="cheaper laptop-2 disk ($40) with a 1 GB flash cache",
        disk_cost_usd=LAPTOP2_DISK.price_usd + FLASH_1GB.price_usd,
        disk_power_w=LAPTOP2_DISK.power_w + FLASH_1GB.power_w,
        model_factory=_remote_flash(LAPTOP2_DISK),
    ),
]

_BY_NAME: Dict[str, DiskConfiguration] = {c.name: c for c in DISK_CONFIGURATIONS}


def disk_configuration(name: str) -> DiskConfiguration:
    """Look up a Table 3(b) configuration by name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown disk configuration {name!r}; known: {sorted(_BY_NAME)}"
        ) from exc


def flash_only_configuration(
    capacity_gb: float = 32.0,
    price_per_gb_usd: float = 14.0,
    power_w: float = 2.0,
) -> DiskConfiguration:
    """Flash as a full disk *replacement* (paper section 4 future work).

    Storage becomes a flash array sized to the working dataset: every
    access runs at flash service times (no seeks), at 2008-era NAND
    pricing of ~$14/GB -- so the capacity is bought at a steep premium
    over rotating disks.  Useful for exploring when the paper's "more
    study is needed of flash ... as a disk replacement" pays off.
    """
    if capacity_gb <= 0:
        raise ValueError("capacity must be positive")
    device = StorageDevice(
        name=f"flash-array-{capacity_gb:g}gb",
        kind=FLASH_1GB.kind,
        bandwidth_mb_s=FLASH_1GB.bandwidth_mb_s * 4,  # striped modules
        read_latency_ms=FLASH_1GB.read_latency_ms,
        write_latency_ms=FLASH_1GB.write_latency_ms,
        capacity_gb=capacity_gb,
        power_w=power_w,
        price_usd=capacity_gb * price_per_gb_usd,
        erase_latency_ms=FLASH_1GB.erase_latency_ms,
        write_endurance=FLASH_1GB.write_endurance,
    )
    return DiskConfiguration(
        name=f"flash-only-{capacity_gb:g}gb",
        description="flash array replacing the disk entirely",
        disk_cost_usd=device.price_usd,
        disk_power_w=device.power_w,
        model_factory=_local(device),
    )
