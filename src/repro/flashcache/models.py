"""Disk-model strategies for the server simulator (section 3.5 configs).

Three strategies implement the simulator's :class:`DiskModel` protocol:

- :class:`LocalDiskModel` -- the baseline: every I/O hits the local disk.
- :class:`RemoteSanDiskModel` -- laptop disks consolidated in a SAN.  Data
  is striped across ``stripe_width`` spindles, so one request's transfer
  engages several disks; the model divides the request's disk work by the
  stripe width (throughput-exact, slightly conservative on queueing).
- :class:`FlashCachedDiskModel` -- a flash cache in front of any backing
  model.  Each request's disk working set is keyed by a Zipf-distributed
  object id drawn from the workload's dataset; hits are served at flash
  speed, misses go to the backing disk and populate the flash.

Reads benefit from the cache; writes are written through (they pay the
backing disk and add flash wear without avoiding disk traffic), matching
the FlashCache design the paper adopts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: One timed piece of a disk service: (span kind, label, service ms).
#: Kinds are span vocabulary ("disk" / "flash") so the tracer can type
#: each piece; the pieces of one request always sum to ``service_ms``.
ServiceComponent = Tuple[str, str, float]

from repro.flashcache.cache import FlashCache
from repro.platforms.storage import StorageDevice, FLASH_1GB
from repro.workloads.base import ResourceDemand
from repro.workloads.zipf import ZipfSampler

#: Default SAN stripe width (spindles engaged per request's data).
DEFAULT_STRIPE_WIDTH = 2
#: Per-I/O SAN protocol overhead (SATA tunneling + network hop), ms.
DEFAULT_SAN_OVERHEAD_MS = 8.0


def _device_service_ms(
    device: StorageDevice, ios: float, num_bytes: float, write: bool
) -> float:
    latency = device.write_latency_ms if write else device.read_latency_ms
    return ios * latency + num_bytes / (device.bandwidth_mb_s * 1000.0)


class LocalDiskModel:
    """Baseline: all I/O to one local disk."""

    def __init__(self, device: StorageDevice):
        self.device = device

    def service_ms(self, demand: ResourceDemand, rng: random.Random) -> float:
        return _device_service_ms(
            self.device, demand.disk_ios, demand.disk_bytes, demand.disk_write
        )

    def service_components(
        self, demand: ResourceDemand, rng: random.Random
    ) -> List[ServiceComponent]:
        """Typed breakdown of :meth:`service_ms` (identical RNG draws)."""
        return [("disk", "local-disk", self.service_ms(demand, rng))]

    def mean_service_ms(self, demand: ResourceDemand) -> float:
        """Expected service for a mean demand (analytic model support)."""
        return _device_service_ms(
            self.device, demand.disk_ios, demand.disk_bytes, demand.disk_write
        )


class RemoteSanDiskModel:
    """Laptop disks on a SAN, striped across ``stripe_width`` spindles.

    Striping divides the transfer work across spindles; the per-I/O SAN
    protocol overhead (SATA tunneling and the network hop) is serial and
    is paid per seek.
    """

    def __init__(
        self,
        device: StorageDevice,
        stripe_width: int = DEFAULT_STRIPE_WIDTH,
        san_overhead_ms: float = DEFAULT_SAN_OVERHEAD_MS,
    ):
        if stripe_width <= 0:
            raise ValueError("stripe width must be positive")
        if san_overhead_ms < 0:
            raise ValueError("SAN overhead must be >= 0")
        self.device = device
        self.stripe_width = stripe_width
        self.san_overhead_ms = san_overhead_ms

    def service_ms(self, demand: ResourceDemand, rng: random.Random) -> float:
        return self.mean_service_ms(demand)

    def service_components(
        self, demand: ResourceDemand, rng: random.Random
    ) -> List[ServiceComponent]:
        """Typed breakdown of :meth:`service_ms` (identical RNG draws)."""
        return [("disk", "san", self.service_ms(demand, rng))]

    def mean_service_ms(self, demand: ResourceDemand) -> float:
        """Expected service for a mean demand (analytic model support)."""
        work = _device_service_ms(
            self.device, demand.disk_ios, demand.disk_bytes, demand.disk_write
        )
        return work / self.stripe_width + demand.disk_ios * self.san_overhead_ms


@dataclass(frozen=True)
class FlashObjectParams:
    """How a workload's disk traffic maps onto cacheable objects."""

    #: Disk-resident dataset size, GB.
    dataset_gb: float
    #: Zipf exponent of object popularity (low = scan-like, little reuse).
    zipf_alpha: float
    #: Mean object size, bytes (one request touches one object).
    object_bytes: float


#: Per-workload object models.  Dataset sizes follow Table 1 (websearch
#: 20 GB dataset with a hot disk-resident subset, webmail 7 GB of mail,
#: ytube a large video corpus, mapreduce a 5 GB corpus); reuse skew is
#: high for user-facing traffic and low for mapreduce scans.
FLASH_OBJECT_PARAMS: Dict[str, FlashObjectParams] = {
    "websearch": FlashObjectParams(dataset_gb=5.0, zipf_alpha=0.85, object_bytes=300_000),
    "webmail": FlashObjectParams(dataset_gb=7.0, zipf_alpha=0.95, object_bytes=375_000),
    "ytube": FlashObjectParams(dataset_gb=30.0, zipf_alpha=0.80, object_bytes=2_000_000),
    "mapred-wc": FlashObjectParams(dataset_gb=5.0, zipf_alpha=0.40, object_bytes=3_900_000),
    "mapred-wr": FlashObjectParams(dataset_gb=5.0, zipf_alpha=0.30, object_bytes=14_300_000),
}


class FlashCachedDiskModel:
    """A flash cache in front of a backing disk model.

    The cache is a performance accelerator, not a correctness
    dependency: :meth:`fail` drops it out of the data path (every I/O
    takes the raw backing-disk path) and :meth:`recover` brings it back
    -- cold, since a failed module returns with no useful contents.
    """

    def __init__(
        self,
        backing,  # LocalDiskModel | RemoteSanDiskModel
        workload_name: str,
        flash_device: StorageDevice = FLASH_1GB,
        params: FlashObjectParams | None = None,
    ):
        if params is None:
            try:
                params = FLASH_OBJECT_PARAMS[workload_name]
            except KeyError as exc:
                raise KeyError(
                    f"no flash object params for workload {workload_name!r}"
                ) from exc
        self.backing = backing
        self.params = params
        self._flash_device = flash_device
        self.cache = FlashCache(flash_device, params.object_bytes)
        self.available = True
        #: Lookups served on the raw-disk path because the cache was down.
        self.bypassed_requests = 0
        objects = max(1, int(params.dataset_gb * (1 << 30) / params.object_bytes))
        self._popularity = ZipfSampler(objects, params.zipf_alpha)

    def fail(self) -> None:
        """Take the cache out of the data path (raw disk fallback)."""
        self.available = False

    def recover(self) -> None:
        """Bring the cache back into service with cold (empty) contents.

        Wear counters survive (it is the same physical module's
        lifetime), but the object index restarts empty.
        """
        stats = self.cache.stats
        self.cache = FlashCache(self._flash_device, self.params.object_bytes)
        self.cache.stats.block_writes = stats.block_writes
        self.available = True

    def expected_hit_rate(self) -> float:
        """Independent-reference hit-rate estimate (hot head fits in flash)."""
        return self._popularity.head_mass(self.cache.capacity_objects)

    def service_ms(self, demand: ResourceDemand, rng: random.Random) -> float:
        # Single implementation: the typed breakdown below draws the same
        # RNG values and updates the same cache state, so traced runs
        # (which ask for components) and untraced runs (which ask for the
        # total) are stream-identical.
        return sum(ms for _, _, ms in self.service_components(demand, rng))

    def service_components(
        self, demand: ResourceDemand, rng: random.Random
    ) -> List[ServiceComponent]:
        """Typed breakdown of one request's disk service.

        Returns ``(span kind, label, ms)`` pieces summing to what
        :meth:`service_ms` reports for the same call: a flash hit is pure
        flash time, a miss is backing-disk time, and writes/bypasses take
        the raw disk path.
        """
        if demand.disk_bytes <= 0 and demand.disk_ios <= 0:
            return []
        if not self.available:
            # Cache down: raw disk path.  The popularity sample is still
            # drawn so the request stream (and RNG state) is identical
            # with and without an operational cache.
            self._popularity.sample(rng)
            self.bypassed_requests += 1
            return [("disk", "cache-bypass", self.backing.service_ms(demand, rng))]
        object_id = self._popularity.sample(rng)
        if demand.disk_write:
            # Write-through: disk pays full price; cached copy is updated.
            self.cache.write_update(object_id)
            return [("disk", "write-through", self.backing.service_ms(demand, rng))]
        if self.cache.lookup(object_id):
            # Flash hit: serve the request's bytes from flash.
            scale = demand.disk_bytes / max(self.params.object_bytes, 1.0)
            return [("flash", "hit", self.cache.read_service_ms() * max(scale, 0.1))]
        service = self.backing.service_ms(demand, rng)
        self.cache.insert(object_id)
        return [("disk", "miss", service)]

    def mean_service_ms(self, demand: ResourceDemand) -> float:
        """Expected service for a mean demand (analytic model support)."""
        backing = self.backing.mean_service_ms(demand)
        if demand.disk_write:
            return backing
        hit_rate = self.expected_hit_rate()
        scale = max(demand.disk_bytes / max(self.params.object_bytes, 1.0), 0.1)
        flash = self.cache.read_service_ms() * scale
        return hit_rate * flash + (1.0 - hit_rate) * backing
