"""Utilization-based power accounting (cross-check on the activity factor).

The paper discounts spec-sheet power by a flat 0.75 activity factor and
reports that 0.5-1.0 gives qualitatively similar results.  This module
offers the alternative accounting: component power that scales with the
*measured* utilization from the simulator (the Fan et al. style linear
model, ``P = idle + (peak - idle) * utilization`` per component), and a
function that converts a simulated run's utilizations into the *implied*
activity factor -- letting us check how good the 0.75 flat discount is
at the QoS-constrained operating points this repository actually
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.costmodel.components import Component, ServerBill

#: Idle power as a fraction of max operational power, per component.
#: CPUs are the most power-proportional part; disks spin regardless;
#: board/VRM and PSU/fans are nearly constant.
DEFAULT_IDLE_FRACTIONS: Dict[Component, float] = {
    Component.CPU: 0.35,
    Component.MEMORY: 0.55,
    Component.DISK: 0.80,
    Component.BOARD: 0.90,
    Component.POWER_FANS: 0.85,
}

#: Which simulator resource drives each component's utilization.
_COMPONENT_RESOURCE: Dict[Component, str] = {
    Component.CPU: "cpu",
    Component.MEMORY: "mem",
    Component.DISK: "disk",
}


@dataclass(frozen=True)
class UtilizationPowerModel:
    """Linear idle-to-peak power model per component."""

    idle_fractions: Mapping[Component, float] = field(
        default_factory=lambda: dict(DEFAULT_IDLE_FRACTIONS)
    )

    def __post_init__(self) -> None:
        for component, fraction in self.idle_fractions.items():
            if not 0 <= fraction <= 1:
                raise ValueError(f"idle fraction of {component} must be in [0, 1]")

    def component_power_w(
        self, bill: ServerBill, component: Component, utilization: float
    ) -> float:
        """One component's draw at a given utilization."""
        if not 0 <= utilization <= 1:
            raise ValueError("utilization must be in [0, 1]")
        peak = bill.power_of(component)
        idle_fraction = self.idle_fractions.get(component, 1.0)
        idle = idle_fraction * peak
        return idle + (peak - idle) * utilization

    def server_power_w(
        self, bill: ServerBill, utilizations: Mapping[str, float]
    ) -> float:
        """Server draw given the simulator's per-resource utilizations.

        ``utilizations`` is the :class:`SimResult.utilization` mapping
        (resource name -> mean busy fraction).  Components without a
        matching resource (board, PSU/fans, NIC share of the board) run
        at their idle fraction regardless of load.
        """
        total = 0.0
        for component in Component:
            if bill.power_of(component) == 0.0:
                continue
            resource = _COMPONENT_RESOURCE.get(component)
            utilization = utilizations.get(resource, 0.0) if resource else 0.0
            total += self.component_power_w(bill, component, utilization)
        return total

    def implied_activity_factor(
        self, bill: ServerBill, utilizations: Mapping[str, float]
    ) -> float:
        """Consumed/nameplate ratio the utilization model implies.

        Directly comparable to the paper's flat 0.75 activity factor.
        """
        nameplate = bill.power_w
        if nameplate <= 0:
            raise ValueError("bill has no power")
        return self.server_power_w(bill, utilizations) / nameplate
