"""Pricing availability: repair costs, downtime, and effective TCO.

The paper's Perf/TCO-$ metric assumes every server is always up.
Hamilton's modular-datacenter argument (PAPERS.md) is that commodity
parts fail often enough that repair labour and lost serving time belong
in the cost model.  This module adds both:

- expected *repair cost* over the three-year depreciation cycle: each
  component class fails ``cycle_hours / MTBF`` times, and every incident
  costs a technician visit plus parts (shared components split their
  incident cost across the servers sharing them);
- *effective availability* of the serving path: the product of the
  steady-state availabilities of every component a request must cross
  (series reliability-block-diagram), optionally with degraded-only
  components (a memory blade with a local-memory fallback, a flash cache
  with a raw-disk path) contributing a performance-weighted factor
  instead of an outage.

``availability_weighted_perf_per_tco`` then reruns the paper's metric as
``(perf x availability) / (TCO + repair)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping, Optional, Tuple

from repro.costmodel.tco import TcoBreakdown
from repro.faults.model import (
    ComponentType,
    DEPRECIATION_CYCLE_HOURS,
    FaultProfile,
)

#: Default per-incident repair cost (technician time + parts), USD.
#: Whole-server and blade swaps are hands-on; disks/NICs/flash are
#: sled-pull swaps; enclosure fans and PSUs are hot-swap canisters.
DEFAULT_INCIDENT_COST_USD: Mapping[ComponentType, float] = MappingProxyType({
    ComponentType.SERVER: 150.0,
    ComponentType.DISK: 80.0,
    ComponentType.NIC: 40.0,
    ComponentType.MEMORY_BLADE: 300.0,
    ComponentType.FLASH_CACHE: 30.0,
    ComponentType.ENCLOSURE_FAN: 25.0,
    ComponentType.ENCLOSURE_PSU: 60.0,
})


@dataclass(frozen=True)
class RepairCostModel:
    """Expected repair spending and availability over the cycle."""

    profile: FaultProfile
    incident_cost_usd: Mapping[ComponentType, float] = field(
        default_factory=lambda: DEFAULT_INCIDENT_COST_USD
    )
    cycle_hours: float = DEPRECIATION_CYCLE_HOURS

    def __post_init__(self) -> None:
        if self.cycle_hours <= 0:
            raise ValueError("cycle must be positive")
        object.__setattr__(
            self, "incident_cost_usd",
            MappingProxyType(dict(self.incident_cost_usd)),
        )

    def incident_cost(self, component: ComponentType) -> float:
        return self.incident_cost_usd.get(component, 0.0)

    def repair_cost_usd(
        self,
        components: Iterable[ComponentType],
        shared: Optional[Mapping[ComponentType, int]] = None,
    ) -> float:
        """Expected per-server repair cost over the depreciation cycle.

        ``components`` lists every component class in one server's
        serving path; ``shared`` maps a class to the number of servers
        splitting it (a memory blade serving 8 servers charges each
        server 1/8 of its incidents).
        """
        shared = shared or {}
        total = 0.0
        for component in components:
            spec = self.profile.spec(component)
            if spec is None:
                continue
            share = shared.get(component, 1)
            if share <= 0:
                raise ValueError(f"share for {component} must be positive")
            incidents = spec.incidents_per_cycle(self.cycle_hours)
            total += incidents * self.incident_cost(component) / share
        return total

    def effective_availability(
        self,
        components: Iterable[ComponentType],
        degraded: Optional[Mapping[ComponentType, float]] = None,
    ) -> float:
        """Serving-path availability with graceful-degradation credit.

        Components appearing in ``degraded`` do not cause an outage when
        down -- service continues at the given relative performance
        (e.g. ``{MEMORY_BLADE: 0.7}``: blade-down time still delivers
        70% of healthy throughput).  Everything else is in series: the
        path is down whenever any of them is.
        """
        degraded = degraded or {}
        availability = 1.0
        for component in components:
            spec = self.profile.spec(component)
            if spec is None:
                continue
            if component in degraded:
                credit = degraded[component]
                if not 0.0 <= credit <= 1.0:
                    raise ValueError(
                        f"degraded performance for {component} must be in [0, 1]"
                    )
                availability *= (
                    spec.availability + (1.0 - spec.availability) * credit
                )
            else:
                availability *= spec.availability
        return availability


@dataclass(frozen=True)
class AvailabilityAdjustedTco:
    """A TCO breakdown with repair costs and an availability multiplier."""

    breakdown: TcoBreakdown
    repair_usd: float
    availability: float

    def __post_init__(self) -> None:
        if self.repair_usd < 0:
            raise ValueError("repair cost must be >= 0")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    @property
    def total_usd(self) -> float:
        """TCO including expected repair spending over the cycle."""
        return self.breakdown.total_usd + self.repair_usd

    @property
    def downtime_fraction(self) -> float:
        return 1.0 - self.availability

    def downtime_hours_per_cycle(
        self, cycle_hours: float = DEPRECIATION_CYCLE_HOURS
    ) -> float:
        return self.downtime_fraction * cycle_hours

    def availability_weighted_perf_per_tco(self, performance: float) -> float:
        """The paper's Perf/TCO-$ with availability priced in."""
        if performance < 0:
            raise ValueError("performance must be >= 0")
        return performance * self.availability / self.total_usd


def availability_weighted_perf_per_tco(
    performance: float,
    breakdown: TcoBreakdown,
    repair_model: RepairCostModel,
    components: Iterable[ComponentType],
    shared: Optional[Mapping[ComponentType, int]] = None,
    degraded: Optional[Mapping[ComponentType, float]] = None,
) -> Tuple[float, AvailabilityAdjustedTco]:
    """Convenience wrapper: adjusted TCO and the weighted metric at once."""
    component_list = list(components)
    adjusted = AvailabilityAdjustedTco(
        breakdown=breakdown,
        repair_usd=repair_model.repair_cost_usd(component_list, shared),
        availability=repair_model.effective_availability(
            component_list, degraded
        ),
    )
    return adjusted.availability_weighted_perf_per_tco(performance), adjusted
