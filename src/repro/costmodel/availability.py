"""Pricing availability: repair costs, downtime, and effective TCO.

The paper's Perf/TCO-$ metric assumes every server is always up.
Hamilton's modular-datacenter argument (PAPERS.md) is that commodity
parts fail often enough that repair labour and lost serving time belong
in the cost model.  This module adds both:

- expected *repair cost* over the three-year depreciation cycle: each
  component class fails ``cycle_hours / MTBF`` times, and every incident
  costs a technician visit plus parts (shared components split their
  incident cost across the servers sharing them);
- *effective availability* of the serving path: the product of the
  steady-state availabilities of every component a request must cross
  (series reliability-block-diagram), optionally with degraded-only
  components (a memory blade with a local-memory fallback, a flash cache
  with a raw-disk path) contributing a performance-weighted factor
  instead of an outage.

``availability_weighted_perf_per_tco`` then reruns the paper's metric as
``(perf x availability) / (TCO + repair)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping, Optional, Tuple

from repro.costmodel.tco import TcoBreakdown
from repro.faults.model import (
    ComponentType,
    DEPRECIATION_CYCLE_HOURS,
    FaultProfile,
    FaultSpec,
)

#: Default per-incident repair cost (technician time + parts), USD.
#: Whole-server and blade swaps are hands-on; disks/NICs/flash are
#: sled-pull swaps; enclosure fans and PSUs are hot-swap canisters.
DEFAULT_INCIDENT_COST_USD: Mapping[ComponentType, float] = MappingProxyType({
    ComponentType.SERVER: 150.0,
    ComponentType.DISK: 80.0,
    ComponentType.NIC: 40.0,
    ComponentType.MEMORY_BLADE: 300.0,
    ComponentType.FLASH_CACHE: 30.0,
    ComponentType.ENCLOSURE_FAN: 25.0,
    ComponentType.ENCLOSURE_PSU: 60.0,
})


@dataclass(frozen=True)
class RepairCostModel:
    """Expected repair spending and availability over the cycle."""

    profile: FaultProfile
    incident_cost_usd: Mapping[ComponentType, float] = field(
        default_factory=lambda: DEFAULT_INCIDENT_COST_USD
    )
    cycle_hours: float = DEPRECIATION_CYCLE_HOURS

    def __post_init__(self) -> None:
        if self.cycle_hours <= 0:
            raise ValueError("cycle must be positive")
        object.__setattr__(
            self, "incident_cost_usd",
            MappingProxyType(dict(self.incident_cost_usd)),
        )

    def incident_cost(self, component: ComponentType) -> float:
        return self.incident_cost_usd.get(component, 0.0)

    def repair_cost_usd(
        self,
        components: Iterable[ComponentType],
        shared: Optional[Mapping[ComponentType, int]] = None,
    ) -> float:
        """Expected per-server repair cost over the depreciation cycle.

        ``components`` lists every component class in one server's
        serving path; ``shared`` maps a class to the number of servers
        splitting it (a memory blade serving 8 servers charges each
        server 1/8 of its incidents).  An empty ``components`` iterable
        costs 0.0 -- nothing in the path, nothing to repair.  Every
        ``shared`` entry is validated up front, including entries for
        components absent from the path or without a fault spec: a zero
        or negative server count is always a configuration error, never
        silently ignored.
        """
        shared = shared or {}
        for component, share in shared.items():
            if share <= 0:
                raise ValueError(
                    f"share for {component} must be positive (a shared "
                    f"component is split across >= 1 servers), got {share}"
                )
        total = 0.0
        for component in components:
            spec = self.profile.spec(component)
            if spec is None:
                continue
            incidents = spec.incidents_per_cycle(self.cycle_hours)
            total += incidents * self.incident_cost(component) / shared.get(
                component, 1
            )
        return total

    def effective_availability(
        self,
        components: Iterable[ComponentType],
        degraded: Optional[Mapping[ComponentType, float]] = None,
    ) -> float:
        """Serving-path availability with graceful-degradation credit.

        Components appearing in ``degraded`` do not cause an outage when
        down -- service continues at the given relative performance
        (e.g. ``{MEMORY_BLADE: 0.7}``: blade-down time still delivers
        70% of healthy throughput).  Everything else is in series: the
        path is down whenever any of them is.

        Edge cases are identities, not surprises: an empty
        ``components`` iterable yields 1.0 (a path with no fallible
        component is always up), components without a fault spec
        contribute 1.0, and a zero MTTR cannot reach this method
        because :class:`~repro.faults.model.FaultSpec` rejects it at
        construction -- every series factor is strictly in (0, 1].
        """
        degraded = degraded or {}
        availability = 1.0
        for component in components:
            spec = self.profile.spec(component)
            if spec is None:
                continue
            if component in degraded:
                credit = degraded[component]
                if not 0.0 <= credit <= 1.0:
                    raise ValueError(
                        f"degraded performance for {component} must be in [0, 1]"
                    )
                availability *= (
                    spec.availability + (1.0 - spec.availability) * credit
                )
            else:
                availability *= spec.availability
        return availability


@dataclass(frozen=True)
class AvailabilityAdjustedTco:
    """A TCO breakdown with repair costs and an availability multiplier."""

    breakdown: TcoBreakdown
    repair_usd: float
    availability: float

    def __post_init__(self) -> None:
        if self.repair_usd < 0:
            raise ValueError("repair cost must be >= 0")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    @property
    def total_usd(self) -> float:
        """TCO including expected repair spending over the cycle."""
        return self.breakdown.total_usd + self.repair_usd

    @property
    def downtime_fraction(self) -> float:
        return 1.0 - self.availability

    def downtime_hours_per_cycle(
        self, cycle_hours: float = DEPRECIATION_CYCLE_HOURS
    ) -> float:
        return self.downtime_fraction * cycle_hours

    def availability_weighted_perf_per_tco(self, performance: float) -> float:
        """The paper's Perf/TCO-$ with availability priced in."""
        if performance < 0:
            raise ValueError("performance must be >= 0")
        return performance * self.availability / self.total_usd


def availability_weighted_perf_per_tco(
    performance: float,
    breakdown: TcoBreakdown,
    repair_model: RepairCostModel,
    components: Iterable[ComponentType],
    shared: Optional[Mapping[ComponentType, int]] = None,
    degraded: Optional[Mapping[ComponentType, float]] = None,
) -> Tuple[float, AvailabilityAdjustedTco]:
    """Convenience wrapper: adjusted TCO and the weighted metric at once."""
    component_list = list(components)
    adjusted = AvailabilityAdjustedTco(
        breakdown=breakdown,
        repair_usd=repair_model.repair_cost_usd(component_list, shared),
        availability=repair_model.effective_availability(
            component_list, degraded
        ),
    )
    return adjusted.availability_weighted_perf_per_tco(performance), adjusted


@dataclass(frozen=True)
class DurabilityModel:
    """Mean time to data loss for a redundant memory-blade group.

    The classic Markov-chain approximation for ``n`` identical
    components tolerating ``f`` concurrent losses (Patterson/Gibson/
    Katz for f=1; the general birth-death chain otherwise), valid while
    repair is much faster than failure (MTTR << MTBF):

        MTTDL ~= MTBF^(f+1) / (n * (n-1) * ... * (n-f) * repair^f)

    - ``f = 0`` (unprotected): MTTDL = MTBF / n -- the first blade
      failure in the group loses pages;
    - ``f = 1`` (2-replica, or k+1 parity): MTBF^2 / (n * (n-1) * repair);
    - the repair window is the hardware MTTR *plus* the rebuild time,
      because a swapped-in blank blade stays vulnerable until the
      recovery orchestrator has re-replicated onto it.  A faster
      rebuild throttle therefore buys durability directly -- the knob
      EXT-13's QoS-aware throttle trades against foreground p99.
    """

    spec: FaultSpec
    group_width: int
    fault_tolerance: int
    capacity_overhead: float
    rebuild_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.group_width < 1:
            raise ValueError("group width must be >= 1")
        if not 0 <= self.fault_tolerance < self.group_width:
            raise ValueError(
                "fault tolerance must be in [0, group_width)"
            )
        if self.capacity_overhead < 1.0:
            raise ValueError("capacity overhead must be >= 1.0")
        if self.rebuild_hours < 0:
            raise ValueError("rebuild time must be >= 0")

    @classmethod
    def for_policy(
        cls,
        spec: FaultSpec,
        policy,
        blades: Optional[int] = None,
        rebuild_hours: float = 0.0,
    ) -> "DurabilityModel":
        """Build from a :class:`~repro.memsim.redundancy.RedundancyPolicy`.

        Duck-typed on ``fault_tolerance`` / ``capacity_overhead`` /
        ``min_blades`` so the costmodel never imports the simulator.
        ``policy=None`` models the unprotected arm: one copy, overhead
        1.0, tolerance 0.
        """
        if policy is None:
            return cls(
                spec=spec,
                group_width=blades or 1,
                fault_tolerance=0,
                capacity_overhead=1.0,
                rebuild_hours=rebuild_hours,
            )
        return cls(
            spec=spec,
            group_width=blades or policy.min_blades,
            fault_tolerance=policy.fault_tolerance,
            capacity_overhead=policy.capacity_overhead,
            rebuild_hours=rebuild_hours,
        )

    @property
    def repair_window_hours(self) -> float:
        """Hours of exposure per failure: hardware swap + rebuild."""
        return self.spec.mttr_hours + self.rebuild_hours

    @property
    def mttdl_hours(self) -> float:
        """Mean time to losing data somewhere in the group, hours."""
        mtbf = self.spec.mtbf_hours
        n, f = self.group_width, self.fault_tolerance
        denominator = 1.0
        for k in range(f + 1):
            denominator *= n - k
        return mtbf ** (f + 1) / (
            denominator * self.repair_window_hours**f
        )

    def data_loss_probability(
        self, cycle_hours: float = DEPRECIATION_CYCLE_HOURS
    ) -> float:
        """P(at least one loss event) over the cycle: 1 - e^(-t/MTTDL)."""
        if cycle_hours < 0:
            raise ValueError("cycle must be >= 0")
        return 1.0 - math.exp(-cycle_hours / self.mttdl_hours)

    def durability(
        self, cycle_hours: float = DEPRECIATION_CYCLE_HOURS
    ) -> float:
        """P(no loss) over the cycle -- the survival complement."""
        return 1.0 - self.data_loss_probability(cycle_hours)

    def redundancy_capex_usd(self, memory_capex_usd: float) -> float:
        """Extra capacity spend: copies you buy but cannot sell.

        ``memory_capex_usd`` is the *usable* remote-memory capital cost;
        the redundant raw capacity multiplies it by the overhead, and
        this returns only the increment (0.0 when unprotected).
        """
        if memory_capex_usd < 0:
            raise ValueError("memory capex must be >= 0")
        return memory_capex_usd * (self.capacity_overhead - 1.0)


@dataclass(frozen=True)
class DurabilityAdjustedTco:
    """Availability-adjusted TCO further charged for durability.

    Stacks on :class:`AvailabilityAdjustedTco`: the denominator grows by
    the redundant-capacity capex, and the numerator is discounted by the
    probability the group keeps every page through the depreciation
    cycle.  An unprotected group pays no capacity premium but eats the
    full ``1 - e^(-t/MTTDL)`` durability discount; a protected one pays
    the premium and keeps the numerator -- which arm wins is exactly the
    durability-vs-cost trade EXT-13 sweeps.
    """

    adjusted: AvailabilityAdjustedTco
    durability_model: DurabilityModel
    memory_capex_usd: float

    def __post_init__(self) -> None:
        if self.memory_capex_usd < 0:
            raise ValueError("memory capex must be >= 0")

    @property
    def redundancy_capex_usd(self) -> float:
        return self.durability_model.redundancy_capex_usd(
            self.memory_capex_usd
        )

    @property
    def total_usd(self) -> float:
        """TCO + expected repair + redundant-capacity capex."""
        return self.adjusted.total_usd + self.redundancy_capex_usd

    def durability_weighted_perf_per_tco(
        self,
        performance: float,
        cycle_hours: float = DEPRECIATION_CYCLE_HOURS,
    ) -> float:
        """Perf/TCO-$ weighted by availability *and* durability."""
        if performance < 0:
            raise ValueError("performance must be >= 0")
        return (
            performance
            * self.adjusted.availability
            * self.durability_model.durability(cycle_hours)
            / self.total_usd
        )
