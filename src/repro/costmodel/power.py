"""Power-consumption model with activity-factor discounting.

The paper computes rack-level consumed power as the sum of per-server
component power plus the rack-level switch power, discounted by an
*activity factor* of 0.75 because actual consumption is documented to be
lower than the maximum operational power from spec sheets (Fan et al.;
paper section 2.2).  The paper also reports that activity factors from 0.5
to 1.0 give qualitatively similar results, which the sensitivity sweep in
:mod:`repro.experiments.sensitivity` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.costmodel.components import Component, ServerBill
from repro.costmodel.rack import RackConfig, STANDARD_RACK

#: The paper's default activity factor (section 2.2).
DEFAULT_ACTIVITY_FACTOR = 0.75


@dataclass(frozen=True)
class PowerModel:
    """Converts spec-sheet component power into consumed power.

    ``activity_factor`` multiplies the maximum operational power of every
    component (and the switch share) to estimate actual draw.
    """

    activity_factor: float = DEFAULT_ACTIVITY_FACTOR
    rack: RackConfig = STANDARD_RACK

    def __post_init__(self) -> None:
        if not 0.0 < self.activity_factor <= 1.0:
            raise ValueError(
                f"activity factor must be in (0, 1], got {self.activity_factor}"
            )

    def server_consumed_w(self, bill: ServerBill, include_switch: bool = True) -> float:
        """Average consumed power of one server, optionally with switch share."""
        watts = bill.power_w
        if include_switch:
            watts += self.rack.switch_power_per_server_w
        return watts * self.activity_factor

    def component_consumed_w(self, bill: ServerBill) -> Dict[Component, float]:
        """Average consumed power per component group (switch excluded)."""
        return {
            component: spec.power_w * self.activity_factor
            for component, spec in bill.items()
        }

    def switch_consumed_per_server_w(self) -> float:
        """Average per-server share of switch power."""
        return self.rack.switch_power_per_server_w * self.activity_factor

    def rack_consumed_w(self, bill: ServerBill) -> float:
        """Average consumed power of a full rack of this server."""
        return self.rack.rack_power_w(bill.power_w) * self.activity_factor

    def energy_wh(self, consumed_w: float, hours: float) -> float:
        """Energy in watt-hours for a constant average draw over ``hours``."""
        if hours < 0:
            raise ValueError("hours must be >= 0")
        return consumed_w * hours
