"""Three-year total cost of ownership (TCO) per server.

Combines the hardware bill (:mod:`repro.costmodel.components`), rack
amortization (:mod:`repro.costmodel.rack`), consumed power
(:mod:`repro.costmodel.power`) and the burdened P&C model
(:mod:`repro.costmodel.burdened`) into the per-server TCO the paper's
Perf/TCO-$ metric divides by.

:class:`TcoBreakdown` exposes every line of the paper's Figure 1(a) table
and the component-level split of Figure 1(b) (hardware vs burdened power
and cooling per component, plus the rack/switch share).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.costmodel.burdened import BurdenedPowerCoolingModel
from repro.costmodel.components import ServerBill
from repro.costmodel.power import PowerModel
from repro.costmodel.rack import RackConfig


class CostCategory(enum.Enum):
    """Whether a cost line is hardware capital or burdened power & cooling."""

    HARDWARE = "HW"
    POWER_COOLING = "P&C"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Pseudo-component used for the rack/switch share in breakdowns.
RACK_SHARE = "rack+switch"


@dataclass(frozen=True)
class TcoBreakdown:
    """Full per-server cost decomposition over the depreciation cycle."""

    system: str
    hardware_usd: Dict[str, float]
    power_cooling_usd: Dict[str, float]
    server_power_w: float
    consumed_power_w: float

    @property
    def hardware_total_usd(self) -> float:
        """Per-server hardware cost including the rack/switch share."""
        return sum(self.hardware_usd.values())

    @property
    def power_cooling_total_usd(self) -> float:
        """Burdened power-and-cooling cost over the cycle."""
        return sum(self.power_cooling_usd.values())

    @property
    def total_usd(self) -> float:
        """Total cost of ownership (the paper's "Total costs" line)."""
        return self.hardware_total_usd + self.power_cooling_total_usd

    def share(self, label: str, category: CostCategory) -> float:
        """Fraction of TCO contributed by one (component, category) slice.

        These are the slices of the paper's Figure 1(b) pie chart, e.g.
        ``share("cpu", CostCategory.HARDWARE)`` is about 0.20 for srvr2.
        """
        table = (
            self.hardware_usd
            if category is CostCategory.HARDWARE
            else self.power_cooling_usd
        )
        return table.get(label, 0.0) / self.total_usd

    def pie_slices(self) -> Dict[Tuple[str, CostCategory], float]:
        """All Figure 1(b) pie slices as ``{(label, category): fraction}``."""
        slices: Dict[Tuple[str, CostCategory], float] = {}
        for label, usd in self.hardware_usd.items():
            slices[(label, CostCategory.HARDWARE)] = usd / self.total_usd
        for label, usd in self.power_cooling_usd.items():
            slices[(label, CostCategory.POWER_COOLING)] = usd / self.total_usd
        return slices


@dataclass(frozen=True)
class TcoModel:
    """Per-server TCO calculator with the paper's default parameters."""

    power_model: PowerModel = field(default_factory=PowerModel)
    burdened_model: BurdenedPowerCoolingModel = field(
        default_factory=BurdenedPowerCoolingModel
    )

    @property
    def rack(self) -> RackConfig:
        return self.power_model.rack

    def breakdown(self, bill: ServerBill) -> TcoBreakdown:
        """Compute the full cost decomposition for one server bill."""
        hardware: Dict[str, float] = {
            component.value: spec.cost_usd for component, spec in bill.items()
        }
        hardware[RACK_SHARE] = self.rack.switch_cost_per_server_usd

        power_cooling: Dict[str, float] = {}
        for component, watts in self.power_model.component_consumed_w(bill).items():
            power_cooling[component.value] = self.burdened_model.cost_usd(watts)
        power_cooling[RACK_SHARE] = self.burdened_model.cost_usd(
            self.power_model.switch_consumed_per_server_w()
        )

        return TcoBreakdown(
            system=bill.name,
            hardware_usd=hardware,
            power_cooling_usd=power_cooling,
            server_power_w=bill.power_w,
            consumed_power_w=self.power_model.server_consumed_w(bill),
        )

    def total_usd(self, bill: ServerBill) -> float:
        """Per-server TCO (hardware + burdened P&C + rack share)."""
        return self.breakdown(bill).total_usd

    def infrastructure_usd(self, bill: ServerBill) -> float:
        """Per-server infrastructure (hardware-only) cost incl. rack share."""
        return self.breakdown(bill).hardware_total_usd

    def power_cooling_usd(self, bill: ServerBill) -> float:
        """Per-server burdened power-and-cooling cost over the cycle."""
        return self.breakdown(bill).power_cooling_total_usd

    def availability_adjusted(
        self,
        bill: ServerBill,
        repair_model,
        components,
        shared=None,
        degraded=None,
    ):
        """The breakdown plus repair costs and an availability multiplier.

        ``repair_model`` is a
        :class:`repro.costmodel.availability.RepairCostModel`;
        ``components`` lists the :class:`repro.faults.ComponentType`
        classes in this server's serving path, ``shared`` how many
        servers split each shared one, and ``degraded`` the relative
        performance retained when a gracefully-degrading component is
        down.  Returns an
        :class:`repro.costmodel.availability.AvailabilityAdjustedTco`.
        """
        # Imported here: repro.costmodel.availability depends on this
        # module for TcoBreakdown.
        from repro.costmodel.availability import AvailabilityAdjustedTco

        component_list = list(components)
        return AvailabilityAdjustedTco(
            breakdown=self.breakdown(bill),
            repair_usd=repair_model.repair_cost_usd(component_list, shared),
            availability=repair_model.effective_availability(
                component_list, degraded
            ),
        )
