"""Per-server component cost and power records.

The paper's Figure 1(a) decomposes each server into five component groups
(CPU, memory, disk, board + management, power + fans).  A
:class:`ServerBill` holds the per-component hardware cost (dollars) and
maximum operational power (watts) for one server configuration, and derives
the per-server totals the rest of the cost model builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple


class Component(enum.Enum):
    """Server component groups used in the paper's cost breakdowns."""

    CPU = "cpu"
    MEMORY = "memory"
    DISK = "disk"
    BOARD = "board+mgmt"
    POWER_FANS = "power+fans"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ComponentSpec:
    """Hardware cost and maximum operational power for one component group.

    ``power_w`` is the *maximum operational* power from spec sheets and
    vendor power calculators, before the activity-factor discount is
    applied (paper section 2.2).
    """

    cost_usd: float
    power_w: float

    def __post_init__(self) -> None:
        if self.cost_usd < 0:
            raise ValueError(f"component cost must be >= 0, got {self.cost_usd}")
        if self.power_w < 0:
            raise ValueError(f"component power must be >= 0, got {self.power_w}")

    def scaled(self, cost_factor: float = 1.0, power_factor: float = 1.0) -> "ComponentSpec":
        """Return a copy with cost and/or power scaled by the given factors."""
        if cost_factor < 0 or power_factor < 0:
            raise ValueError("scale factors must be >= 0")
        return ComponentSpec(self.cost_usd * cost_factor, self.power_w * power_factor)


@dataclass(frozen=True)
class ServerBill:
    """Complete per-server bill of materials: cost and power by component.

    This corresponds to one column of the paper's Figure 1(a) table
    (for example ``srvr1``: CPU $1,700 / 210 W, memory $350 / 25 W, ...).
    """

    name: str
    components: Mapping[Component, ComponentSpec]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a server bill must have at least one component")
        unknown = [c for c in self.components if not isinstance(c, Component)]
        if unknown:
            raise ValueError(f"unknown component keys: {unknown}")
        # Freeze the mapping so the bill is genuinely immutable.
        object.__setattr__(self, "components", dict(self.components))

    @property
    def hardware_cost_usd(self) -> float:
        """Total per-server hardware cost (sum over components)."""
        return sum(spec.cost_usd for spec in self.components.values())

    @property
    def power_w(self) -> float:
        """Total per-server maximum operational power (sum over components)."""
        return sum(spec.power_w for spec in self.components.values())

    def cost_of(self, component: Component) -> float:
        """Hardware cost of one component group (0 if absent)."""
        spec = self.components.get(component)
        return spec.cost_usd if spec is not None else 0.0

    def power_of(self, component: Component) -> float:
        """Maximum operational power of one component group (0 if absent)."""
        spec = self.components.get(component)
        return spec.power_w if spec is not None else 0.0

    def items(self) -> Iterator[Tuple[Component, ComponentSpec]]:
        """Iterate over ``(component, spec)`` pairs in enum order."""
        for component in Component:
            if component in self.components:
                yield component, self.components[component]

    def replace(
        self,
        name: str | None = None,
        **overrides: ComponentSpec,
    ) -> "ServerBill":
        """Return a new bill with some component specs replaced.

        Component overrides are given by the lowercase enum *name*, e.g.
        ``bill.replace(disk=ComponentSpec(80, 2))``.  This is how the
        unified designs (paper section 3.6) derive their bills from the
        catalog entries.
        """
        new_components: Dict[Component, ComponentSpec] = dict(self.components)
        for key, spec in overrides.items():
            try:
                component = Component[key.upper()]
            except KeyError as exc:
                raise ValueError(f"unknown component override {key!r}") from exc
            new_components[component] = spec
        return ServerBill(
            name=name if name is not None else self.name,
            components=new_components,
            description=self.description,
        )

    def scaled(self, cost_factor: float = 1.0, power_factor: float = 1.0) -> "ServerBill":
        """Return a copy with every component's cost/power scaled uniformly."""
        return ServerBill(
            name=self.name,
            components={
                component: spec.scaled(cost_factor, power_factor)
                for component, spec in self.components.items()
            },
            description=self.description,
        )
