"""Real-estate (floor-space) costs — the paper's acknowledged gap.

Section 4: "Ideally, personnel and real-estate costs, though harder to
characterize, would also be included in such a model."  This module adds
the real-estate half: racks occupy floor space (rack footprint plus
service clearance and a share of aisles/infrastructure), and datacenter
floor space carries an amortized cost per square foot per depreciation
cycle.

Density is where the paper's packaging work pays: 320 or 1250 systems
per rack amortize the same floor tile over 8-31x more servers, which is
the quantitative basis for the section 3.6 claim that N2 "consumes 30%
less racks" for equal throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.rack import RackConfig, STANDARD_RACK


@dataclass(frozen=True)
class RealEstateModel:
    """Amortized floor-space cost per rack position.

    ``gross_sqft_per_rack`` covers the rack footprint plus its share of
    hot/cold aisles and support space (industry rule of thumb: ~3x the
    ~8 sqft rack footprint).  ``cost_per_sqft_cycle_usd`` is the
    amortized build-out + lease cost over the 3-year depreciation cycle.
    """

    gross_sqft_per_rack: float = 24.0
    cost_per_sqft_cycle_usd: float = 300.0

    def __post_init__(self) -> None:
        if self.gross_sqft_per_rack <= 0:
            raise ValueError("rack floor space must be positive")
        if self.cost_per_sqft_cycle_usd < 0:
            raise ValueError("floor-space cost must be >= 0")

    @property
    def cost_per_rack_usd(self) -> float:
        """Floor-space cost of one rack position over the cycle."""
        return self.gross_sqft_per_rack * self.cost_per_sqft_cycle_usd

    def cost_per_server_usd(self, rack: RackConfig = STANDARD_RACK) -> float:
        """Per-server share of the rack's floor-space cost."""
        return self.cost_per_rack_usd / rack.servers_per_rack

    def fleet_cost_usd(self, servers: int, rack: RackConfig = STANDARD_RACK) -> float:
        """Floor-space cost of a fleet (whole racks)."""
        if servers < 0:
            raise ValueError("server count must be >= 0")
        racks = -(-servers // rack.servers_per_rack) if servers else 0
        return racks * self.cost_per_rack_usd

    def density_savings(
        self, dense_rack: RackConfig, base_rack: RackConfig = STANDARD_RACK
    ) -> float:
        """Fractional per-server floor-space saving from densification."""
        base = self.cost_per_server_usd(base_rack)
        dense = self.cost_per_server_usd(dense_rack)
        return 1.0 - dense / base


#: Default model: ~$7,200 of floor space per rack position per cycle.
DEFAULT_REAL_ESTATE = RealEstateModel()
