"""Rack-level configuration: server count, switch cost, and switch power.

The paper cumulates per-server costs at the rack level and adds switch and
enclosure costs there (section 2.2).  Figure 1(a) uses 40 servers per rack,
a $2,750 switch+rack cost, and 40 W of switch power per rack; the new
packaging designs of section 3.3 raise the density to 320 (dual-entry
enclosures) and 1250 (aggregated microblades) systems per rack.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RackConfig:
    """Rack composition shared by every server in the ensemble.

    ``servers_per_rack`` amortizes the switch/rack cost and power across
    servers; denser packaging therefore directly reduces the per-server
    rack overhead.
    """

    servers_per_rack: int = 40
    switch_rack_cost_usd: float = 2750.0
    switch_rack_power_w: float = 40.0
    rack_units: int = 42

    def __post_init__(self) -> None:
        if self.servers_per_rack <= 0:
            raise ValueError("servers_per_rack must be positive")
        if self.switch_rack_cost_usd < 0 or self.switch_rack_power_w < 0:
            raise ValueError("switch cost/power must be >= 0")

    @property
    def switch_cost_per_server_usd(self) -> float:
        """Per-server share of the switch + rack hardware cost."""
        return self.switch_rack_cost_usd / self.servers_per_rack

    @property
    def switch_power_per_server_w(self) -> float:
        """Per-server share of the switch power."""
        return self.switch_rack_power_w / self.servers_per_rack

    def rack_power_w(self, server_power_w: float) -> float:
        """Total rack power for servers drawing ``server_power_w`` each.

        Used for the paper's section 3.2 observation that a rack of srvr1
        consumes 13.6 kW while a rack of emb1 consumes only 2.7 kW.
        """
        if server_power_w < 0:
            raise ValueError("server power must be >= 0")
        return self.servers_per_rack * server_power_w + self.switch_rack_power_w

    def with_density(self, servers_per_rack: int, switch_scale: float = 1.0) -> "RackConfig":
        """Return a denser rack; switch cost/power scale with ``switch_scale``.

        Denser racks need more switch ports; by default the switch cost is
        held constant (conservative: it then amortizes over more servers).
        """
        return RackConfig(
            servers_per_rack=servers_per_rack,
            switch_rack_cost_usd=self.switch_rack_cost_usd * switch_scale,
            switch_rack_power_w=self.switch_rack_power_w * switch_scale,
            rack_units=self.rack_units,
        )


#: The paper's default rack: 40 1U "pizza box" servers, $2,750 switch.
STANDARD_RACK = RackConfig()
