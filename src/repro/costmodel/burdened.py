"""Burdened power-and-cooling cost: the Patel-Shah model.

The paper (section 2.2) uses the methodology of Patel et al. to convert
consumed power into a *burdened* cost that also covers the power-delivery
and cooling infrastructure::

    PowerCoolingCost = (1 + K1 + L1 * (1 + K2)) * U_grid * P_consumed * T

where

- ``K1``  amortized capital expenditure of the power-delivery
          infrastructure, as a multiple of the electricity cost,
- ``L1``  cooling load factor: watts of cooling power per watt of
          IT power,
- ``K2``  amortized capital expenditure of the cooling infrastructure,
          as a multiple of the cooling electricity cost,
- ``U_grid``  electricity tariff ($/Wh), and
- ``P_consumed * T``  the consumed energy over the depreciation period.

With the paper's defaults (K1 = 1.33, L1 = 0.8, K2 = 0.667, $100/MWh,
3-year cycle, activity factor 0.75 and per-server switch share) this
reproduces Figure 1(a)'s published burdened costs: srvr1 $2,464 and
srvr2 $1,561 (we compute $2,462 and $1,560; the residue is rounding in
the paper's table).

The paper notes the tariff can vary from $50/MWh to $170/MWh; the
sensitivity experiment sweeps that range.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Hours in the paper's three-year depreciation cycle.
HOURS_PER_YEAR = 8760.0
DEFAULT_DEPRECIATION_YEARS = 3.0


@dataclass(frozen=True)
class BurdenedCostParameters:
    """K1/L1/K2 burden factors and the electricity tariff."""

    k1: float = 1.33
    l1: float = 0.8
    k2: float = 0.667
    tariff_usd_per_mwh: float = 100.0

    def __post_init__(self) -> None:
        for name in ("k1", "l1", "k2"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.tariff_usd_per_mwh <= 0:
            raise ValueError("tariff must be positive")

    @property
    def burden_factor(self) -> float:
        """Multiplier on raw electricity cost: ``1 + K1 + L1*(1 + K2)``."""
        return 1.0 + self.k1 + self.l1 * (1.0 + self.k2)

    @property
    def tariff_usd_per_wh(self) -> float:
        return self.tariff_usd_per_mwh / 1.0e6


#: Paper defaults: K1=1.33, L1=0.8, K2=0.667, $100/MWh.
DEFAULT_BURDEN_PARAMETERS = BurdenedCostParameters()


@dataclass(frozen=True)
class BurdenedPowerCoolingModel:
    """Computes burdened power-and-cooling dollars from consumed watts."""

    parameters: BurdenedCostParameters = DEFAULT_BURDEN_PARAMETERS
    years: float = DEFAULT_DEPRECIATION_YEARS

    def __post_init__(self) -> None:
        if self.years <= 0:
            raise ValueError("depreciation period must be positive")

    @property
    def hours(self) -> float:
        """Total powered-on hours over the depreciation period."""
        return self.years * HOURS_PER_YEAR

    def cost_usd(self, consumed_w: float) -> float:
        """Burdened P&C cost of a constant ``consumed_w`` draw over the cycle.

        This is the paper's "3-yr power & cooling" line in Figure 1(a).
        """
        if consumed_w < 0:
            raise ValueError("consumed power must be >= 0")
        energy_wh = consumed_w * self.hours
        electricity = energy_wh * self.parameters.tariff_usd_per_wh
        return electricity * self.parameters.burden_factor

    def cost_per_watt_usd(self) -> float:
        """Burdened cost of one watt of continuous draw over the cycle."""
        return self.cost_usd(1.0)
