"""Cost and power models for warehouse-computing servers (paper section 2.2).

The model has two halves, exactly as the paper describes:

1. *Base hardware costs*: per-component costs (CPU, memory, disk, board and
   management, power-and-cooling hardware such as power supplies and fans)
   accumulated at the server level, plus switch and enclosure costs at the
   rack level.
2. *Burdened power and cooling costs*: rack-level power consumption (with an
   activity factor to discount nameplate/max-operational power), fed into
   the Patel-Shah burdened-cost model with amortized power-delivery (K1),
   cooling electricity (L1) and cooling capital (K2) factors.

The total cost of ownership (TCO) over a three-year depreciation cycle is
the sum of the two.
"""

from repro.costmodel.components import Component, ComponentSpec, ServerBill
from repro.costmodel.rack import RackConfig, STANDARD_RACK
from repro.costmodel.power import PowerModel, DEFAULT_ACTIVITY_FACTOR
from repro.costmodel.burdened import (
    BurdenedCostParameters,
    BurdenedPowerCoolingModel,
    DEFAULT_BURDEN_PARAMETERS,
)
from repro.costmodel.tco import TcoModel, TcoBreakdown, CostCategory
from repro.costmodel.catalog import (
    SERVER_BILLS,
    server_bill,
    system_names,
)
from repro.costmodel.availability import (
    AvailabilityAdjustedTco,
    DEFAULT_INCIDENT_COST_USD,
    DurabilityAdjustedTco,
    DurabilityModel,
    RepairCostModel,
    availability_weighted_perf_per_tco,
)
from repro.costmodel.realestate import DEFAULT_REAL_ESTATE, RealEstateModel
from repro.costmodel.utilization_power import UtilizationPowerModel

__all__ = [
    "Component",
    "ComponentSpec",
    "ServerBill",
    "RackConfig",
    "STANDARD_RACK",
    "PowerModel",
    "DEFAULT_ACTIVITY_FACTOR",
    "BurdenedCostParameters",
    "BurdenedPowerCoolingModel",
    "DEFAULT_BURDEN_PARAMETERS",
    "TcoModel",
    "TcoBreakdown",
    "CostCategory",
    "SERVER_BILLS",
    "server_bill",
    "system_names",
    "AvailabilityAdjustedTco",
    "DEFAULT_INCIDENT_COST_USD",
    "DurabilityAdjustedTco",
    "DurabilityModel",
    "RepairCostModel",
    "availability_weighted_perf_per_tco",
    "DEFAULT_REAL_ESTATE",
    "RealEstateModel",
    "UtilizationPowerModel",
]
