"""The six-system cost/power catalog (paper Figure 1(a) and Table 2).

``srvr1`` and ``srvr2`` reproduce Figure 1(a)'s published per-component
breakdown exactly.  The paper publishes only *totals* for the other four
systems (Table 2: desk $849 / 135 W, mobl $989 / 78 W, emb1 $499 / 52 W,
emb2 $379 / 35 W, where the dollar figures include the $68.75 per-server
switch share); the per-component splits below are interpolations chosen to

- sum to the published totals (within $1 / 0 W),
- keep the 7.2k-RPM desktop disk constant at $120 / 10 W across the
  non-srvr1 systems (matching Table 3(a) and the text's "all others have a
  7.2k RPM disk"),
- reflect the paper's qualitative statements: consumer DDR2 memory is
  cheaper than FB-DIMM, the mobile platform carries a low-power price
  premium, and embedded boards are small and cheap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.costmodel.components import Component, ComponentSpec, ServerBill

_C = Component


def _bill(name: str, description: str, rows: Dict[Component, ComponentSpec]) -> ServerBill:
    return ServerBill(name=name, components=rows, description=description)


#: Per-server bills for the six systems of Table 2.
SERVER_BILLS: Dict[str, ServerBill] = {
    "srvr1": _bill(
        "srvr1",
        "Mid-range server (Xeon MP / Opteron MP class): 2p x 4 cores @ 2.6 GHz,"
        " FB-DIMM memory, 15k RPM disk, 10 GbE NIC.",
        {
            _C.CPU: ComponentSpec(1700.0, 210.0),
            _C.MEMORY: ComponentSpec(350.0, 25.0),
            _C.DISK: ComponentSpec(275.0, 15.0),
            _C.BOARD: ComponentSpec(400.0, 50.0),
            _C.POWER_FANS: ComponentSpec(500.0, 40.0),
        },
    ),
    "srvr2": _bill(
        "srvr2",
        "Low-end server (Xeon / Opteron class): 1p x 4 cores @ 2.6 GHz,"
        " FB-DIMM memory, 7.2k RPM disk, 1 GbE NIC.",
        {
            _C.CPU: ComponentSpec(650.0, 105.0),
            _C.MEMORY: ComponentSpec(350.0, 25.0),
            _C.DISK: ComponentSpec(120.0, 10.0),
            _C.BOARD: ComponentSpec(250.0, 40.0),
            _C.POWER_FANS: ComponentSpec(250.0, 35.0),
        },
    ),
    "desk": _bill(
        "desk",
        "Desktop (Core 2 / Athlon 64 class): 1p x 2 cores @ 2.2 GHz, DDR2"
        " memory, 7.2k RPM disk, 1 GbE NIC.  Component split interpolated"
        " from Table 2 totals ($849 incl. switch share / 135 W).",
        {
            _C.CPU: ComponentSpec(200.0, 65.0),
            _C.MEMORY: ComponentSpec(190.0, 20.0),
            _C.DISK: ComponentSpec(120.0, 10.0),
            _C.BOARD: ComponentSpec(150.0, 25.0),
            _C.POWER_FANS: ComponentSpec(120.0, 15.0),
        },
    ),
    "mobl": _bill(
        "mobl",
        "Mobile (Core 2 Mobile / Turion class): 1p x 2 cores @ 2.0 GHz, DDR2"
        " memory, 7.2k RPM disk, 1 GbE NIC.  Carries the low-power price"
        " premium the paper notes; interpolated from Table 2 totals"
        " ($989 / 78 W).",
        {
            _C.CPU: ComponentSpec(350.0, 30.0),
            _C.MEMORY: ComponentSpec(230.0, 18.0),
            _C.DISK: ComponentSpec(120.0, 10.0),
            _C.BOARD: ComponentSpec(130.0, 15.0),
            _C.POWER_FANS: ComponentSpec(90.0, 5.0),
        },
    ),
    "emb1": _bill(
        "emb1",
        "Mid-range embedded (PA Semi / embedded Athlon 64 class): 1p x 2"
        " cores @ 1.2 GHz, DDR2 memory, 7.2k RPM disk, 1 GbE NIC."
        "  Interpolated from Table 2 totals ($499 / 52 W).",
        {
            _C.CPU: ComponentSpec(60.0, 10.0),
            _C.MEMORY: ComponentSpec(160.0, 18.0),
            _C.DISK: ComponentSpec(120.0, 10.0),
            _C.BOARD: ComponentSpec(50.0, 10.0),
            _C.POWER_FANS: ComponentSpec(40.0, 4.0),
        },
    ),
    "emb2": _bill(
        "emb2",
        "Low-end embedded (AMD Geode / VIA Eden-N class): 1p x 1 in-order"
        " core @ 600 MHz, DDR1 memory, 7.2k RPM disk, 1 GbE NIC."
        "  Interpolated from Table 2 totals ($379 / 35 W).",
        {
            _C.CPU: ComponentSpec(30.0, 5.0),
            _C.MEMORY: ComponentSpec(130.0, 12.0),
            _C.DISK: ComponentSpec(120.0, 10.0),
            _C.BOARD: ComponentSpec(20.0, 6.0),
            _C.POWER_FANS: ComponentSpec(10.0, 2.0),
        },
    ),
}


def server_bill(name: str) -> ServerBill:
    """Look up a catalog bill by system name (``srvr1`` ... ``emb2``)."""
    try:
        return SERVER_BILLS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown system {name!r}; known systems: {sorted(SERVER_BILLS)}"
        ) from exc


def system_names() -> List[str]:
    """Catalog systems in the paper's Table 2 order."""
    return ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"]
