"""Performance layer: parallel execution, result caching, fast variates.

``repro.perf`` makes the evaluation pipeline itself fast (ROADMAP north
star: "runs as fast as the hardware allows") without changing a single
result:

- :mod:`repro.perf.parallel` -- process-pool experiment fan-out with
  order-preserving, seed-stable merging (``repro-experiments --jobs N``);
- :mod:`repro.perf.cache` -- a content-hashed experiment result cache
  keyed on experiment name + parameters + a source fingerprint;
- :mod:`repro.perf.variates` -- stream-identical fast exponential
  sampling for the DES hot paths;
- :mod:`repro.perf.kernels` -- single-pass miss-ratio-curve kernels
  (Mattson stack distances, vectorized) for the memory and flash trace
  simulators;
- :mod:`repro.perf.bench` -- the tracked benchmark harness behind
  ``repro-bench`` and ``BENCH_results.json``.
"""

from repro.perf.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from repro.perf.kernels import (
    FlashCounts,
    FlashHitCurve,
    MissCounts,
    MissRatioCurve,
    flash_hit_curve,
    flash_replay,
    miss_ratio_curve,
    stack_distances,
)
from repro.perf.parallel import (
    default_jobs,
    in_worker,
    intra_jobs,
    merge_telemetry,
    pmap,
    run_experiments,
    set_intra_jobs,
)
from repro.perf.variates import ExponentialBlock, exponential_sampler

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_fingerprint",
    "default_jobs",
    "in_worker",
    "intra_jobs",
    "merge_telemetry",
    "pmap",
    "run_experiments",
    "set_intra_jobs",
    "ExponentialBlock",
    "exponential_sampler",
    "FlashCounts",
    "FlashHitCurve",
    "MissCounts",
    "MissRatioCurve",
    "flash_hit_curve",
    "flash_replay",
    "miss_ratio_curve",
    "stack_distances",
]
