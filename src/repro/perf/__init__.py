"""Performance layer: parallel execution, result caching, fast variates.

``repro.perf`` makes the evaluation pipeline itself fast (ROADMAP north
star: "runs as fast as the hardware allows") without changing a single
result:

- :mod:`repro.perf.parallel` -- process-pool experiment fan-out with
  order-preserving, seed-stable merging (``repro-experiments --jobs N``);
- :mod:`repro.perf.cache` -- a content-hashed experiment result cache
  keyed on experiment name + parameters + a source fingerprint;
- :mod:`repro.perf.variates` -- stream-identical fast exponential
  sampling for the DES hot paths;
- :mod:`repro.perf.kernels` -- single-pass miss-ratio-curve kernels
  (Mattson stack distances, vectorized) for the memory and flash trace
  simulators, plus the Lindley-recurrence queueing cohort kernels the
  sharded engine drains windows through;
- :mod:`repro.perf.sharded` -- the sharded parallel DES: rack cells
  simulated independently in conservative time windows, vectorized
  event cohorts, and a calibrated M/M/1(/K) analytic fast path;
- :mod:`repro.perf.bench` -- the tracked benchmark harness behind
  ``repro-bench`` and ``BENCH_results.json``.
"""

from repro.perf.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from repro.perf.kernels import (
    FlashCounts,
    FlashHitCurve,
    MissCounts,
    MissRatioCurve,
    cohort_departures,
    cohort_departures_capped,
    flash_hit_curve,
    flash_replay,
    fresh_queue_carry,
    miss_ratio_curve,
    stack_distances,
)
from repro.perf.parallel import (
    default_jobs,
    in_worker,
    intra_jobs,
    merge_telemetry,
    pmap,
    pmap_iter,
    run_experiments,
    set_intra_jobs,
)
from repro.perf.variates import (
    ExponentialBlock,
    exponential_block,
    exponential_fill,
    exponential_sampler,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_fingerprint",
    "default_jobs",
    "in_worker",
    "intra_jobs",
    "merge_telemetry",
    "pmap",
    "pmap_iter",
    "run_experiments",
    "set_intra_jobs",
    "ExponentialBlock",
    "exponential_block",
    "exponential_fill",
    "exponential_sampler",
    "HYBRID_TOLERANCE",
    "RackScenario",
    "RackResult",
    "ShardedClusterResult",
    "ShardedClusterSimulator",
    "run_rack",
    "cohort_departures",
    "cohort_departures_capped",
    "fresh_queue_carry",
    "FlashCounts",
    "FlashHitCurve",
    "MissCounts",
    "MissRatioCurve",
    "flash_hit_curve",
    "flash_replay",
    "miss_ratio_curve",
    "stack_distances",
]

#: Lazy exports (PEP 562): :mod:`repro.perf.sharded` pulls in the
#: simulator and workload layers, which themselves import this package
#: for the kernels -- resolving these names on first access instead of
#: at import time keeps the package import acyclic.
_SHARDED_EXPORTS = (
    "HYBRID_TOLERANCE",
    "RackScenario",
    "RackResult",
    "ShardedClusterResult",
    "ShardedClusterSimulator",
    "run_rack",
)


def __getattr__(name):
    if name in _SHARDED_EXPORTS:
        from repro.perf import sharded

        return getattr(sharded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
