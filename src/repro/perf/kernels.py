"""Single-pass miss-ratio-curve kernels for the trace simulators.

Exact LRU obeys the *inclusion* (stack) property: the content of an LRU
cache of capacity ``C`` is always the top ``C`` entries of the recency
stack, for every ``C`` at once.  One pass that records each access's
**stack distance** -- the number of distinct addresses touched since the
previous access to the same address, counting that address itself --
therefore answers hit/miss for *every* capacity: access ``i`` hits a
cache of capacity ``C`` iff ``dist[i] <= C`` (Mattson et al., 1970).

The kernels here compute the full stack-distance histogram of a trace
with numpy in ``O(n log n)`` and package it as:

- :class:`MissRatioCurve` -- miss/eviction/writeback counts for the
  two-level memory simulator, bit-identical to replaying the trace
  through the scalar ``LruPolicy`` (which stays as the oracle; see
  ``tests/perf/test_kernels.py``).
- :class:`FlashHitCurve` -- hit/wear counters for a read stream through
  the flash disk cache at every capacity at once.
- :func:`flash_replay` -- an exact vectorized replay of the flash
  cache's *mixed* read/write discipline at one capacity (write-through
  updates refresh recency only when the object is resident, which makes
  the verdicts self-referential; solved by fixed-point iteration with a
  scalar fallback).

The stack distance reduces to an inversion count: with ``prev[i]`` the
index of the previous access to the same address (``-1`` on a first
touch), the distinct addresses between ``prev[i]`` and ``i`` are exactly
the accesses ``j`` in ``(prev[i], i)`` whose *own* previous occurrence
lies at or before ``prev[i]`` -- i.e.

    dist[i] = (i - prev[i]) - #{j < i : prev[j] > prev[i]}

because non-first ``prev`` values are distinct and every ``j`` with
``prev[j] > prev[i]`` sits inside the window and duplicates an address
already counted.  :func:`prev_greater_counts` computes those per-element
"previous greater" counts with a vectorized bottom-up mergesort: at each
level, one flat ``searchsorted`` ranks every right-block element within
its left sibling (rows packed as ``pair_id * span + value`` so one call
handles all pairs), a prefix-sum turns ranks into counted-element
counts, and the same ranks drive the merge for the next level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Stack distance assigned to first touches (compulsory misses): larger
#: than any possible capacity, so ``dist > C`` for every ``C``.
FIRST_TOUCH = np.iinfo(np.int64).max


def previous_occurrences(values: np.ndarray) -> np.ndarray:
    """``prev[i]`` = index of the previous occurrence of ``values[i]``
    (``-1`` if ``i`` is the first occurrence).  Vectorized via one stable
    argsort: equal values stay in index order, so each sorted element's
    predecessor-with-same-value is its previous occurrence.
    """
    values = np.ascontiguousarray(values)
    n = values.shape[0]
    order = np.argsort(values, kind="stable")
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same = values[order[1:]] == values[order[:-1]]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def prev_greater_counts(
    values: np.ndarray, counted: np.ndarray | None = None
) -> np.ndarray:
    """``out[i] = #{j < i : counted[j] and values[j] > values[i]}``.

    Bottom-up mergesort with a *merge-path* trick: blocks are kept
    sorted; to merge sibling blocks (L, R), every R element finds its
    insertion point in L with one flat :func:`np.searchsorted` over keys
    packed as ``pair_id * span + (value - vmin)`` (pair blocks occupy
    disjoint key ranges, so one global call ranks all pairs at once).
    Elements left of the insertion point are the earlier-indexed
    greater-or-equal candidates; a per-row prefix sum of the ``counted``
    flags converts insertion points into counts of strictly-greater
    counted elements.  The same ranks place both blocks for the next
    level.  ``O(n log n)`` work, ``O(log n)`` numpy dispatches.

    ``counted=None`` counts every element.  Precondition: ``n/2 *
    (value range + 2)`` must fit in int64 -- always true for the trace
    indices used here.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = values.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    size = 1
    while size < n:
        size <<= 1
    sentinel = int(values.min()) - 1  # pads sort before every real value
    vals = np.full(size, sentinel, dtype=np.int64)
    vals[:n] = values
    idx = np.arange(size, dtype=np.int64)
    cnt = np.zeros(size, dtype=np.int64)
    flags = np.zeros(size, dtype=np.int64)
    if counted is None:
        flags[:n] = 1
    else:
        flags[:n] = np.asarray(counted, dtype=bool)
    vmin = sentinel
    span = int(values.max()) - vmin + 2

    b = 1
    while b < size:
        m = size // (2 * b)
        V3 = vals.reshape(m, 2, b)
        I3 = idx.reshape(m, 2, b)
        F3 = flags.reshape(m, 2, b)
        C3 = cnt.reshape(m, 2, b)
        VL, VR = V3[:, 0, :], V3[:, 1, :]
        pair = np.arange(m, dtype=np.int64)[:, None]
        keyL = (pair * span + (VL - vmin)).ravel()
        keyR = (pair * span + (VR - vmin)).ravel()

        # For each R element: how many L elements are <= it (le2), and of
        # those, how many carry the counted flag (prefix sum of flags).
        le2 = np.searchsorted(keyL, keyR, side="right").reshape(m, b) - pair * b
        pcumL = np.zeros((m, b + 1), dtype=np.int64)
        np.cumsum(F3[:, 0, :], axis=1, out=pcumL[:, 1:])
        counted_le = np.take_along_axis(pcumL, le2, axis=1)
        C3[:, 1, :] += pcumL[:, b][:, None] - counted_le

        # Merge positions: R goes to rank_in_R + (#L <= r); L goes to
        # rank_in_L + (#R strictly < l).  Ties break toward L, keeping
        # the sort stable in original-index order.
        lt2 = np.searchsorted(keyR, keyL, side="left").reshape(m, b) - pair * b
        rank = np.arange(b, dtype=np.int64)[None, :]
        posR = rank + le2
        posL = rank + lt2
        rows = np.arange(m)[:, None]
        nv = np.empty_like(vals).reshape(m, 2 * b)
        ni = np.empty_like(idx).reshape(m, 2 * b)
        nf = np.empty_like(flags).reshape(m, 2 * b)
        nc = np.empty_like(cnt).reshape(m, 2 * b)
        nv[rows, posL] = VL
        nv[rows, posR] = VR
        ni[rows, posL] = I3[:, 0, :]
        ni[rows, posR] = I3[:, 1, :]
        nf[rows, posL] = F3[:, 0, :]
        nf[rows, posR] = F3[:, 1, :]
        nc[rows, posL] = C3[:, 0, :]
        nc[rows, posR] = C3[:, 1, :]
        vals, idx, flags, cnt = nv.ravel(), ni.ravel(), nf.ravel(), nc.ravel()
        b *= 2

    out = np.zeros(n, dtype=np.int64)
    keep = idx < n
    out[idx[keep]] = cnt[keep]
    return out


def stack_distances(trace: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """LRU stack distance of every access, in one pass.

    Returns ``(dist, first)`` where ``first[i]`` marks first touches
    (whose ``dist`` is :data:`FIRST_TOUCH`) and otherwise ``dist[i]`` is
    the 1-based recency-stack depth of the address at access ``i`` --
    the access hits an LRU cache of capacity ``C`` iff ``dist[i] <= C``.
    """
    trace = np.ascontiguousarray(trace)
    n = trace.shape[0]
    prev = previous_occurrences(trace)
    cnt = prev_greater_counts(prev)
    first = prev == -1
    dist = np.where(
        first, FIRST_TOUCH, np.arange(n, dtype=np.int64) - prev - cnt
    )
    return dist, first


@dataclass(frozen=True)
class MissCounts:
    """Exact counters for one capacity, mirroring the scalar simulator."""

    accesses: int
    misses: int
    evictions: int
    writebacks: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MissRatioCurve:
    """All-capacities LRU miss/eviction counts from one trace pass.

    Mirrors ``TwoLevelMemorySimulator.run`` semantics exactly: a warmup
    prefix is excluded from the access/miss counts, compulsory first
    touches never count as misses, and writebacks are the evictions that
    happen inside the measurement window.  For every capacity ``C``:

    - ``misses(C)``     = non-first accesses in the window with
      ``dist > C`` (sorted-histogram lookup, O(log n));
    - ``evictions(C)``  = ``max(0, footprint - C)`` first-touch
      evictions plus every non-first miss over the whole trace (a
      non-first miss always evicts: its address had ``> C`` distinct
      pages touched since last use, so the cache was full);
    - ``writebacks(C)`` = ``evictions(C)`` minus the evictions that had
      already happened when the warmup window closed.

    Capacity arguments may be scalars or numpy arrays (vectorized
    queries for sweeps and monotonicity tests).
    """

    def __init__(
        self,
        length: int,
        warmup: int,
        footprint: int,
        warmup_footprint: int,
        pre_dists: np.ndarray,
        window_dists: np.ndarray,
    ):
        self.length = int(length)
        self.warmup = int(warmup)
        #: Distinct addresses in the whole trace / in the warmup prefix.
        self.footprint = int(footprint)
        self.warmup_footprint = int(warmup_footprint)
        #: Sorted stack distances of non-first accesses, split at warmup.
        self._pre_dists = pre_dists
        self._window_dists = window_dists

    @property
    def accesses(self) -> int:
        """Measured accesses (everything after warmup)."""
        return self.length - self.warmup

    def _greater(self, sorted_dists: np.ndarray, capacity):
        cap = np.asarray(capacity, dtype=np.int64)
        out = sorted_dists.shape[0] - np.searchsorted(
            sorted_dists, cap, side="right"
        )
        return int(out) if cap.ndim == 0 else out

    def misses(self, capacity):
        """Capacity misses inside the measurement window."""
        return self._greater(self._window_dists, capacity)

    def hits(self, capacity):
        """Hits inside the measurement window (non-first, ``dist <= C``)."""
        window_non_first = self._window_dists.shape[0]
        return window_non_first - self.misses(capacity)

    def evictions(self, capacity, *, upto_warmup: bool = False):
        """LRU evictions over the whole trace (or the warmup prefix)."""
        cap = np.asarray(capacity, dtype=np.int64)
        footprint = self.warmup_footprint if upto_warmup else self.footprint
        first_touch_evictions = np.maximum(0, footprint - cap)
        non_first = self._greater(self._pre_dists, capacity)
        if not upto_warmup:
            non_first = non_first + self._greater(self._window_dists, capacity)
        out = first_touch_evictions + non_first
        return int(out) if cap.ndim == 0 else out

    def writebacks(self, capacity):
        """Evictions inside the measurement window (bandwidth cost)."""
        cap = np.asarray(capacity, dtype=np.int64)
        out = np.asarray(self.evictions(capacity)) - np.asarray(
            self.evictions(capacity, upto_warmup=True)
        )
        return int(out) if cap.ndim == 0 else out

    def miss_rate(self, capacity):
        m = self.misses(capacity)
        if not self.accesses:
            return np.zeros_like(np.asarray(m, dtype=float)) if np.ndim(m) else 0.0
        return np.asarray(m) / self.accesses if np.ndim(m) else m / self.accesses

    def counts(self, capacity: int) -> MissCounts:
        """All counters for one capacity, matching the scalar simulator."""
        return MissCounts(
            accesses=self.accesses,
            misses=self.misses(capacity),
            evictions=self.evictions(capacity),
            writebacks=self.writebacks(capacity),
        )


def miss_ratio_curve(trace: np.ndarray, warmup: int = 0) -> MissRatioCurve:
    """Build the exact :class:`MissRatioCurve` of a trace in one pass."""
    trace = np.ascontiguousarray(trace)
    n = trace.shape[0]
    if not 0 <= warmup <= n:
        raise ValueError("warmup must be within the trace")
    dist, first = stack_distances(trace)
    non_first = ~first
    pre = non_first[:warmup]
    return MissRatioCurve(
        length=n,
        warmup=warmup,
        footprint=int(first.sum()),
        warmup_footprint=int(first[:warmup].sum()),
        pre_dists=np.sort(dist[:warmup][pre]),
        window_dists=np.sort(dist[warmup:][non_first[warmup:]]),
    )


@dataclass(frozen=True)
class FlashCounts:
    """Flash-cache hit/wear counters, mirroring ``FlashCacheStats``."""

    lookups: int
    hits: int
    insertions: int
    evictions: int
    block_writes: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FlashHitCurve:
    """All-capacities flash-cache counters for a read stream.

    On a pure read stream every access refreshes LRU recency, so the
    flash cache is an exact LRU stack and one stack-distance pass
    answers every device capacity at once:

    - ``hits(C)``       = non-first accesses with ``dist <= C``;
    - ``insertions(C)`` = misses (every miss installs the object);
    - ``evictions(C)``  = ``max(0, insertions - C)`` (the cache only
      evicts once full, and it never shrinks);
    - ``block_writes(C)`` = insertions (each install is one flash write;
      no write-through traffic on a read stream).

    For mixed read/write streams use :func:`flash_replay`.
    """

    def __init__(self, lookups: int, sorted_dists: np.ndarray):
        self.lookups = int(lookups)
        self._dists = sorted_dists

    def hits(self, capacity):
        cap = np.asarray(capacity, dtype=np.int64)
        out = np.searchsorted(self._dists, cap, side="right")
        return int(out) if cap.ndim == 0 else out

    def counts(self, capacity: int) -> FlashCounts:
        hits = self.hits(capacity)
        insertions = self.lookups - hits
        return FlashCounts(
            lookups=self.lookups,
            hits=hits,
            insertions=insertions,
            evictions=max(0, insertions - int(capacity)),
            block_writes=insertions,
        )


def flash_hit_curve(object_ids: np.ndarray) -> FlashHitCurve:
    """Build the :class:`FlashHitCurve` of a read-only object stream."""
    object_ids = np.ascontiguousarray(object_ids)
    dist, first = stack_distances(object_ids)
    return FlashHitCurve(
        lookups=object_ids.shape[0], sorted_dists=np.sort(dist[~first])
    )


def _flash_verdicts(
    object_ids: np.ndarray, active: np.ndarray, capacity: int
) -> np.ndarray:
    """``hit[i]``: would access ``i`` find its object resident, given
    that exactly the ``active`` accesses refresh the LRU stack?

    Stack distance relative to a *subsequence*: the previous active
    access to the same object (segmented running max over a stable
    by-object sort), the count of active accesses in the window, and a
    masked :func:`prev_greater_counts` for the distinct correction.
    """
    n = object_ids.shape[0]
    order = np.argsort(object_ids, kind="stable")
    pos = np.arange(n, dtype=np.int64)
    pos_if_active = np.where(active, pos, np.int64(-1))[order]
    sorted_ids = object_ids[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_ids[1:] != sorted_ids[:-1]
    # Segmented exclusive cummax via group-offset packing: each object's
    # run occupies a disjoint key band, so one global running max gives
    # the latest *active* earlier access to the same object.
    group = np.cumsum(new_group) - 1
    base = group * np.int64(n + 2)
    run_max = np.maximum.accumulate(pos_if_active + base)
    exclusive = np.empty(n, dtype=np.int64)
    exclusive[0] = np.iinfo(np.int64).min // 2
    exclusive[1:] = run_max[:-1]
    prev_sorted = exclusive - base
    prev_sorted[prev_sorted < 0] = -1
    prev_active = np.empty(n, dtype=np.int64)
    prev_active[order] = prev_sorted

    cum_active = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(active, out=cum_active[1:])
    cnt = prev_greater_counts(prev_active, counted=active)
    window = cum_active[pos] - cum_active[np.minimum(prev_active + 1, n)]
    dist = window - cnt + 1
    return (prev_active >= 0) & (dist <= capacity)


def _flash_replay_scalar(
    object_ids: np.ndarray, is_write: np.ndarray, capacity: int
) -> FlashCounts:
    """Scalar replica of the ``FlashCache`` counters (oracle/fallback)."""
    from collections import OrderedDict

    objects: "OrderedDict[int, None]" = OrderedDict()
    lookups = hits = insertions = evictions = block_writes = 0
    for oid, write in zip(object_ids.tolist(), is_write.tolist()):
        if write:
            if oid in objects:  # write-through update of a cached object
                objects.move_to_end(oid)
                block_writes += 1
            continue
        lookups += 1
        if oid in objects:
            objects.move_to_end(oid)
            hits += 1
            continue
        if len(objects) >= capacity:
            objects.popitem(last=False)
            evictions += 1
        objects[oid] = None
        insertions += 1
        block_writes += 1
    return FlashCounts(
        lookups=lookups,
        hits=hits,
        insertions=insertions,
        evictions=evictions,
        block_writes=block_writes,
    )


def flash_replay(
    object_ids: np.ndarray,
    is_write: np.ndarray,
    capacity: int,
    max_iterations: int = 12,
) -> FlashCounts:
    """Exact flash-cache counters for a mixed read/write stream.

    Replays the cache's access discipline (reads: lookup, install on
    miss; writes: write-through refresh only when resident) without the
    scalar loop.  The twist is that a write refreshes recency *only on a
    hit*, so whether an access moves the LRU stack depends on earlier
    hit verdicts.  Iterate: start assuming every access refreshes,
    compute verdicts under that assumption, set the refreshing set to
    ``reads | hits``, repeat until it stops changing.  Any fixed point
    equals the sequential truth (consider the earliest access where a
    consistent assignment could differ from the sequential replay: all
    earlier verdicts agree, so the stack below it agrees, so its verdict
    agrees too).  The map is not monotone, so convergence is capped at
    ``max_iterations``; the rare non-converged case falls back to the
    scalar replica and stays exact.
    """
    object_ids = np.ascontiguousarray(object_ids, dtype=np.int64)
    is_write = np.ascontiguousarray(is_write, dtype=bool)
    if object_ids.shape != is_write.shape:
        raise ValueError("object_ids and is_write must have the same shape")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if object_ids.shape[0] == 0:
        return FlashCounts(0, 0, 0, 0, 0)

    reads = ~is_write
    active = np.ones(object_ids.shape[0], dtype=bool)
    for _ in range(max_iterations):
        hit = _flash_verdicts(object_ids, active, capacity)
        refreshed = reads | hit
        if np.array_equal(refreshed, active):
            lookups = int(reads.sum())
            read_hits = int((hit & reads).sum())
            write_hits = int((hit & is_write).sum())
            insertions = lookups - read_hits
            return FlashCounts(
                lookups=lookups,
                hits=read_hits,
                insertions=insertions,
                evictions=max(0, insertions - capacity),
                block_writes=insertions + write_hits,
            )
        active = refreshed
    return _flash_replay_scalar(object_ids, is_write, capacity)


# ---------------------------------------------------------------------------
# Queueing cohort kernels (sharded DES engine)
# ---------------------------------------------------------------------------
#
# One FCFS single-server queue, processed a *window* of arrivals at a
# time.  The Lindley/departure recursion is evaluated in (T, M) form:
#
#     T_k = T_{k-1} + S_k                (cumulative service)
#     M_k = max(M_{k-1}, A_k - T_{k-1})  (worst queue-start slack)
#     D_k = T_k + M_k                    (departure time)
#
# which is algebraically the textbook D_k = max(A_k, D_{k-1}) + S_k but,
# unlike it, maps onto ``np.add.accumulate``/``np.maximum.accumulate``
# with BITWISE-identical float results to the scalar left-fold (both
# accumulates are strict left folds, float max is exact, and the final
# ``T + M`` is the same single add either way).  The scalar oracle in
# :mod:`repro.perf.sharded` runs the same (T, M) updates event-at-a-time,
# so scalar-vs-vectorized equality is exact, not approximate.

#: Carry state of one server's queue between windows: (cumulative
#: service T, max slack M, admitted-departure times still in the future).
QueueCarry = Tuple[float, float, np.ndarray]


def fresh_queue_carry() -> QueueCarry:
    """Carry for a server that has never served a request."""
    return (0.0, -np.inf, np.empty(0, dtype=np.float64))


def cohort_departures(
    arrivals: np.ndarray,
    services: np.ndarray,
    carry: QueueCarry,
) -> Tuple[np.ndarray, QueueCarry]:
    """Departure times of one window of FCFS arrivals (no queue cap).

    ``arrivals`` must be nondecreasing; ``services`` holds the matching
    service demands (same variate array the scalar oracle consumes, see
    :func:`repro.perf.variates.exponential_fill`).  Returns the
    departure-time array and the carry for the next window.
    """
    carry_t, carry_m, prior = carry
    if len(arrivals) == 0:
        return np.empty(0, dtype=np.float64), carry
    # Seed the accumulate with the carry so the fold is ((T + S_0) + S_1)
    # ... exactly as the scalar oracle adds them -- adding the carry to a
    # pre-computed cumsum would associate differently and drift an ulp.
    seeded = np.empty(len(services) + 1, dtype=np.float64)
    seeded[0] = carry_t
    seeded[1:] = services
    running = np.add.accumulate(seeded)
    total = running[1:]
    prev_total = running[:-1]
    slack = np.maximum.accumulate(np.maximum(arrivals - prev_total, carry_m))
    departures = total + slack
    pending = departures[departures > arrivals[-1]]
    return departures, (float(total[-1]), float(slack[-1]), pending)


def cohort_departures_capped(
    arrivals: np.ndarray,
    services: np.ndarray,
    capacity: int,
    carry: QueueCarry,
    max_drops: int = 128,
):
    """Departures for a window of arrivals at an M/M/1/K-style server.

    ``capacity`` bounds the number in system (queued + in service) seen
    by an arriving request; an arrival finding ``capacity`` in system is
    dropped (no service consumed), matching the bounded-queue discipline
    of :class:`repro.simulator.openloop.OpenLoopSimulator`.  A departure
    at exactly the arrival instant counts as already gone (``side=
    'right'``) -- the convention the scalar oracle shares.

    The admitted set is found by fixed point: compute departures as if
    all were admitted, drop the *earliest* arrival that finds the system
    full, recompute.  Dynamics before the first violation are unchanged
    by later drops, so each iteration's earliest violator is exact; the
    loop therefore reproduces the sequential drop decision bit-for-bit.
    Returns ``None`` after ``max_drops`` iterations (scalar fallback
    signal -- a window that lossy is a transient and should not be on
    the vectorized path anyway).

    The carry's pending-departure array answers "how many old jobs are
    still in system at A_k"; it is pruned at each window boundary, so
    it stays small.  Returns ``(departures (NaN where dropped),
    admitted mask, next_carry)``.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    carry_t, carry_m, prior = carry
    n = len(arrivals)
    if n == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=bool), carry
    admitted = np.ones(n, dtype=bool)
    prior_in_system = len(prior) - np.searchsorted(prior, arrivals, side="right")
    drops = 0
    while True:
        arr = arrivals[admitted]
        dep, (t_end, m_end, _) = cohort_departures(
            arr, services[admitted], (carry_t, carry_m, prior)
        )
        gone_window = np.searchsorted(dep, arr, side="right")
        in_system = prior_in_system[admitted] + np.arange(len(arr)) - gone_window
        violations = np.nonzero(in_system >= capacity)[0]
        if len(violations) == 0:
            departures = np.full(n, np.nan)
            departures[admitted] = dep
            if len(arr) == 0:
                return departures, admitted, carry
            pending = np.concatenate([prior, dep])
            pending = np.sort(pending[pending > arrivals[-1]])
            return departures, admitted, (t_end, m_end, pending)
        drops += 1
        if drops > max_drops:
            return None
        original = np.nonzero(admitted)[0][violations[0]]
        admitted[original] = False


__all__ = [
    "FIRST_TOUCH",
    "FlashCounts",
    "FlashHitCurve",
    "MissCounts",
    "MissRatioCurve",
    "QueueCarry",
    "cohort_departures",
    "cohort_departures_capped",
    "flash_hit_curve",
    "flash_replay",
    "fresh_queue_carry",
    "miss_ratio_curve",
    "prev_greater_counts",
    "previous_occurrences",
    "stack_distances",
]
