"""Content-hashed experiment result cache.

``repro-experiments --all`` recomputes every table and figure from
scratch on each invocation even when nothing changed.  This module keys
each :class:`~repro.experiments.reporting.ExperimentResult` on

- the experiment name,
- the parameters it ran with (``method`` and any overrides), and
- a *code fingerprint*: one SHA-256 over the contents of every Python
  source file in the ``repro`` package,

so a warm rerun returns pickled results instantly while any source edit
-- anywhere in the package, since experiments reach across most of it --
invalidates the whole cache at once.  Conservative by design: a stale
table is worse than a recomputed one.

Invalidation, in increasing order of force: edit any file under
``src/repro`` (automatic), run with ``--no-cache`` (bypass), or delete
the cache directory (default ``.repro-cache/``, override with
``--cache-dir`` or ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` file of the installed ``repro`` package.

    Computed once per process; file contents (not mtimes) feed the hash,
    so rebuilding or re-checking-out identical sources keeps the cache
    warm.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def default_cache_dir() -> Path:
    """The cache directory honouring :data:`CACHE_DIR_ENV`."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class ResultCache:
    """Pickle-backed store of experiment results keyed by content hash."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def key(self, name: str, params: Optional[Dict[str, Any]] = None) -> str:
        """Cache key for ``name`` run with ``params`` under current code."""
        digest = hashlib.sha256()
        digest.update(code_fingerprint().encode())
        digest.update(name.encode())
        for param in sorted(params or {}):
            digest.update(f"\0{param}={(params or {})[param]!r}".encode())
        return f"{name}-{digest.hexdigest()[:32]}"

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pickle"

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or None (corrupt entries ignored)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # A truncated or version-skewed pickle: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, crash-safely and best-effort.

        The entry is pickled to a per-process temp file, fsync'd, and
        atomically renamed into place: a crash (or a concurrent writer)
        at any point leaves either the old entry or the new one, never a
        truncated pickle a later :meth:`get` would have to repair.  A
        failed write (full or read-only disk) cleans up its temp file
        and is swallowed -- the cache is an accelerator, not a
        dependency, so the caller's results must never be lost to a
        cache-write error.
        """
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Also sweeps orphaned ``*.tmp<pid>`` files left by writers that
        died between creating the temp file and renaming it.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pickle"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp*"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
