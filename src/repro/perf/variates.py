"""Fast random-variate sampling for the DES hot paths.

``random.Random.expovariate`` is a pure-Python method, so every arrival,
think-time, and service draw pays a Python call plus attribute lookups on
top of the one C-level ``random()`` call it actually needs.  Two
replacements, both bit-identical to ``expovariate`` for the same
underlying uniform stream:

- :func:`exponential_sampler` -- a closure over a *shared* generator's
  bound ``random()``.  Consumes exactly one uniform per draw at the call
  site, so it can replace ``rng.expovariate`` in code that interleaves
  draws with other consumers of the same generator without perturbing
  the stream (results stay identical to the naive code).
- :class:`ExponentialBlock` -- block-drawn unit-exponential variates
  from a *dedicated* generator.  Refilling amortizes the Python-level
  work over ``block_size`` draws; scaling by the current rate at the
  call site keeps time-varying arrival processes (surge schedules)
  exact, because ``-log(1 - u) / rate`` equals ``expovariate(rate)``
  draw for draw.  Use it only for a stream with a single consumer (an
  open-loop arrival process), where consumption order trivially matches
  draw order.
"""

from __future__ import annotations

import random
from math import log
from typing import Callable


def exponential_sampler(rng: random.Random) -> Callable[[float], float]:
    """A drop-in, stream-identical fast path for ``rng.expovariate``.

    Returns ``sample(lambd)`` producing the same values, in the same
    order, from the same generator state as ``rng.expovariate(lambd)``
    -- it inlines CPython's implementation (``-log(1 - random())/lambd``)
    into a closure so each draw is one C ``random()`` call plus inline
    arithmetic rather than a method dispatch.
    """
    _random = rng.random

    def sample(lambd: float, _log=log) -> float:
        return -_log(1.0 - _random()) / lambd

    return sample


class ExponentialBlock:
    """Block-drawn unit-exponential variates from a dedicated stream.

    ``next_scaled(rate)`` returns the next variate divided by ``rate``,
    which equals what ``rng.expovariate(rate)`` would have returned at
    the same point of the stream -- block drawing only changes *when*
    the uniforms are consumed, not their order, so a single-consumer
    arrival process keeps its exact per-seed trajectory.
    """

    __slots__ = ("_rng", "_block", "_index", "_block_size")

    def __init__(self, rng: random.Random, block_size: int = 512):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self._rng = rng
        self._block_size = block_size
        self._block: list = []
        self._index = 0

    def _refill(self) -> None:
        _random = self._rng.random
        self._block = [-log(1.0 - _random()) for _ in range(self._block_size)]
        self._index = 0

    def next_scaled(self, rate: float) -> float:
        """Next inter-arrival delay for instantaneous ``rate`` (per ms)."""
        index = self._index
        block = self._block
        if index >= len(block):
            self._refill()
            index = 0
            block = self._block
        self._index = index + 1
        return block[index] / rate
