"""Fast random-variate sampling for the DES hot paths.

``random.Random.expovariate`` is a pure-Python method, so every arrival,
think-time, and service draw pays a Python call plus attribute lookups on
top of the one C-level ``random()`` call it actually needs.  Two
replacements, both bit-identical to ``expovariate`` for the same
underlying uniform stream:

- :func:`exponential_sampler` -- a closure over a *shared* generator's
  bound ``random()``.  Consumes exactly one uniform per draw at the call
  site, so it can replace ``rng.expovariate`` in code that interleaves
  draws with other consumers of the same generator without perturbing
  the stream (results stay identical to the naive code).
- :class:`ExponentialBlock` -- block-drawn unit-exponential variates
  from a *dedicated* generator.  Refilling amortizes the Python-level
  work over ``block_size`` draws; scaling by the current rate at the
  call site keeps time-varying arrival processes (surge schedules)
  exact, because ``-log(1 - u) / rate`` equals ``expovariate(rate)``
  draw for draw.  Use it only for a stream with a single consumer (an
  open-loop arrival process), where consumption order trivially matches
  draw order.
- :func:`exponential_fill` -- a whole window of variates in one call,
  for the sharded/vectorized engines (:mod:`repro.perf.sharded`): both
  the cohort kernels and the scalar oracle consume the *same* array, so
  scalar-vs-vectorized bit-equality does not depend on ``numpy.log``
  matching ``math.log`` (it does not, in the last ulp).
- :func:`exponential_block` -- the bulk-generation variant of
  :func:`exponential_fill`: same uniform stream (one ``random()`` per
  variate, in draw order), but the log mapping runs vectorized in
  numpy.  Values may differ from the sequential sampler in the last
  ulps, so it is only for streams whose *every* consumer reads the
  returned array (the sharded engines' shared-variate contract).
"""

from __future__ import annotations

import random
from math import log
from typing import Callable, List

import numpy as np


def exponential_sampler(rng: random.Random) -> Callable[[float], float]:
    """A drop-in, stream-identical fast path for ``rng.expovariate``.

    Returns ``sample(lambd)`` producing the same values, in the same
    order, from the same generator state as ``rng.expovariate(lambd)``
    -- it inlines CPython's implementation (``-log(1 - random())/lambd``)
    into a closure so each draw is one C ``random()`` call plus inline
    arithmetic rather than a method dispatch.
    """
    _random = rng.random

    def sample(lambd: float, _log=log) -> float:
        return -_log(1.0 - _random()) / lambd

    return sample


def exponential_fill(rng: random.Random, count: int, lambd: float) -> List[float]:
    """``count`` exponential variates, bit-identical to ``count``
    sequential :func:`exponential_sampler` draws from the same stream.

    The whole point is that vectorized cohort kernels and the scalar
    event-at-a-time oracle can share ONE variate array: generation stays
    on the Python side (``math.log``, which is NOT bit-identical to
    ``numpy.log`` in the last ulp), so whichever engine consumes the
    array sees exactly the values ``rng.expovariate(lambd)`` would have
    produced, in draw order.  Wrap the result in ``numpy.asarray`` for
    kernel use -- float64 round-trips exactly.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    _random = rng.random
    _log = log
    return [-_log(1.0 - _random()) / lambd for _ in range(count)]


def exponential_block(rng: random.Random, count: int, lambd: float) -> np.ndarray:
    """``count`` exponential variates with the log mapping vectorized.

    Consumes exactly the same uniforms, in the same order, as
    :func:`exponential_fill` -- but maps them through ``numpy.log1p``
    in one shot instead of ``math.log`` per draw, which roughly halves
    generation cost on the sharded hot path.  The trade: values can
    differ from the sequential sampler in the last ulps, so this is
    safe only where the returned array itself is the reference stream
    (every engine mode reads this array, nothing re-derives the draws).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    _random = rng.random
    uniforms = np.asarray([_random() for _ in range(count)], dtype=np.float64)
    return -np.log1p(-uniforms) / lambd


class ExponentialBlock:
    """Block-drawn unit-exponential variates from a dedicated stream.

    ``next_scaled(rate)`` returns the next variate divided by ``rate``,
    which equals what ``rng.expovariate(rate)`` would have returned at
    the same point of the stream -- block drawing only changes *when*
    the uniforms are consumed, not their order, so a single-consumer
    arrival process keeps its exact per-seed trajectory.
    """

    __slots__ = ("_rng", "_block", "_index", "_block_size")

    def __init__(self, rng: random.Random, block_size: int = 512):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self._rng = rng
        self._block_size = block_size
        self._block: list = []
        self._index = 0

    def _refill(self) -> None:
        _random = self._rng.random
        self._block = [-log(1.0 - _random()) for _ in range(self._block_size)]
        self._index = 0

    def next_scaled(self, rate: float) -> float:
        """Next inter-arrival delay for instantaneous ``rate`` (per ms)."""
        index = self._index
        block = self._block
        if index >= len(block):
            self._refill()
            index = 0
            block = self._block
        self._index = index + 1
        return block[index] / rate
