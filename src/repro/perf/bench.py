"""Tracked benchmark harness (``repro-bench`` -> ``BENCH_results.json``).

Times the layers the perf work targets and writes one JSON document so
the repository's performance trajectory is tracked across PRs:

- **engine** -- events/sec through :class:`repro.simulator.engine.Simulation`
  on three microbenchmarks: *ping* (pure schedule/dispatch), *timer churn*
  (the balancer's pattern: every request schedules a completion plus a
  timeout that almost never fires -- the headline metric, since dead
  timers are what the lazy-cancellation engine reclaims), and *batch*
  (bulk initial loading via ``schedule_batch``).  Each is also run
  against ``_LegacySimulation``, an in-harness replica of the pre-PR
  event loop, so the speedup column stays measurable long after the old
  engine is gone.
- **alloc** -- bytes per hot request record (slotted classes vs the dict
  records they replaced), via ``tracemalloc``.
- **cluster** -- wall-clock of the open-loop surge path (the overload
  experiment's inner loop) at reduced scale.
- **kernels** -- the single-pass miss-ratio-curve kernels
  (:mod:`repro.perf.kernels`) against their scalar oracles: *mrc_sweep*
  (one stack-distance pass answering a 16-point miss-ratio curve vs 16
  scalar LRU replays) and *flash_replay* (one flash hit curve answering
  a 12-device flash-sizing curve vs 12 ``FlashCache`` replays).  Both
  assert bit-identical counters before timing is reported.
- **sharded_engine** -- the sharded/vectorized rack engine
  (:mod:`repro.perf.sharded`) against its in-run scalar oracle:
  events/sec through the cohort kernels, speedup over event-at-a-time,
  a bitwise digest match, and the hybrid fast path's p50/p99 error.
- **e2e** (``--e2e``) -- cold vs warm-cache wall-clock of the full
  experiment sweep through :func:`repro.perf.parallel.run_experiments`.

``--check BASELINE`` compares the headline engine metric -- and, when
the baseline carries them, the kernel and sharded-engine speedups, the
``schedule_batch`` parity floor, and the sharded correctness invariants
(digest match, hybrid tolerance) -- against a committed baseline and
fails on >30% regression.  Every gate uses a *speedup over an in-run
scalar/legacy reference* -- a machine-independent ratio -- rather than
absolute rates, so CI hosts of different speeds share one baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import platform as platform_mod
import sys
import time
import tracemalloc
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.simulator.engine import Simulation

#: Fail ``--check`` when the headline speedup drops below
#: ``baseline * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.30

#: Fail ``--check`` when a tracer with ``sample_rate=0.0`` slows the
#: cluster hot path by more than this ratio over no tracer at all (the
#: ``repro.obs`` zero-sampling budget: one attribute load and one
#: comparison per request).
TRACE_OVERHEAD_LIMIT = 1.05

#: Fail ``--check`` when running the peer-comparison fail-slow detector
#: on a healthy fleet costs more than this ratio of the same run without
#: detection (the ``repro.faults.failslow`` budget: histogram observes
#: plus one windowed evaluation per ``eval_interval_ms``).
FAILSLOW_OVERHEAD_LIMIT = 1.05

#: Fail ``--check`` when carrying a healthy redundant blade group costs
#: more than this ratio of the same run without redundancy (the
#: ``repro.faults.recovery`` budget: one ``recovery.active`` flag check
#: per remote-memory request plus one latency EWMA update per
#: completion; placement/rebuild bookkeeping only runs during faults).
REBUILD_OVERHEAD_LIMIT = 1.05

#: Fail ``--check`` when running a scenario-compiled cluster run costs
#: more than this ratio of the identical directly-constructed run (the
#: ``repro.scenario`` budget: spec validation, plan expansion, and
#: simulator construction are one-time per run and must stay in the
#: noise next to the run itself).
SCENARIO_COMPILE_OVERHEAD_LIMIT = 1.05

#: Fail ``--check`` when ``schedule_batch`` falls below parity with the
#: per-entry legacy loop (in-run ratio, machine-independent).  Guards
#: the mixed-load staging heuristic: bulk loads must never be slower
#: than not batching at all.  Slightly under 1.0 to absorb timer noise
#: at --quick iteration counts.
ENGINE_BATCH_PARITY_FLOOR = 0.9

#: Fail ``--check`` when the vectorized cohort engine drops below this
#: speedup over its in-run scalar oracle (the sharded_engine section's
#: acceptance floor; the committed full-scale baseline runs well above
#: it).
SHARDED_SPEEDUP_FLOOR = 3.0

#: The scalar engine's committed quick-mode ``cluster_surge`` rate
#: (simulated-ms per wall-second, single cold run on the baseline host)
#: from before the cohort engine landed -- the denominator of the
#: cluster acceptance target.
CLUSTER_SURGE_BASELINE = 72_888.7

#: The quick-mode ``cluster_surge`` acceptance floor: 5x the pre-cohort
#: scalar baseline.  The absolute rate is host-dependent (shared CI
#: runners drift +/-15%), so the check accepts a run that clears this
#: floor outright OR demonstrates the same 5x criterion machine-
#: independently via the in-run scalar oracle (the floor is, by
#: construction, 5 x the scalar engine's rate on the baseline host).
CLUSTER_SURGE_FLOOR = 5 * CLUSTER_SURGE_BASELINE
CLUSTER_SURGE_SPEEDUP = 5.0

#: Fail ``--check`` when the cohort serving-tier engine drops below
#: this speedup over its in-run scalar oracle (machine-independent;
#: the committed baseline runs ~5.4x).  This is the hard regression
#: backstop below the 5x acceptance criterion above.
CLUSTER_SPEEDUP_FLOOR = 4.0

#: Fail ``--check`` when the per-experiment suite wall clock exceeds
#: the baseline's by more than this fraction.  Wall time across hosts
#: is noisy -- CI runners are routinely 2x slower than the machine the
#: baseline was committed from, and a loaded host doubles it again --
#: so the tolerance is deliberately loose: the gate exists to catch an
#: experiment becoming grossly (3x) slower, not to police machine
#: variance.
SUITE_WALL_TOLERANCE = 2.0

#: The headline metric's path into the results document.
HEADLINE = ("engine_churn", "events_per_sec")

DEFAULT_OUTPUT = "BENCH_results.json"


class _LegacySimulation:
    """Replica of the pre-PR event loop (the speedup reference).

    Kept verbatim from the seed's ``simulator/engine.py``: tuple heap
    entries, attribute lookups in the loop, no cancellation -- so dead
    timers ride the heap until they fire.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        if delay_ms < 0:
            raise ValueError(f"cannot schedule in the past (delay {delay_ms})")
        self._seq += 1
        heappush(self._heap, (self._now + delay_ms, self._seq, callback))

    def schedule_timer(self, delay_ms: float, callback: Callable[[], None]) -> int:
        # The legacy engine had no timers; scheduling is the closest
        # equivalent and the returned handle is a no-op to cancel.
        self.schedule(delay_ms, callback)
        return 0

    def cancel(self, timer: int) -> None:
        """No cancellation support: the dead entry stays queued."""

    def stop(self) -> None:
        self._stopped = True

    def run(self, until_ms: Optional[float] = None) -> None:
        self._stopped = False
        while self._heap and not self._stopped:
            time_ms, _, callback = self._heap[0]
            if until_ms is not None and time_ms > until_ms:
                self._now = until_ms
                return
            heappop(self._heap)
            self._now = time_ms
            callback()


def _bench_ping(sim_factory, events: int) -> float:
    """Events/sec for a self-rescheduling chain (pure dispatch cost)."""
    sim = sim_factory()
    remaining = [events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return events / elapsed


def _bench_timer_churn(sim_factory, requests: int) -> float:
    """Events/sec for the balancer's request pattern (headline).

    Each request: one arrival, one completion at +1 ms, one timeout
    timer at +1000 ms that is cancelled on completion.  On the legacy
    engine the dead timeouts accumulate -- tens of thousands of entries
    dragged through every push/pop -- which is precisely the overhead
    lazy cancellation removes.  Throughput counts the three *logical*
    events per request, so both engines are scored on the same work.
    """
    sim = sim_factory()
    state = [0]

    def arrive() -> None:
        state[0] += 1
        timer = [0]

        def timeout() -> None:  # pragma: no cover - (almost) never fires
            pass

        def complete() -> None:
            sim.cancel(timer[0])

        timer[0] = sim.schedule_timer(1000.0, timeout)
        sim.schedule(1.0, complete)
        if state[0] < requests:
            sim.schedule(0.1, arrive)

    sim.schedule(0.0, arrive)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return (3 * requests) / elapsed


def _bench_batch(sim_factory, events: int) -> float:
    """Events/sec for bulk-loading ``events`` entries into an empty heap.

    Only the scheduling phase is timed: the drain that follows is the
    same work for either loading strategy (the resulting heaps hold the
    same entries), so timing it too just buries the load-path signal in
    drain noise — at --quick scales the gated parity ratio became a
    coin flip.  Delays are scattered (a Weyl sequence), matching the
    realistic case -- an initial client population with random think
    times -- where per-entry ``heappush`` pays its full log cost and
    the single ``heapify`` of ``schedule_batch`` is linear.
    """
    sim = sim_factory()
    sink = [0]

    def consume() -> None:
        sink[0] += 1

    pairs = [
        (float((i * 2654435761) % 1_000_000) / 1000.0, consume)
        for i in range(events)
    ]
    start = time.perf_counter()
    if hasattr(sim, "schedule_batch"):
        sim.schedule_batch(pairs)
    else:
        for delay, callback in pairs:
            sim.schedule(delay, callback)
    elapsed = time.perf_counter() - start
    sim.run()
    assert sink[0] == events
    return events / elapsed


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    return max(fn() for _ in range(max(1, repeats)))


def _engine_section(quick: bool) -> Dict[str, Dict[str, float]]:
    # Best-of-3 even in quick mode: a single ~30ms timing makes the
    # gated speedup ratios noise-dominated, and the extra repeats cost
    # well under a second at quick-mode scales.
    repeats = 3
    ping_n = 20_000 if quick else 200_000
    churn_n = 8_000 if quick else 60_000
    batch_n = 20_000 if quick else 200_000
    section = {}
    for name, bench, scale in (
        ("engine_ping", _bench_ping, ping_n),
        ("engine_churn", _bench_timer_churn, churn_n),
        ("engine_batch", _bench_batch, batch_n),
    ):
        new_rate = _best_of(lambda: bench(Simulation, scale), repeats)
        old_rate = _best_of(lambda: bench(_LegacySimulation, scale), repeats)
        section[name] = {
            "events_per_sec": round(new_rate, 1),
            "legacy_events_per_sec": round(old_rate, 1),
            "speedup_vs_legacy": round(new_rate / old_rate, 3),
        }
    return section


def _alloc_section() -> Dict[str, Dict[str, float]]:
    """Bytes per request record: slotted classes vs the dicts they replaced."""
    from repro.cluster.balancer import _Attempt, _RequestState

    count = 10_000

    def measure(make: Callable[[int], object]) -> float:
        tracemalloc.start()
        keep = [make(i) for i in range(count)]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del keep
        return peak / count

    slotted_rs = measure(lambda i: _RequestState(None, float(i)))
    dict_rs = measure(
        lambda i: {
            "demand": None, "start": float(i), "attempts": 0,
            "finished": False, "hedged": False,
        }
    )
    slotted_attempt = measure(lambda i: _Attempt(None, i, False))
    dict_attempt = measure(
        lambda i: {
            "server": None, "epoch": i, "void": False, "done": False,
            "probe": False,
        }
    )
    return {
        "alloc_request_state": {
            "slotted_bytes_per_obj": round(slotted_rs, 1),
            "dict_bytes_per_obj": round(dict_rs, 1),
            "savings_ratio": round(dict_rs / slotted_rs, 3),
        },
        "alloc_attempt": {
            "slotted_bytes_per_obj": round(slotted_attempt, 1),
            "dict_bytes_per_obj": round(dict_attempt, 1),
            "savings_ratio": round(dict_attempt / slotted_attempt, 3),
        },
    }


def _cluster_config(quick: bool) -> dict:
    """The canonical ``cluster_surge`` configuration (shared with the
    ``--profile`` entry point so the profile matches the gated bench)."""
    from repro.cluster.balancer import RetryPolicy
    from repro.cluster.overload import OverloadPolicy, SurgeSchedule

    measure_ms = 4000.0 if quick else 12_000.0
    return dict(
        servers=3,
        clients_per_server=1,
        seed=11,
        retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
        overload=OverloadPolicy(),
        arrivals=SurgeSchedule(
            base_rate_rps=120.0,
            surge_multiplier=4.0,
            surge_start_ms=1000.0 + measure_ms * 0.25,
            surge_end_ms=1000.0 + measure_ms * 0.5,
        ),
        warmup_ms=1000.0,
        measure_ms=measure_ms,
    )


def _cluster_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """Cohort vs scalar wall-clock of the open-loop surge path.

    Construction (platform catalog, workload sampler tables, simulator
    wiring) happens outside the timed region; each engine is timed
    best-of-3 over fresh simulators (a ClusterSimulator run is
    single-shot) after one untimed warm-up run, and the two engines'
    stream digests are compared in-run, so ``speedup_vs_scalar`` is a
    same-machine, same-moment ratio over bitwise-identical work.
    ``sim_ms_per_wall_s`` keeps the measured-window numerator the
    pre-cohort baseline used, so the committed 72,888.7 quick-mode
    figure remains directly comparable.
    """
    from repro.cluster.balancer import ClusterSimulator
    from repro.platforms.catalog import platform as platform_by_name
    from repro.workloads.websearch import make_websearch

    config = _cluster_config(quick)
    measure_ms = config["measure_ms"]
    platform = platform_by_name("srvr1")
    workload = make_websearch()

    def build(engine: str) -> ClusterSimulator:
        return ClusterSimulator(platform, workload, engine=engine, **config)

    def timed(engine: str):
        build(engine).run()  # warm-up run, untimed
        best = math.inf
        result = None
        for _ in range(3):
            simulator = build(engine)  # setup excluded from timed region
            start = time.perf_counter()
            result = simulator.run()
            best = min(best, time.perf_counter() - start)
        return best, result

    cohort_s, cohort_result = timed("cohort")
    scalar_s, scalar_result = timed("scalar")
    return {
        "cluster_surge": {
            "wall_s": round(cohort_s, 4),
            "simulated_ms": measure_ms,
            "sim_ms_per_wall_s": round(measure_ms / cohort_s, 1),
            "scalar_wall_s": round(scalar_s, 4),
            "speedup_vs_scalar": round(scalar_s / cohort_s, 3),
            "digest_match": float(
                cohort_result.stream_digest() == scalar_result.stream_digest()
            ),
            "offered_rps": round(cohort_result.offered_rps, 1),
            "goodput_rps": round(cohort_result.goodput_rps, 1),
        }
    }


def _suite_wall_section(jobs: int) -> Dict[str, Dict[str, float]]:
    """Wall-clock of the user-facing ``repro-experiments --all --jobs N``.

    Times the real CLI entry point end to end (argument parsing, cold
    result cache, experiment fan-out, report rendering) into a throwaway
    cache directory, so the row tracks what a user regenerating every
    table and figure actually waits for.
    """
    import contextlib
    import io
    import os
    import tempfile

    from repro.experiments import runner

    with tempfile.TemporaryDirectory(prefix="repro-bench-suite") as tmp:
        argv = [
            "--all",
            "--jobs", str(jobs),
            "--cache-dir", os.path.join(tmp, "cache"),
            "--output", os.path.join(tmp, "results.txt"),
        ]
        start = time.perf_counter()
        with contextlib.redirect_stdout(io.StringIO()):
            status = runner.main(argv)
        wall = time.perf_counter() - start
    if status != 0:
        raise RuntimeError(f"repro-experiments --all failed (exit {status})")
    count = len(runner._EXPERIMENTS)
    return {
        "suite_wall": {
            "experiments": count,
            "jobs": jobs,
            "wall_s": round(wall, 2),
            "wall_s_per_experiment": round(wall / count, 3),
        }
    }


def _trace_overhead_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """Cost of a zero-sampling tracer on the cluster hot path.

    Interleaves untraced runs with ``Tracer(sample_rate=0.0)`` runs and
    reports their CPU-time ratio.  The runs are asserted bit-identical
    first -- tracing must not consume RNG state or add events -- so the
    ratio measures pure overhead, not different work.

    The true cost is a couple of branches per request (~1%), far below
    the noise of a single short run on a busy host, so the estimator is
    deliberately noise-robust: ``process_time`` (immune to scheduler
    preemption), a warm-up run of each mode, and the smaller of the
    median paired ratio and the ratio of per-side minima.  Either
    estimate alone still reads well above the 5% gate when the guarded
    hot path actually regresses (the guards are per-callback, so a real
    slip multiplies across every stage of every request).
    """
    import statistics

    from repro.cluster.balancer import ClusterSimulator
    from repro.obs.tracer import Tracer
    from repro.platforms.catalog import platform as platform_by_name
    from repro.workloads.websearch import make_websearch

    measure = 1200 if quick else 1800
    reps = 7 if quick else 9
    platform = platform_by_name("srvr1")
    workload = make_websearch()

    def run_once(tracer):
        simulator = ClusterSimulator(
            platform,
            workload,
            servers=3,
            clients_per_server=4,
            seed=3,
            warmup_requests=100,
            measure_requests=measure,
            tracer=tracer,
        )
        start = time.process_time()
        result = simulator.run()
        return time.process_time() - start, result

    _, result_off = run_once(None)
    _, result_zero = run_once(Tracer(sample_rate=0.0))
    assert result_off == result_zero, (
        "a zero-sampling tracer changed the simulation results"
    )

    def one_round():
        off_times = []
        zero_times = []
        for _ in range(max(1, reps)):
            elapsed, _ = run_once(None)
            off_times.append(elapsed)
            elapsed, _ = run_once(Tracer(sample_rate=0.0))
            zero_times.append(elapsed)
        pair_ratio = statistics.median(
            zero / off for off, zero in zip(off_times, zero_times)
        )
        min_ratio = min(zero_times) / min(off_times)
        return min(off_times), min(zero_times), min(pair_ratio, min_ratio)

    # Confirm-retry: a noisy round can read a few percent high, so only
    # a ratio that stays high across rounds is reported high.  A real
    # regression reads high in every round; noise does not.
    best_off, best_zero, ratio = one_round()
    for _ in range(2):
        if ratio <= 1.0 + (TRACE_OVERHEAD_LIMIT - 1.0) * 0.6:
            break
        round_off, round_zero, round_ratio = one_round()
        best_off = min(best_off, round_off)
        best_zero = min(best_zero, round_zero)
        ratio = min(ratio, round_ratio)
    return {
        "trace_overhead": {
            "measure_requests": measure,
            "untraced_cpu_s": round(best_off, 4),
            "tracing_off_cpu_s": round(best_zero, 4),
            "overhead_ratio": round(ratio, 4),
        }
    }


def _failslow_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """Cost of the fail-slow detector on a healthy cluster hot path.

    Interleaves detection-off runs with detection-on runs of the *same
    healthy fleet* and reports their CPU-time ratio.  On a healthy fleet
    detection consumes no RNG state and ejects nobody, so the two runs
    are first asserted bit-identical (via ``stream_digest``, which
    excludes the detector's own bookkeeping) -- the ratio then measures
    pure detector overhead: per-attempt histogram observes plus one
    windowed peer-comparison evaluation per ``eval_interval_ms``.

    The detector's true overhead (~4-5%) sits close to its budget, so
    the estimator must reject ambient noise harder than the median-pair
    statistic the trace gate uses: the reported ratio is the *minimum*
    over many interleaved off/on pair ratios -- the pair least
    contaminated by scheduler jitter, CPU-frequency drift, or noisy
    neighbours.  On a quiet machine it converges to the true ratio from
    above; on a loud one it under-reports rather than flaking the gate.
    That one-sided bias is the right trade for an absolute budget whose
    job is catching cost *creep*: a genuinely fatter detector (e.g. a
    20x evaluation cadence) still reads well above the limit because
    both sides of every pair see the same machine.
    """
    from repro.cluster.balancer import ClusterSimulator
    from repro.faults.failslow import AdaptiveTimeoutPolicy, DetectionPolicy
    from repro.platforms.catalog import platform as platform_by_name
    from repro.workloads.websearch import make_websearch

    # Many moderate runs beat a few long ones for a min-of-pairs
    # statistic: each extra pair is another draw at an uncontaminated
    # interval, while each run is still long enough (~0.1s CPU) that
    # timer resolution is irrelevant.
    measure = 2400 if quick else 3600
    reps = 8 if quick else 10
    platform = platform_by_name("srvr1")
    workload = make_websearch()

    def run_once(detection):
        simulator = ClusterSimulator(
            platform,
            workload,
            servers=3,
            clients_per_server=4,
            seed=3,
            warmup_requests=100,
            measure_requests=measure,
            failslow_detection=detection,
        )
        start = time.process_time()
        result = simulator.run()
        return time.process_time() - start, result

    detection = DetectionPolicy(adaptive_timeout=AdaptiveTimeoutPolicy())
    _, result_off = run_once(None)
    _, result_on = run_once(detection)
    assert result_off.stream_digest() == result_on.stream_digest(), (
        "fail-slow detection changed a healthy fleet's request stream"
    )

    def one_round():
        round_off = round_on = round_ratio = float("inf")
        for _ in range(max(1, reps)):
            off, _ = run_once(None)
            on, _ = run_once(detection)
            round_off = min(round_off, off)
            round_on = min(round_on, on)
            round_ratio = min(round_ratio, on / off)
        return round_off, round_on, round_ratio

    best_off, best_on, ratio = one_round()
    for _ in range(2):
        if ratio <= 1.0 + (FAILSLOW_OVERHEAD_LIMIT - 1.0) * 0.6:
            break
        round_off, round_on, round_ratio = one_round()
        best_off = min(best_off, round_off)
        best_on = min(best_on, round_on)
        ratio = min(ratio, round_ratio)
    return {
        "failslow_detect": {
            "measure_requests": measure,
            "undetected_cpu_s": round(best_off, 4),
            "detection_on_cpu_s": round(best_on, 4),
            "overhead_ratio": round(ratio, 4),
        }
    }


def _rebuild_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """Cost of carrying a healthy redundant blade group on the hot path.

    Interleaves redundancy-off runs with 2-replica runs of the *same
    healthy fleet* (no blade faults, so the recovery orchestrator's
    ``active`` flag stays False throughout) and reports their CPU-time
    ratio.  The two runs are first asserted bit-identical via
    ``stream_digest`` -- redundancy consumes no RNG and, while clean,
    the balancer takes the exact unprotected service-time branch -- so
    the ratio measures pure carrying cost: the per-request flag check,
    the per-completion latency EWMA feeding the rebuild throttle's
    backpressure gate, and the one-time group placement/populate.

    Same min-of-pairs estimator as :func:`_failslow_section`, for the
    same reason: an absolute 1.05x budget must reject ambient machine
    noise harder than a relative gate, and taking the minimum ratio
    over interleaved pairs under-reports on a loud machine instead of
    flaking.
    """
    from repro.cluster.balancer import ClusterSimulator
    from repro.faults.recovery import RedundancyConfig
    from repro.memsim.redundancy import RedundancyPolicy
    from repro.memsim.remote_memory import make_remote_memory_model
    from repro.platforms.catalog import platform as platform_by_name
    from repro.workloads.websearch import make_websearch

    measure = 2400 if quick else 3600
    reps = 8 if quick else 10
    platform = platform_by_name("srvr1")
    workload = make_websearch()
    remote = make_remote_memory_model(
        "websearch", local_fraction=0.25, trace_length=50_000
    )
    redundancy = RedundancyConfig(
        policy=RedundancyPolicy.replicated(2), blades=3,
        pages_per_server=128,
    )

    def run_once(config):
        simulator = ClusterSimulator(
            platform,
            workload,
            servers=3,
            clients_per_server=4,
            seed=3,
            warmup_requests=100,
            measure_requests=measure,
            remote_memory=remote,
            redundancy=config,
        )
        start = time.process_time()
        result = simulator.run()
        return time.process_time() - start, result

    _, result_off = run_once(None)
    _, result_on = run_once(redundancy)
    assert result_off.stream_digest() == result_on.stream_digest(), (
        "healthy redundancy changed the request stream"
    )

    def one_round():
        round_off = round_on = round_ratio = float("inf")
        for _ in range(max(1, reps)):
            off, _ = run_once(None)
            on, _ = run_once(redundancy)
            round_off = min(round_off, off)
            round_on = min(round_on, on)
            round_ratio = min(round_ratio, on / off)
        return round_off, round_on, round_ratio

    best_off, best_on, ratio = one_round()
    for _ in range(2):
        if ratio <= 1.0 + (REBUILD_OVERHEAD_LIMIT - 1.0) * 0.6:
            break
        round_off, round_on, round_ratio = one_round()
        best_off = min(best_off, round_off)
        best_on = min(best_on, round_on)
        ratio = min(ratio, round_ratio)
    return {
        "rebuild_overhead": {
            "measure_requests": measure,
            "unprotected_cpu_s": round(best_off, 4),
            "redundancy_on_cpu_s": round(best_on, 4),
            "overhead_ratio": round(ratio, 4),
        }
    }


def _scenario_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """Compile+dispatch cost of the declarative scenario layer.

    Interleaves runs that go spec -> ``compile_scenario`` -> simulator
    with runs that construct the identical :class:`ClusterSimulator`
    directly, and reports their CPU-time ratio.  The two paths are
    first asserted bit-identical (``stream_digest``) -- the compiler's
    contract is that a scenario is pure notation -- so the ratio
    measures what the notation costs: builder assembly, aggregated
    validation, capacity resolution, plan expansion, and kwargs
    construction, all once per run.  Same min-of-pairs estimator as
    :func:`_failslow_section`, for the same absolute-budget reason.
    """
    from repro.cluster.balancer import ClusterSimulator
    from repro.cluster.overload import SurgeSchedule
    from repro.platforms.catalog import platform as platform_by_name
    from repro.scenario.builder import ScenarioBuilder
    from repro.scenario.compiler import (
        _build_cluster_simulator,
        compile_scenario,
    )
    from repro.workloads.websearch import make_websearch

    measure_ms = 2500.0 if quick else 8000.0
    reps = 6 if quick else 8
    rate = 300.0

    def build_scenario():
        return (
            ScenarioBuilder("bench-compile")
            .tier("web", platform="srvr1", servers=3)
            .benchmark("websearch")
            .open_loop(base_rate_rps=rate, warmup_ms=500.0,
                       measure_ms=measure_ms)
            .seed(7)
            .build()
        )

    def run_compiled():
        start = time.process_time()
        plan = compile_scenario(build_scenario()).plans[0]
        simulator, _, _ = _build_cluster_simulator(plan)
        result = simulator.run()
        return time.process_time() - start, result

    # Both arms share one prebuilt workload, exactly like the hand-wired
    # experiment modules (and the compiler's own per-process cache) --
    # the ratio then measures notation cost, not sampler construction.
    workload = make_websearch()

    def run_direct():
        start = time.process_time()
        simulator = ClusterSimulator(
            platform=platform_by_name("srvr1"),
            workload=workload,
            servers=3,
            clients_per_server=1,
            seed=7,
            disk_model_factory=None,
            remote_memory=None,
            arrivals=SurgeSchedule(
                base_rate_rps=rate, surge_multiplier=1.0,
                surge_start_ms=0.0, surge_end_ms=0.0),
            warmup_ms=500.0,
            measure_ms=measure_ms,
            engine="cohort",
        )
        result = simulator.run()
        return time.process_time() - start, result

    _, result_direct = run_direct()
    compiled = compile_scenario(build_scenario())
    simulator, _, _ = _build_cluster_simulator(compiled.plans[0])
    assert simulator.run().stream_digest() == \
        result_direct.stream_digest(), (
            "the scenario compiler no longer reproduces direct "
            "construction bitwise"
        )
    # Warm-cache compile cost (the first compile above paid one-off
    # workload construction, which both paths amortize identically).
    compile_start = time.process_time()
    compile_scenario(build_scenario())
    compile_s = time.process_time() - compile_start

    def one_round():
        round_direct = round_compiled = round_ratio = float("inf")
        for _ in range(max(1, reps)):
            direct_s, _ = run_direct()
            compiled_s, _ = run_compiled()
            round_direct = min(round_direct, direct_s)
            round_compiled = min(round_compiled, compiled_s)
            round_ratio = min(round_ratio, compiled_s / direct_s)
        return round_direct, round_compiled, round_ratio

    best_direct, best_compiled, ratio = one_round()
    for _ in range(2):
        if ratio <= 1.0 + (SCENARIO_COMPILE_OVERHEAD_LIMIT - 1.0) * 0.6:
            break
        round_direct, round_compiled, round_ratio = one_round()
        best_direct = min(best_direct, round_direct)
        best_compiled = min(best_compiled, round_compiled)
        ratio = min(ratio, round_ratio)
    return {
        "scenario_compile": {
            "simulated_ms": measure_ms,
            "compile_only_ms": round(compile_s * 1000.0, 2),
            "direct_cpu_s": round(best_direct, 4),
            "compiled_cpu_s": round(best_compiled, 4),
            "overhead_ratio": round(ratio, 4),
        }
    }


def _kernels_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """The single-pass trace kernels vs their scalar oracles.

    Both benchmarks assert bit-identical counters between the paths
    before reporting, so a correctness break shows up as a bench failure
    rather than a suspicious speedup.
    """
    import dataclasses

    import numpy as np

    from repro.flashcache.cache import FlashCache
    from repro.flashcache.models import FLASH_OBJECT_PARAMS
    from repro.memsim.trace import WORKLOAD_TRACES, cached_trace
    from repro.memsim.twolevel import TwoLevelMemorySimulator
    from repro.perf.kernels import flash_hit_curve, miss_ratio_curve
    from repro.platforms.storage import FLASH_1GB
    from repro.workloads.zipf import ZipfSampler

    # --- mrc_sweep: one stack-distance pass vs per-fraction LRU replay.
    spec = WORKLOAD_TRACES["websearch"]
    length = 100_000 if quick else 240_000
    # A full miss-ratio-curve sweep: 16 capacity points from 50% local
    # memory down to 5%.  The curve answers them all from one pass; the
    # scalar oracle replays the trace once per point.
    fractions = (
        0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.175,
        0.15, 0.125, 0.1, 0.09, 0.08, 0.07, 0.0625, 0.05,
    )
    cached_trace(spec, length, seed=0)  # trace generation off both timings

    def _best_of(reps, fn):
        # The kernel passes finish in fractions of a second, where a
        # single sample is dominated by scheduler/allocator noise; the
        # minimum over a few repeats is the stable estimator.
        best, value = math.inf, None
        for _ in range(reps):
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        return best, value

    def _scalar_sweep():
        return [
            TwoLevelMemorySimulator(spec, fraction, policy="lru").run(
                length, engine="scalar"
            )
            for fraction in fractions
        ]

    def _kernel_sweep():
        trace = cached_trace(spec, length, seed=0)
        curve = miss_ratio_curve(
            trace, warmup=min(spec.footprint_pages, length // 2)
        )
        return [
            curve.counts(max(1, int(spec.footprint_pages * fraction)))
            for fraction in fractions
        ]

    scalar_s, scalar_stats = _best_of(2, _scalar_sweep)
    kernel_s, kernel_counts = _best_of(3, _kernel_sweep)

    for stats, counts in zip(scalar_stats, kernel_counts):
        assert (stats.misses, stats.writebacks, stats.accesses) == (
            counts.misses, counts.writebacks, counts.accesses,
        ), "mrc kernel diverged from the scalar oracle"

    # --- flash_replay: one hit curve vs per-capacity FlashCache replay.
    params = FLASH_OBJECT_PARAMS["websearch"]
    objects = max(1, int(params.dataset_gb * (1 << 30) / params.object_bytes))
    stream_n = 60_000 if quick else 150_000
    stream = ZipfSampler(objects, params.zipf_alpha).sample_many(
        stream_n, np.random.default_rng(0)
    )
    # A flash-sizing curve (section 3.5's provisioning question): how
    # does the hit rate grow with device capacity?
    devices = [
        dataclasses.replace(FLASH_1GB, name=f"flash-{gb}gb", capacity_gb=gb)
        for gb in (0.125, 0.25, 0.375, 0.5, 0.75, 1.0,
                   1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
    ]

    def _flash_scalar_sweep():
        return [
            FlashCache(device, params.object_bytes).replay(stream)
            for device in devices
        ]

    def _flash_kernel_sweep():
        hit_curve = flash_hit_curve(stream)
        return [
            hit_curve.counts(
                max(1, int(device.capacity_gb * (1 << 30) / params.object_bytes))
            )
            for device in devices
        ]

    flash_scalar_s, flash_scalar = _best_of(2, _flash_scalar_sweep)
    flash_kernel_s, flash_kernel = _best_of(3, _flash_kernel_sweep)

    for stats, counts in zip(flash_scalar, flash_kernel):
        assert (
            stats.lookups, stats.hits, stats.insertions,
            stats.evictions, stats.block_writes,
        ) == (
            counts.lookups, counts.hits, counts.insertions,
            counts.evictions, counts.block_writes,
        ), "flash kernel diverged from the scalar FlashCache"

    return {
        "mrc_sweep": {
            "trace_length": length,
            "fractions": len(fractions),
            "scalar_s": round(scalar_s, 3),
            "kernel_s": round(kernel_s, 3),
            "speedup_vs_scalar": round(scalar_s / kernel_s, 3),
        },
        "flash_replay": {
            "stream_length": stream_n,
            "capacities": len(devices),
            "scalar_s": round(flash_scalar_s, 3),
            "kernel_s": round(flash_kernel_s, 3),
            "speedup_vs_scalar": round(flash_scalar_s / flash_kernel_s, 3),
        },
    }


def _sharded_section(quick: bool) -> Dict[str, Dict[str, float]]:
    """The sharded/vectorized rack engine against its scalar oracle.

    One rack scenario runs three ways on identical variate arrays: the
    event-at-a-time scalar oracle, the vectorized cohort engine (the
    timed headline -- ``events_per_sec`` counts the logical DES events
    the cohorts replace: arrival, completion, and deadline-timer
    resolution per admitted request, one per drop), and the calibrated
    hybrid.  Bit-stability is asserted in-run (``digest_match``) and the
    hybrid's p50/p99 must land within :data:`~repro.perf.sharded.
    HYBRID_TOLERANCE` of the cohort run, so a reported speedup can never
    come from a wrong answer.
    """
    from repro.perf.sharded import HYBRID_TOLERANCE, RackScenario, run_rack

    repeats = 1 if quick else 3
    scenario = RackScenario(
        servers_per_cell=8,
        cells=2 if quick else 4,
        rate_rps=2000.0,
        service_ms=0.4,
        duration_ms=2000.0 if quick else 4000.0,
        window_ms=200.0,
        deadline_ms=8.0,
        seed=2,
    )

    def timed(mode: str) -> Tuple[float, object]:
        best = math.inf
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_rack(scenario, mode=mode)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        return best, result

    scalar_s, scalar = timed("scalar")
    cohort_s, cohort = timed("cohort")
    hybrid_s, hybrid = timed("hybrid")
    p50_err = abs(hybrid.p50_ms - cohort.p50_ms) / cohort.p50_ms
    p99_err = abs(hybrid.p99_ms - cohort.p99_ms) / cohort.p99_ms
    return {
        "sharded_engine": {
            "events": cohort.events,
            "events_per_sec": round(cohort.events / cohort_s, 1),
            "scalar_events_per_sec": round(scalar.events / scalar_s, 1),
            "speedup_vs_scalar": round(scalar_s / cohort_s, 3),
            "digest_match": scalar.digest == cohort.digest,
            "hybrid_events_per_sec": round(hybrid.events / hybrid_s, 1),
            "hybrid_p50_err": round(p50_err, 4),
            "hybrid_p99_err": round(p99_err, 4),
            "hybrid_within_tolerance": max(p50_err, p99_err)
            <= HYBRID_TOLERANCE,
            "calibration_error": round(hybrid.calibration_error, 4),
            "windows_analytic": hybrid.windows_analytic,
            "windows_vector": hybrid.windows_vector,
        }
    }


def _e2e_section(jobs: int) -> Dict[str, Dict[str, float]]:
    """Cold vs warm-cache wall-clock of the full experiment sweep."""
    import tempfile

    from repro.experiments.runner import _EXPERIMENTS
    from repro.perf.cache import ResultCache
    from repro.perf.parallel import run_experiments

    names = list(_EXPERIMENTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache") as tmp:
        cache = ResultCache(tmp)
        start = time.perf_counter()
        run_experiments(names, jobs=jobs, cache=cache)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        run_experiments(names, jobs=jobs, cache=cache)
        warm = time.perf_counter() - start
    return {
        "e2e_all": {
            "experiments": len(names),
            "jobs": jobs,
            "cold_s": round(cold, 2),
            "warm_cache_s": round(warm, 2),
            "warm_fraction": round(warm / cold, 4),
        }
    }


def run_benchmarks(
    quick: bool = True,
    e2e: bool = False,
    jobs: int = 1,
    suite: bool = False,
) -> dict:
    """Run the harness and return the results document."""
    results: Dict[str, Dict[str, float]] = {}
    results.update(_engine_section(quick))
    results.update(_alloc_section())
    results.update(_cluster_section(quick))
    results.update(_trace_overhead_section(quick))
    results.update(_failslow_section(quick))
    results.update(_rebuild_section(quick))
    results.update(_scenario_section(quick))
    results.update(_kernels_section(quick))
    results.update(_sharded_section(quick))
    if suite:
        results.update(_suite_wall_section(jobs))
    if e2e:
        results.update(_e2e_section(jobs))
    return {
        "schema": 1,
        "quick": quick,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
        "headline": {
            "metric": "/".join(HEADLINE),
            "events_per_sec": results[HEADLINE[0]][HEADLINE[1]],
            "speedup_vs_legacy": results[HEADLINE[0]]["speedup_vs_legacy"],
        },
        "results": results,
    }


def check_regression(current: dict, baseline: dict) -> List[str]:
    """Regression messages comparing ``current`` against ``baseline``.

    Gates on the headline *speedup over the in-run legacy replica* (a
    machine-independent ratio); absolute events/sec is reported but not
    gated, since CI hosts vary in raw speed.
    """
    failures = []
    current_ratio = current["headline"]["speedup_vs_legacy"]
    baseline_ratio = baseline["headline"]["speedup_vs_legacy"]
    floor = baseline_ratio * (1.0 - REGRESSION_TOLERANCE)
    if current_ratio < floor:
        failures.append(
            f"engine headline speedup regressed: {current_ratio:.2f}x vs "
            f"baseline {baseline_ratio:.2f}x (floor {floor:.2f}x)"
        )
    # The trace-kernel speedups are in-run ratios against the scalar
    # oracles, so they gate the same machine-independent way.  Only
    # gated once the baseline has entries (older baselines pass).
    for key in ("mrc_sweep", "flash_replay"):
        base = baseline.get("results", {}).get(key, {}).get("speedup_vs_scalar")
        if base is None:
            continue
        now = current["results"][key]["speedup_vs_scalar"]
        kernel_floor = base * (1.0 - REGRESSION_TOLERANCE)
        if now < kernel_floor:
            failures.append(
                f"{key} kernel speedup regressed: {now:.2f}x vs "
                f"baseline {base:.2f}x (floor {kernel_floor:.2f}x)"
            )
    # The zero-sampling tracer's budget is absolute (a ratio against the
    # in-run untraced reference, so machine-independent): once the
    # baseline carries the entry, a disabled tracer may not cost more
    # than TRACE_OVERHEAD_LIMIT of the untraced hot path.
    if baseline.get("results", {}).get("trace_overhead") is not None:
        ratio = current["results"]["trace_overhead"]["overhead_ratio"]
        if ratio > TRACE_OVERHEAD_LIMIT:
            failures.append(
                f"zero-sampling trace overhead too high: {ratio:.3f}x vs "
                f"limit {TRACE_OVERHEAD_LIMIT:.2f}x of the untraced path"
            )
    # The fail-slow detector's budget gates the same way: on a healthy
    # fleet, detection may not cost more than FAILSLOW_OVERHEAD_LIMIT of
    # the same run without it.
    if baseline.get("results", {}).get("failslow_detect") is not None:
        ratio = current["results"]["failslow_detect"]["overhead_ratio"]
        if ratio > FAILSLOW_OVERHEAD_LIMIT:
            failures.append(
                f"fail-slow detection overhead too high: {ratio:.3f}x vs "
                f"limit {FAILSLOW_OVERHEAD_LIMIT:.2f}x of the undetected path"
            )
    # Carrying a healthy redundant blade group gates identically: while
    # no blade is down the recovery layer may not cost more than
    # REBUILD_OVERHEAD_LIMIT of the unprotected run.
    if baseline.get("results", {}).get("rebuild_overhead") is not None:
        ratio = current["results"]["rebuild_overhead"]["overhead_ratio"]
        if ratio > REBUILD_OVERHEAD_LIMIT:
            failures.append(
                f"healthy-redundancy overhead too high: {ratio:.3f}x vs "
                f"limit {REBUILD_OVERHEAD_LIMIT:.2f}x of the unprotected path"
            )
    # The scenario compiler's budget gates identically: a compiled run
    # may not cost more than SCENARIO_COMPILE_OVERHEAD_LIMIT of the
    # identical directly-constructed run.
    if baseline.get("results", {}).get("scenario_compile") is not None:
        ratio = current["results"]["scenario_compile"]["overhead_ratio"]
        if ratio > SCENARIO_COMPILE_OVERHEAD_LIMIT:
            failures.append(
                f"scenario compile+dispatch overhead too high: {ratio:.3f}x "
                f"vs limit {SCENARIO_COMPILE_OVERHEAD_LIMIT:.2f}x of direct "
                "construction"
            )
    # Bulk loading must stay at (near) parity with the per-entry legacy
    # loop: the staged-batch heuristic exists precisely because a naive
    # heapify-always schedule_batch was *slower* than not batching.
    if baseline.get("results", {}).get("engine_batch") is not None:
        ratio = current["results"]["engine_batch"]["speedup_vs_legacy"]
        if ratio < ENGINE_BATCH_PARITY_FLOOR:
            failures.append(
                f"schedule_batch below parity with per-entry scheduling: "
                f"{ratio:.2f}x vs floor {ENGINE_BATCH_PARITY_FLOOR:.2f}x"
            )
    # The sharded engine gates on three in-run, machine-independent
    # invariants: the cohort engine must stay >= SHARDED_SPEEDUP_FLOOR
    # over its scalar oracle (and within REGRESSION_TOLERANCE of the
    # baseline's ratio), the scalar-vs-cohort digests must match
    # bitwise, and the hybrid fast path must stay within its calibrated
    # tolerance of the full DES.
    if baseline.get("results", {}).get("sharded_engine") is not None:
        section = current["results"]["sharded_engine"]
        base_ratio = baseline["results"]["sharded_engine"]["speedup_vs_scalar"]
        sharded_floor = max(
            SHARDED_SPEEDUP_FLOOR, base_ratio * (1.0 - REGRESSION_TOLERANCE)
        )
        if section["speedup_vs_scalar"] < sharded_floor:
            failures.append(
                f"sharded cohort speedup regressed: "
                f"{section['speedup_vs_scalar']:.2f}x vs baseline "
                f"{base_ratio:.2f}x (floor {sharded_floor:.2f}x)"
            )
        if not section["digest_match"]:
            failures.append(
                "sharded engine digest mismatch: the vectorized cohort run "
                "no longer reproduces the scalar oracle bitwise"
            )
        if not section["hybrid_within_tolerance"]:
            failures.append(
                "hybrid fast path outside calibrated tolerance: p50 err "
                f"{section['hybrid_p50_err']:.3f}, p99 err "
                f"{section['hybrid_p99_err']:.3f}"
            )
    # The cohort serving-tier engine gates three ways once the baseline
    # carries the cohort fields: the scalar-vs-cohort digests must match
    # bitwise, the in-run speedup (machine-independent) must stay above
    # CLUSTER_SPEEDUP_FLOOR, and in quick mode the absolute rate must
    # clear the 5x acceptance floor over the pre-cohort scalar baseline.
    if (
        baseline.get("results", {})
        .get("cluster_surge", {})
        .get("speedup_vs_scalar")
        is not None
    ):
        section = current["results"]["cluster_surge"]
        if not section["digest_match"]:
            failures.append(
                "cluster_surge digest mismatch: the cohort engine no "
                "longer reproduces the scalar engine bitwise"
            )
        if section["speedup_vs_scalar"] < CLUSTER_SPEEDUP_FLOOR:
            failures.append(
                f"cohort cluster speedup too low: "
                f"{section['speedup_vs_scalar']:.2f}x vs floor "
                f"{CLUSTER_SPEEDUP_FLOOR:.1f}x over the in-run scalar engine"
            )
        if (
            current.get("quick")
            and section["sim_ms_per_wall_s"] < CLUSTER_SURGE_FLOOR
            and section["speedup_vs_scalar"] < CLUSTER_SURGE_SPEEDUP
        ):
            failures.append(
                f"cluster_surge below the 5x acceptance criterion: "
                f"{section['sim_ms_per_wall_s']:,.1f} sim-ms/wall-s vs "
                f"floor {CLUSTER_SURGE_FLOOR:,.1f} "
                f"(5 x pre-cohort {CLUSTER_SURGE_BASELINE:,.1f}) and "
                f"in-run speedup {section['speedup_vs_scalar']:.2f}x < "
                f"{CLUSTER_SURGE_SPEEDUP:.1f}x"
            )
    # The suite wall clock gates loosely (wall time is host-dependent):
    # only when both documents carry the row, and only against gross
    # (> 2x per experiment) slowdowns.
    base_suite = baseline.get("results", {}).get("suite_wall")
    cur_suite = current["results"].get("suite_wall")
    if base_suite is not None and cur_suite is not None:
        base_per = base_suite["wall_s_per_experiment"]
        now_per = cur_suite["wall_s_per_experiment"]
        limit = base_per * (1.0 + SUITE_WALL_TOLERANCE)
        if now_per > limit:
            failures.append(
                f"experiment suite wall clock regressed: "
                f"{now_per:.2f}s/experiment vs baseline {base_per:.2f}s "
                f"(limit {limit:.2f}s)"
            )
    return failures


def _write_profile(path: str, top: int = 20) -> None:
    """cProfile one quick ``cluster_surge`` cohort run into ``path``.

    The CI bench-smoke job uploads this as an artifact so hot-path
    regressions come with the profile that explains them.
    """
    import cProfile
    import io
    import pstats

    from repro.cluster.balancer import ClusterSimulator
    from repro.platforms.catalog import platform as platform_by_name
    from repro.workloads.websearch import make_websearch

    simulator = ClusterSimulator(
        platform_by_name("srvr1"),
        make_websearch(),
        engine="cohort",
        **_cluster_config(quick=True),
    )
    profile = cProfile.Profile()
    profile.enable()
    simulator.run()
    profile.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(buffer.getvalue())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the simulation engine and experiment pipeline.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small iteration counts (CI smoke mode)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="full iteration counts (default unless --quick)",
    )
    parser.add_argument(
        "--e2e", action="store_true",
        help="also time the full experiment sweep, cold and warm cache",
    )
    parser.add_argument(
        "--suite", action="store_true",
        help="also time the user-facing `repro-experiments --all --jobs N` "
        "command (the suite_wall row)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the --e2e/--suite sweeps",
    )
    parser.add_argument(
        "--profile", metavar="FILE",
        help="cProfile one quick cluster_surge cohort run and write the "
        "top functions by cumulative time to FILE",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=DEFAULT_OUTPUT,
        help=f"results file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="fail (exit 1) if the headline engine metric regressed >30%% "
        "versus this committed baseline JSON",
    )
    args = parser.parse_args(argv)

    quick = args.quick and not args.full
    if args.profile:
        _write_profile(args.profile)
        print(f"wrote cohort profile to {args.profile}")
    document = run_benchmarks(
        quick=quick, e2e=args.e2e, jobs=args.jobs, suite=args.suite
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")

    for name, metrics in document["results"].items():
        rendered = ", ".join(f"{k}={v}" for k, v in metrics.items())
        print(f"{name}: {rendered}")
    print(f"wrote {args.output}")

    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regression(document, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "regression check passed: headline speedup "
            f"{document['headline']['speedup_vs_legacy']:.2f}x vs baseline "
            f"{baseline['headline']['speedup_vs_legacy']:.2f}x"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
