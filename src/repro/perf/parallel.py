"""Process-pool parallel execution with deterministic merging.

Every experiment in this repository is a pure function of its arguments:
all randomness flows from seeds fixed inside each ``run()``, so a result
computed in a worker process is bit-identical to one computed inline.
Parallelism therefore only needs two properties to be invisible in the
output:

- **order-preserving merge** -- results are returned in request order,
  never completion order;
- **no nested pools** -- a worker that itself fans out would oversubscribe
  the machine, so workers run everything inline (:func:`in_worker`).

Two levels of fan-out share this module: :func:`run_experiments` runs
whole experiments in parallel (``repro-experiments --all --jobs N``) and
:func:`pmap` fans out independent design points *inside* one experiment
(``core.analysis.evaluate_designs``).  Both fall back to a plain serial
loop for ``jobs <= 1``, inside a worker, or when there is only one item,
so the serial path stays the trivially-auditable reference.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.perf.cache import ResultCache

T = TypeVar("T")
R = TypeVar("R")

_IN_WORKER = False

#: Process-wide job count for *intra*-experiment fan-out (the design/
#: benchmark grids inside one experiment).  Installed by the CLI's
#: ``--jobs``; read by ``evaluate_designs`` when no explicit ``jobs`` is
#: passed.  Inside a pool worker ``pmap`` runs serially regardless, so
#: the two fan-out levels never nest.
_INTRA_JOBS = 1


def _init_worker() -> None:
    """Pool initializer: mark this process so it never spawns sub-pools."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a pool worker process."""
    return _IN_WORKER


def set_intra_jobs(jobs: int) -> None:
    """Set the process-wide intra-experiment fan-out width."""
    global _INTRA_JOBS
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _INTRA_JOBS = jobs


def intra_jobs() -> int:
    """Current intra-experiment fan-out width (1 = serial)."""
    return _INTRA_JOBS


def default_jobs() -> int:
    """Job count for ``--jobs 0``: one per available core."""
    return os.cpu_count() or 1


def _pool(jobs: int) -> ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=jobs, mp_context=context, initializer=_init_worker
    )


def pmap(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1) -> List[R]:
    """``[fn(x) for x in items]`` computed with up to ``jobs`` processes.

    Results come back in input order regardless of completion order, so
    callers see exactly the serial list.  ``fn`` and the items must be
    picklable (module-level functions; no closures).  Runs inline when
    parallelism cannot help or is unsafe (``jobs <= 1``, a single item,
    or already inside a worker).

    A pool worker that *dies* mid-item (OOM kill, segfault in a C
    extension, ``os._exit``) breaks the whole pool: every in-flight and
    queued future raises :class:`BrokenProcessPool` even though their
    items were never at fault.  Rather than losing the entire run to one
    bad worker, the affected items are recomputed serially in the parent
    -- once -- behind a :class:`RuntimeWarning`.  Exceptions *raised* by
    ``fn`` are not retried; they propagate exactly as in the serial path.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    results: List[Any] = [None] * len(items)
    lost: List[int] = []
    with _pool(min(jobs, len(items))) as executor:
        futures = [executor.submit(fn, item) for item in items]
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                lost.append(index)
    if lost:
        warnings.warn(
            f"a process-pool worker died; recomputing {len(lost)} of "
            f"{len(items)} shards serially in the parent",
            RuntimeWarning,
            stacklevel=2,
        )
        for index in lost:
            results[index] = fn(items[index])
    return results


def pmap_iter(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    window: int = 0,
) -> Iterable[R]:
    """Ordered *streaming* :func:`pmap`: yields ``fn(x)`` results in
    input order as they become consumable, instead of materializing the
    whole result list.

    :func:`pmap` holds every result until the pool drains -- fine for a
    handful of experiment payloads, an RSS spike for a sharded cluster
    run whose per-shard payloads are large and immediately foldable.
    Here the caller folds each result as it arrives (``merge_telemetry``
    style) and at most ``window`` submissions are outstanding at once
    (default ``2 * jobs``), so peak memory is bounded by the fold state
    plus a constant number of in-flight payloads, not by the shard
    count.

    Same contracts as :func:`pmap`: input order, serial-inline fallback
    (``jobs <= 1``, single item, or inside a worker -- the no-nested-
    pools guard), picklable ``fn``/items, and dead-worker recovery --
    an item lost to :class:`BrokenProcessPool` is recomputed serially,
    once, behind a :class:`RuntimeWarning`, preserving yield order.
    Exceptions raised by ``fn`` propagate as in the serial path.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1 or _IN_WORKER:
        for item in items:
            yield fn(item)
        return
    if window < 1:
        window = 2 * jobs
    with _pool(min(jobs, len(items))) as executor:
        pending: List[Any] = []
        submitted = 0
        broken = False
        while submitted < len(items) and len(pending) < window:
            pending.append(executor.submit(fn, items[submitted]))
            submitted += 1
        for consumed in range(len(items)):
            if pending:
                future = pending.pop(0)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    result = None
            else:
                broken = True
                result = None
            if broken and result is None:
                warnings.warn(
                    "a process-pool worker died; recomputing shard "
                    f"{consumed} of {len(items)} serially in the parent",
                    RuntimeWarning,
                    stacklevel=2,
                )
                result = fn(items[consumed])
            if submitted < len(items) and not broken:
                try:
                    pending.append(executor.submit(fn, items[submitted]))
                    submitted += 1
                except (BrokenProcessPool, RuntimeError):
                    broken = True
            yield result


def _run_named(task: Tuple[str, str, Dict[str, Any]]):
    """Module-level worker: run one experiment by name (picklable)."""
    name, method, overrides = task
    from repro.experiments.runner import run_experiment

    return run_experiment(name, method=method, **overrides)


def run_experiments(
    names: Sequence[str],
    method: str = "sim",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[Tuple[str, Any]]:
    """Run experiments by name, optionally in parallel and/or cached.

    Returns ``[(name, ExperimentResult), ...]`` in the order of
    ``names``.  With a :class:`ResultCache`, hits are returned without
    recomputation and misses are stored after running; the cache key
    covers the experiment name, its parameters (``method`` for
    method-aware experiments, plus any ``overrides``), and a fingerprint
    of the package source, so results can never outlive the code that
    produced them.

    ``overrides`` maps experiment name -> extra keyword arguments for
    its ``run()`` (used by tests to shrink workloads).
    """
    from repro.experiments.runner import _METHOD_AWARE, run_experiment

    overrides = overrides or {}
    results: List[Optional[Any]] = [None] * len(names)
    misses: List[Tuple[int, Tuple[str, str, Dict[str, Any]], Optional[str]]] = []
    for index, name in enumerate(names):
        extra = dict(overrides.get(name, {}))
        key = None
        if cache is not None:
            params: Dict[str, Any] = dict(extra)
            if name in _METHOD_AWARE:
                params["method"] = method
            key = cache.key(name, params)
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                continue
        misses.append((index, (name, method, extra), key))

    if misses:
        tasks = [task for _, task, _ in misses]
        if jobs > 1 and len(tasks) > 1 and not _IN_WORKER:
            # LPT order: submit the longest experiments first so the
            # sweep never ends on a straggler that started last.  Pure
            # scheduling -- results are mapped back to request order,
            # so the output is bit-identical to the serial path.
            from repro.experiments.runner import _COST_HINTS

            order = sorted(
                range(len(tasks)),
                key=lambda i: -_COST_HINTS.get(tasks[i][0], 2.0),
            )
            computed_lpt = pmap(
                _run_named, [tasks[i] for i in order], jobs=jobs
            )
            computed: List[Any] = [None] * len(tasks)
            for position, index in enumerate(order):
                computed[index] = computed_lpt[position]
        else:
            computed = [
                run_experiment(name, method=method, **extra)
                for name, method, extra in tasks
            ]
        for (index, _, key), result in zip(misses, computed):
            results[index] = result
            if cache is not None and key is not None:
                cache.put(key, result)

    return list(zip(names, results))


def merge_telemetry(parts: Iterable[Any]) -> Optional[Any]:
    """Fold per-worker telemetry shards in request order, losslessly.

    The ``--jobs N`` companion to :func:`pmap`: each worker fills its
    own accumulator, the parent folds them back in input order.  Works
    for anything with a lossless ``merge()`` --
    :class:`~repro.simulator.telemetry.LatencyHistogram`,
    :class:`~repro.simulator.telemetry.TimeSeries`,
    :class:`~repro.obs.metrics.MetricsRegistry` -- and inherits their
    raise-on-config-mismatch contract, so shards can never silently
    degrade.  The first non-``None`` shard is deep-copied (callers'
    shards are never mutated); returns ``None`` when every shard is.
    """
    merged = None
    for part in parts:
        if part is None:
            continue
        if merged is None:
            merged = copy.deepcopy(part)
        else:
            merged.merge(part)
    return merged


def chunked(items: Sequence[T], size: int) -> Iterable[List[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])
