"""Cohort request-lifecycle engine for the serving-tier cluster DES.

The scalar :meth:`repro.cluster.balancer.ClusterSimulator.run` models each
request attempt as a chain of per-stage Python closures threaded through
four :class:`~repro.simulator.resources.Resource` objects -- a dozen
closure allocations and as many dynamic dispatches per attempt.  On the
open-loop surge benchmark that loop, not the model, is the cost: the
``cluster_surge`` bench sustained ~70k simulated-ms per wall-second while
the rack engine (PR 8) moved millions of events per second.

:func:`run_cohort` replaces the callback web with one flat event loop over
plain tuples ``(time, key, a, b)`` (``key`` packs the push sequence
number with the event kind in its low 4 bits) -- the *cohort* of state
needed per event rides in two plain lists instead of captured cells --
while reproducing the scalar path's behaviour **bit for bit**:

- every ``random.Random`` consumer (inter-arrival draws, workload
  sampling via :attr:`~repro.workloads.base.Workload.fast_demand`,
  admission shed draws, least-outstanding tie-breaks, full-jitter
  backoff) runs in exactly the scalar order on the shared generator, so
  the uniform stream is identical;
- the CPU and memory stations replicate :class:`Resource`'s grant
  algorithm exactly (free-station grant, FIFO queueing, the ``on_start``
  gate loop that cancels deadline-shed work and immediately grants the
  next waiter, grant-before-completion-callback ordering on finish);
- the disk and NIC stations -- both single-server FIFO queues whose
  service time is fixed at dispatch -- are advanced as carry-seeded
  Lindley recurrences instead of discrete events: at an attempt's
  memory-stage completion, ``dep = max(now, carry) + svc`` per station
  reproduces, operation for operation, the floats the event-at-a-time
  grant would compute (grant-at-entry when the station is free, grant
  at the previous departure otherwise), because a k=1 FIFO station's
  departure order equals its entry order and nothing observable reads
  the station state in between.  Only the final attempt-complete event
  returns to the heap;
- service times come from the same platform formulas with loop-invariant
  factors hoisted only where IEEE semantics make the hoist bitwise-safe
  (e.g. ``cpu_ms_ref * (stall + (1 - stall) * scaling)`` -- the
  parenthesised factor never depends on the request);
- event tie-breaking matches the scalar engine's FIFO ``seq`` order:
  this loop schedules the surviving events at the same points, in the
  same order, as the scalar code's ``schedule``/``schedule_timer``
  calls, and the events the Lindley collapse removes (disk/NIC stage
  completions) carry no observable side effects.  The collapsed
  attempt-complete event is pushed earlier (at memory completion, not
  NIC grant), which could only reorder it against an unrelated event
  landing on the *identical* float timestamp in that window; event
  times here are sums of continuous variates, and the structural
  equal-time cases (same-server chains, timeout-vs-completion races)
  keep their relative order because their seq assignments keep their
  relative order.

``ClusterResult.stream_digest()`` equality between the two engines is a
hard test invariant (``tests/cluster/test_cohort_engine.py``).

Two deliberate deviations from a naive "vectorize everything" plan, both
forced by the stream-identity contract: inter-arrival variates cannot be
bulk-drawn with :func:`repro.perf.variates.exponential_block` because
the arrival draws *interleave* with workload/admission draws on the
shared generator (and the numpy log mapping differs in the last ulp),
so arrivals use the inlined :func:`~repro.perf.variates
.exponential_sampler` form instead -- same values, same stream, one
C-level ``random()`` per draw.  Likewise the CPU and memory stations
stay event-driven: the CPU gate (deadline shedding, admission EWMA)
makes grant decisions that feed back into the shared stream, and a
multi-channel memory station's completion order can overtake its entry
order, so neither is a Lindley recurrence.

Latency recording is batched: detector histograms buffer per-server
attempt latencies and flush through
:meth:`~repro.simulator.telemetry.LatencyHistogram.record_many`
immediately before each detector evaluation (the evaluator reads only
bucket counts, which ``record_many`` computes exactly), and the metrics
response histogram is flushed once at the end of the run.

Features the kernels do not model fall back to the scalar path
automatically (see :func:`cohort_supported`): closed-loop mode, tracing,
remote memory, stochastic or scripted faults, redundancy/rebuild
traffic, maintenance drains, and non-default disk models.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappop, heappush
from math import log
from typing import List, Optional, Tuple

from repro.cluster.overload import (
    AdmissionController,
    AdmissionVerdict,
    BreakerState,
    CircuitBreaker,
    OverloadReport,
    RetryBudget,
)
from repro.faults.failslow import DriftTable, FailSlowReport, PeerComparisonDetector
from repro.simulator.engine import PAST_EPSILON_MS, PAST_RELATIVE_EPSILON
from repro.simulator.server_sim import PlatformDiskModel
from repro.simulator.telemetry import TimeSeries
from repro.workloads.qos import QosTracker

__all__ = ["cohort_supported", "run_cohort", "clamp_phase_delay"]


def clamp_phase_delay(delay_ms: float, now_ms: float) -> float:
    """Clamp a round-off-negative delay to zero, mirroring the engine.

    Cohort window boundaries derived from absolute targets (warmup end,
    measurement end, :class:`~repro.cluster.overload.SurgeSchedule`
    phase edges) are computed as ``target - now``; float round-off can
    land that one ulp in the past.  This mirrors
    ``Simulation._clamped`` exactly -- the same absolute epsilon plus a
    relative term scaled by the clock -- so a boundary event never
    raises (or, worse, silently reorders) over the last ulp, while a
    genuinely past target still fails loudly.
    """
    if delay_ms >= 0.0:
        return delay_ms
    if delay_ms >= -(PAST_EPSILON_MS + PAST_RELATIVE_EPSILON * now_ms):
        return 0.0
    raise ValueError(f"cannot schedule in the past (delay {delay_ms})")


def cohort_supported(csim) -> Tuple[bool, str]:
    """Can ``csim`` run on the cohort engine with an identical digest?

    Returns ``(True, "")`` or ``(False, reason)``.  The reason string is
    stored on the simulator as ``fallback_reason`` so tests (and users)
    can see why a run routed to the scalar path.
    """
    if csim._arrivals is None:
        return False, "closed-loop mode"
    if csim._tracer is not None:
        return False, "tracer attached"
    if csim._remote_memory is not None:
        return False, "remote memory blade"
    if csim._faults is not None:
        return False, "stochastic fault injection"
    if csim._failures or csim._recoveries:
        return False, "scripted failures/recoveries"
    if csim._redundancy is not None:
        return False, "redundancy/rebuild traffic"
    if csim._maintenance is not None and csim._maintenance.windows:
        return False, "maintenance drains"
    # The kernels inline the platform disk-time formula; any other disk
    # model (flash cache, degraded modes) keeps the scalar path.
    probe = csim._disk_model_factory()
    if type(probe) is not PlatformDiskModel:
        return False, f"disk model {type(probe).__name__}"
    if probe._platform is not csim._platform:
        return False, "disk model bound to a different platform"
    return True, ""


# Per-request and per-attempt state ride in plain lists: creating a
# slotted instance costs a type call plus one STORE_ATTR per field,
# which at one request record and ~1.07 attempt records per arrival was
# a measurable slice of the hot loop.  Index layout (the ``rs`` list
# mirrors the scalar ``_RequestState``; ``att`` mirrors ``_Attempt``
# plus the per-attempt service times the scalar path kept in closure
# cells):
#
#   rs  = [d, start, attempts, finished, hedged]
#          0  1      2         3         4
#   att = [rs, server, void, done, probe, t0, timeout_ms, mem_ms,
#          0   1       2     3     4      5   6           7
#          disk_ms, net_ms, floor, left, decided, serve, batch]
#          8        9       10     11    12       13     14
#
# ``att[14]`` (batch) counts the CPU slice completions the attempt's
# next _K_CPU event stands for: >1 when every slice was granted at
# dispatch (they share one service time, so their finish events would
# pop back-to-back anyway and coalesce into one heap entry).


class _Srv:
    """One server's stage state.

    CPU and memory are event-driven stations replicating the scalar
    :class:`Resource` (busy count + FIFO queue); disk and NIC are the
    carry floats of their Lindley recurrences (next free time).
    """

    __slots__ = (
        "index", "outstanding", "completions",
        "cpu_busy", "cpu_q", "mem_busy", "mem_q",
        "disk_free", "nic_free", "brk",
    )

    def __init__(self, index: int):
        self.index = index
        self.outstanding = 0
        self.completions = 0
        self.cpu_busy = 0
        self.cpu_q = deque()
        self.mem_busy = 0
        self.mem_q = deque()
        self.disk_free = 0.0
        self.nic_free = 0.0
        #: This server's circuit breaker (None when breakers are off) --
        #: saves the breakers[server.index] double lookup on the hot path.
        self.brk = None


class _St:
    """Mutable run state shared between the loop and its helpers."""

    __slots__ = ("done", "measuring", "offered", "good")

    def __init__(self, measuring: bool):
        self.done = False
        self.measuring = measuring
        self.offered = 0
        self.good = 0


def _generic_fast_demand(workload):
    """Fallback fast path: sample normally, return the demand tuple."""
    sample = workload.sample

    def fast(rng: random.Random) -> tuple:
        d = sample(rng).demand
        return (
            d.cpu_ms_ref, d.mem_ms_ref, d.disk_ios, d.disk_bytes,
            d.net_bytes, d.disk_write, d.cpu_parallelism,
        )

    return fast


# Event kinds, ordered by hot-path frequency.
_K_CPU = 0
_K_MEM = 1
_K_DONE = 2
_K_ARRIVE = 3
_K_TIMEOUT = 4
_K_HEDGE = 5
_K_BACKOFF = 6
_K_TICK = 7
_K_BEGIN = 8
_K_END = 9


def run_cohort(csim):
    """Run one open-loop cluster simulation on the cohort engine.

    ``csim`` is a :class:`~repro.cluster.balancer.ClusterSimulator` whose
    configuration passed :func:`cohort_supported`.  Returns the same
    :class:`~repro.cluster.balancer.ClusterResult` -- same
    ``stream_digest()`` -- the scalar path would have produced.
    """
    from repro.cluster.balancer import ClusterResult, Dispatch, FaultReport

    rng = random.Random(csim._seed)
    _random = rng.random
    _getrandbits = rng.getrandbits
    _log = log

    platform = csim._platform
    workload = csim._workload
    profile = workload.profile
    retry = csim._retry
    policy = csim._overload
    schedule = csim._arrivals
    metrics = csim._metrics
    nservers = csim._servers
    assert policy is not None  # open-loop runs always carry a policy

    fast_sample = workload.fast_demand or _generic_fast_demand(workload)

    # --- hoisted service-time constants (bitwise-safe hoists only) ----
    speed = platform.core_speed(
        profile.cache_sensitivity, profile.inorder_ipc_factor
    )
    stall = profile.stall_fraction
    if not 0.0 <= stall < 1.0:
        raise ValueError("stall fraction must be in [0, 1)")
    cpu_factor = stall + (1.0 - stall) * (
        platform.calibration.reference_core_speed / speed
    )
    mem_div = platform.memory.channel_bandwidth_factor
    disk_read_lat = platform.disk.read_latency_ms
    disk_write_lat = platform.disk.write_latency_ms
    disk_denom = platform.disk.bandwidth_mb_s * 1000.0
    nic_overhead = platform.nic.per_transfer_overhead_ms
    nic_denom = platform.nic.bandwidth_mb_s * 1000.0
    cpu_k = platform.cpu.total_cores
    mem_k = platform.memory.channels

    # --- gray-failure machinery ---------------------------------------
    drift = (
        csim._failslow.table(nservers) if csim._failslow is not None else None
    )
    if drift is not None:
        drift_cpu, drift_nic, drift_flash = drift.cpu, drift.nic, drift.flash
        drift_scale = DriftTable.scale
    detector: Optional[PeerComparisonDetector] = None
    if csim._failslow_detection is not None:
        detector = PeerComparisonDetector(
            csim._failslow_detection, nservers, metrics=metrics
        )
    det_report = None if detector is None else detector.report
    # Batched latency recording: per-server buffers flushed through
    # LatencyHistogram.record_many right before every detector
    # evaluation (which reads only counts -- exact under record_many).
    det_buf: Optional[List[list]] = (
        None if detector is None else [[] for _ in range(nservers)]
    )

    servers = [_Srv(index) for index in range(nservers)]
    # Build (and keep, for the metrics cache export hook) the same disk
    # models the scalar path would -- all PlatformDiskModel here, whose
    # service time is inlined below and which consumes no RNG.
    disk_models = [csim._disk_model_factory() for _ in range(nservers)]
    rr_next = 0
    report = FaultReport()

    # --- overload-protection runtime ----------------------------------
    bucket = policy.telemetry_bucket_ms
    overload_report = OverloadReport(
        completed=TimeSeries(bucket_ms=bucket),
        goodput=TimeSeries(bucket_ms=bucket),
        offered=TimeSeries(bucket_ms=bucket),
        breaker_open_series=TimeSeries(bucket_ms=bucket),
    )
    admission: Optional[AdmissionController] = None
    retry_budget: Optional[RetryBudget] = None
    breakers: Optional[List[CircuitBreaker]] = None
    if policy.admission is not None:
        slo_ms = (
            profile.qos.limit_ms if profile.qos is not None
            else (retry.timeout_ms if retry is not None else 1000.0)
        )
        admission = AdmissionController(policy.admission, slo_ms, rng)
    if policy.retry_budget is not None:
        retry_budget = RetryBudget(policy.retry_budget)
    if policy.breaker is not None:
        def _on_open(now_ms: float, state_: BreakerState) -> None:
            if state_ is BreakerState.OPEN:
                overload_report.breaker_opens += 1
                overload_report.breaker_open_series.record(now_ms)

        breakers = [
            CircuitBreaker(policy.breaker, on_transition=_on_open)
            for _ in range(nservers)
        ]
        for srv, brk in zip(servers, breakers):
            srv.brk = brk

    queue_cap = policy.queue_cap
    deadline_shedding = policy.deadline_shedding
    brownout = policy.brownout
    if brownout is not None:
        brownout_enter = brownout.enter_outstanding
        brownout_factor = brownout.demand_factor
    round_robin = csim._dispatch is Dispatch.ROUND_ROBIN
    retry_max = retry.max_retries if retry is not None else 0
    retry_timeout = retry.timeout_ms if retry is not None else 0.0
    hedge_after = retry.hedge_after_ms if retry is not None else None
    if retry is not None:
        backoff_base = retry.backoff_base_ms
        backoff_factor = retry.backoff_factor
        jitter = retry.jitter

    # Protection-stack fast paths: the closed-breaker / admit / deposit
    # cases are single compares or float ops, inlined below with the
    # originals' exact arithmetic; every other transition falls through
    # to the real object methods.
    _CLOSED = BreakerState.CLOSED
    _HALF_OPEN = BreakerState.HALF_OPEN
    if admission is not None:
        adm_bucket = admission._bucket
        adm_a = admission.policy.ewma_alpha
        adm_1ma = 1 - adm_a
        adm_threshold = admission.policy.slo_fraction * slo_ms
        adm_max_shed = admission.policy.max_shed_probability
    if retry_budget is not None:
        rb_ratio = retry_budget.policy.token_ratio
        rb_burst = retry_budget.policy.burst

    qos = QosTracker(profile.qos) if profile.qos else None
    qos_record = qos.record if qos is not None else None
    qos_samples = qos._samples if qos is not None else None
    qos_limit = profile.qos.limit_ms if profile.qos is not None else 0.0
    responses: List[float] = []
    responses_append = responses.append
    # Inlined TimeSeries.record targets: the three per-request series.
    completed_b = overload_report.completed._buckets
    goodput_b = overload_report.goodput._buckets
    offered_b = overload_report.offered._buckets
    # Metrics batching: responses flushed through record_many, outcome
    # counters accumulated and inc'd once.
    has_metrics = metrics is not None
    resp_buf: List[float] = []
    m_outcomes = [0, 0]  # served, gave_up

    t0 = csim._warmup_ms
    t1 = csim._warmup_ms + csim._measure_ms
    st = _St(measuring=csim._warmup_ms == 0.0)

    # Heap events are 4-tuples ``(time, key, a, b)`` where ``key`` packs
    # the strictly-increasing push sequence number with the event kind in
    # the low 4 bits (``key = seq + kind``, ``seq`` advancing by 16 per
    # push, kinds < 16).  Key order equals push order at equal times --
    # exactly the 5-tuple ``(time, seq, kind, ...)`` ordering -- with one
    # less tuple element to allocate and compare per event.
    heap: list = []
    seq = 0

    def push(time: float, kind: int, a, b) -> None:
        nonlocal seq
        seq += 16
        heappush(heap, (time, seq + kind, a, b))

    def push_at(now: float, target: float, kind: int, a, b) -> None:
        """Schedule at an absolute target, clamping phase-edge round-off."""
        push(now + clamp_phase_delay(target - now, now), kind, a, b)

    # --- request lifecycle helpers ------------------------------------

    def flush_detector() -> None:
        for index, buf in enumerate(det_buf):
            if buf:
                detector.histograms[index].record_many(buf)
                del buf[:]

    def complete(now: float, start_ms: float, served: bool) -> None:
        if served:
            i = int(now / bucket)
            completed_b[i] = completed_b.get(i, 0.0) + 1.0
            if qos is None or now - start_ms <= qos_limit:
                goodput_b[i] = goodput_b.get(i, 0.0) + 1.0
        if not st.done and start_ms >= t0:
            # _record_response
            response = now - start_ms
            responses_append(response)
            if qos_record is not None:
                qos_record(response)
            if served and (qos is None or response <= qos_limit):
                st.good += 1
            if has_metrics:
                resp_buf.append(response)
                m_outcomes[0 if served else 1] += 1

    def schedule_backoff(now: float, rs: list) -> None:
        # retry.backoff_ms(attempts - 1, rng), inlined: the uniform
        # full-jitter draw is rng.uniform(0.0, ceiling) verbatim.
        ceiling = backoff_base * backoff_factor ** max(rs[2] - 1, 0)
        if jitter:
            backoff = 0.0 + (ceiling - 0.0) * _random()
        else:
            backoff = ceiling
        push(now + backoff, _K_BACKOFF, rs, None)

    def retry_or_give_up(now: float, rs: list) -> None:
        if st.done or rs[3]:
            return
        if retry is not None and rs[2] <= retry_max:
            if retry_budget is None or retry_budget.try_spend():
                report.retries += 1
                schedule_backoff(now, rs)
                return
            overload_report.retries_denied += 1
        rs[3] = True
        report.gave_up += 1
        complete(now, rs[1], False)

    def fast_fail(now: float, rs: list) -> None:
        rs[2] += 1
        if retry is not None and rs[2] <= retry_max:
            if retry_budget is None or retry_budget.try_spend():
                report.retries += 1
                schedule_backoff(now, rs)
                return
            overload_report.retries_denied += 1
        rs[3] = True
        # abandon() is a no-op in open-loop mode.

    def cpu_gate(now: float, att: list) -> bool:
        """The scalar ``cpu_gate``/``slice_gate`` pair: decide once per
        attempt at the first slice to reach a core."""
        if att[12]:
            return att[13]
        att[12] = True
        if admission is not None:
            # observe_delay(now - t0), inlined ((1-a) hoisted; same ops).
            admission._delay_ewma = (
                adm_1ma * admission._delay_ewma + adm_a * (now - att[5])
            )
        if not deadline_shedding:
            att[13] = True
            return True
        if att[2]:
            # Timed out while queued; the timeout handler already
            # arranged the retry -- just shed the stale work.
            overload_report.shed_deadline += 1
            att[1].outstanding -= 1
            return False
        if retry is not None and now - att[5] + att[10] > att[6]:
            # Provably cannot meet the deadline: fail fast now.
            att[2] = True
            overload_report.shed_deadline += 1
            att[1].outstanding -= 1
            if breakers is not None:
                breakers[att[1].index].record_failure(now, att[4])
            retry_or_give_up(now, att[0])
            return False
        att[13] = True
        return True

    def start_attempt(now: float, rs: list, server: "_Srv", hedge: bool) -> None:
        nonlocal seq
        d = rs[0]
        if brownout is not None and server.outstanding >= brownout_enter:
            # demand.scaled(factor): the same five per-component products.
            c_cpu = d[0] * brownout_factor
            c_mem = d[1] * brownout_factor
            c_ios = d[2] * brownout_factor
            c_bytes = d[3] * brownout_factor
            c_net = d[4] * brownout_factor
            overload_report.brownout_requests += 1
        else:
            c_cpu = d[0]
            c_mem = d[1]
            c_ios = d[2]
            c_bytes = d[3]
            c_net = d[4]
        probe = (
            breakers is not None
            and breakers[server.index].state is _HALF_OPEN
            and breakers[server.index].note_dispatch(now)
        )
        server.outstanding += 1
        # Per-attempt timeout: static, or percentile-adaptive when the
        # detector carries an AdaptiveTimeoutPolicy.
        if retry is None:
            att_timeout = 0.0
        elif detector is None:
            att_timeout = retry_timeout
        else:
            cached = detector.adaptive_timeout_ms
            if cached is None:
                att_timeout = retry_timeout
            else:
                att_timeout = cached if cached < retry_timeout else retry_timeout
                det_report.last_adaptive_timeout_ms = att_timeout

        cpu_ms = c_cpu * cpu_factor
        mem_ms = c_mem / mem_div
        disk_ms = (
            c_ios * (disk_write_lat if d[5] else disk_read_lat)
            + c_bytes / disk_denom
        )
        net_ms = nic_overhead + c_net / nic_denom
        if drift is not None:
            # Drift evaluated once at dispatch time (pure function of
            # simulated time; zero RNG), like the scalar path.
            lane = drift_cpu[server.index]
            if lane is not None:
                cpu_ms *= drift_scale(lane, now)
            lane = drift_flash[server.index]
            if lane is not None:
                disk_ms *= drift_scale(lane, now)
            lane = drift_nic[server.index]
            if lane is not None:
                net_ms *= drift_scale(lane, now)

        par = d[6]
        slices = par if par < cpu_k else cpu_k
        att = [
            rs, server, False, False, probe, now, att_timeout, mem_ms,
            disk_ms, net_ms, cpu_ms + mem_ms + disk_ms + net_ms, slices,
            False, False, 1,
        ]
        svc = cpu_ms if slices == 1 else cpu_ms / slices
        if server.cpu_busy + slices <= cpu_k:
            # Every slice starts right now and finishes at the same
            # instant with consecutive seqs, so the group coalesces into
            # ONE heap event standing for `slices` completions (see
            # att[14]/batch; the _K_CPU handler replays them back-to-back
            # exactly as the scalar engine would pop them).  The gate
            # decision is inlined for the dispatch-time case: the
            # observed queueing delay is exactly 0.0, so the admission
            # EWMA update reduces to the decay term, and the deadline
            # test reduces to floor > timeout.
            att[12] = True
            if admission is not None:
                admission._delay_ewma *= adm_1ma
            if (
                deadline_shedding and retry is not None
                and att[10] > att_timeout
            ):
                att[2] = True
                overload_report.shed_deadline += 1
                server.outstanding -= 1
                if breakers is not None:
                    breakers[server.index].record_failure(now, probe)
                retry_or_give_up(now, rs)
            else:
                att[13] = True
                att[14] = slices
                server.cpu_busy += slices
                seq += 16
                heappush(heap, (now + svc, seq, server, att))  # + _K_CPU == 0
        else:
            for _ in range(slices):
                if server.cpu_busy < cpu_k:
                    # Free station: the Resource _start path -- gate,
                    # then grant.  (With a free station the queue is
                    # empty by the Resource invariant, so a refused
                    # gate just drops.)
                    if cpu_gate(now, att):
                        server.cpu_busy += 1
                        seq += 16
                        heappush(heap, (now + svc, seq, server, att))
                else:
                    server.cpu_q.append((svc, att))

        if retry is None:
            return
        seq += 16
        heappush(heap, (now + att_timeout, seq + _K_TIMEOUT, att, None))
        if hedge_after is not None and not hedge and not rs[4]:
            seq += 16
            heappush(heap, (now + hedge_after, seq + _K_HEDGE, att, None))

    def allowed(now: float, server: "_Srv") -> bool:
        if breakers is not None and not breakers[server.index].allow(now):
            return False
        if queue_cap is not None and server.outstanding >= queue_cap:
            return False
        return True

    def pick(candidates: List["_Srv"]) -> "_Srv":
        nonlocal rr_next
        if round_robin:
            index = rr_next % len(candidates)
            rr_next = (index + 1) % len(candidates)
            return candidates[index]
        least = min(s.outstanding for s in candidates)
        ties = [s for s in candidates if s.outstanding == least]
        # rng.randrange(len(ties)), inlined (_randbelow_with_getrandbits).
        n = len(ties)
        k = n.bit_length()
        r = _getrandbits(k)
        while r >= n:
            r = _getrandbits(k)
        return ties[r]

    # With no detector and least-outstanding dispatch (the common case),
    # the breaker filter, queue-cap filter, and pick fuse into one pass.
    fused = detector is None and not round_robin

    def dispatch_request(now: float, rs: list) -> None:
        if st.done or rs[3]:
            return
        if fused:
            least = -1
            ties = None
            blocked = True
            for s in servers:
                if breakers is not None:
                    b = breakers[s.index]
                    if b.state is not _CLOSED and not b.allow(now):
                        continue
                blocked = False
                o = s.outstanding
                if queue_cap is not None and o >= queue_cap:
                    continue
                if ties is None or o < least:
                    least = o
                    ties = [s]
                elif o == least:
                    ties.append(s)
            if ties is None:
                if blocked:
                    overload_report.breaker_rejections += 1
                else:
                    overload_report.rejected_queue_full += 1
                fast_fail(now, rs)
                return
            rs[2] += 1
            n = len(ties)
            k = n.bit_length()
            r = _getrandbits(k)
            while r >= n:
                r = _getrandbits(k)
            start_attempt(now, rs, ties[r], False)
            return
        # Every server is alive in cohort-supported configs, so the
        # scalar health-wait branch is unreachable here.
        candidates = servers
        if detector is not None and (
            detector.ejected_count or detector.drained_count
        ):
            routable = [s for s in servers if detector.routable(s.index)]
            if routable:
                candidates = routable
                probe_index = detector.take_probe()
                if probe_index is not None:
                    rs[2] += 1
                    start_attempt(now, rs, servers[probe_index], False)
                    return
            else:
                det_report.quarantine_bypasses += 1
        if breakers is not None:
            candidates = [
                s for s in candidates if breakers[s.index].allow(now)
            ]
            if not candidates:
                overload_report.breaker_rejections += 1
                fast_fail(now, rs)
                return
        if queue_cap is not None:
            candidates = [
                s for s in candidates if s.outstanding < queue_cap
            ]
            if not candidates:
                overload_report.rejected_queue_full += 1
                fast_fail(now, rs)
                return
        rs[2] += 1
        start_attempt(now, rs, pick(candidates), False)

    # --- arrival process ----------------------------------------------
    base_pms = schedule.base_rate_rps / 1000.0
    surge_pms = (schedule.base_rate_rps * schedule.surge_multiplier) / 1000.0
    surge_start = schedule.surge_start_ms
    surge_end = schedule.surge_end_ms

    # --- initial schedule (same order as the scalar path) -------------
    if detector is not None:
        eval_interval = csim._failslow_detection.eval_interval_ms
        push(eval_interval, _K_TICK, None, None)
    if t0 > 0:
        push_at(0.0, t0, _K_BEGIN, None, None)
    push_at(0.0, t1, _K_END, None, None)
    rate0 = surge_pms if surge_start <= 0.0 < surge_end else base_pms
    push(-_log(1.0 - _random()) / rate0, _K_ARRIVE, None, None)

    # Loop-local aliases for the hottest names: closure-captured
    # variables compile to cell lookups inside the loop; a plain local
    # bound to the same object is one opcode cheaper per access.
    pop = heappop
    _push = heappush
    heap_l = heap
    servers_l = servers
    completed_bl = completed_b
    goodput_bl = goodput_b
    completed_get = completed_b.get
    goodput_get = goodput_b.get
    offered_get = offered_b.get
    have_brk = breakers is not None
    have_cap = queue_cap is not None
    # The fused path implies no detector, so the per-attempt timeout is
    # the static policy timeout and the deadline gate needs one compare.
    fused_timeout = retry_timeout if retry is not None else 0.0
    deadline_gate = deadline_shedding and retry is not None
    # ``st.done`` is set only by the _K_END handler, which breaks out of
    # the loop, so inside the loop it is identically False (the scalar
    # engine's ``state["done"]`` guards are equally dead: Simulation.stop
    # halts the event loop before any later event runs).  The hot
    # branches below therefore omit those guards; the shared closures
    # keep them for the finalization path.  ``offered``/``good`` counters
    # live in plain locals for the same reason and are stored back after
    # the loop.
    measuring = st.measuring
    offered_n = 0
    good_n = 0
    now = 0.0
    while heap:
        now, key, a, b = pop(heap)
        kind = key & 15
        if kind == _K_CPU:
            server = a
            att = b
            n = att[14]
            q = server.cpu_q
            if not q:
                # No waiters: the n coalesced slice completions reduce
                # to one busy-count update (nothing can interleave --
                # their seqs were consecutive).
                server.cpu_busy -= n
                att[11] -= n
            else:
                while True:
                    server.cpu_busy -= 1
                    if q:
                        # Resource.finish grants the next waiter
                        # (running its gate loop) before the
                        # completion callback.
                        while True:
                            svc, natt = q.popleft()
                            if cpu_gate(now, natt):
                                server.cpu_busy += 1
                                seq += 16
                                _push(
                                    heap_l,
                                    (now + svc, seq, server, natt),
                                )
                                break
                            if not q:
                                break
                    att[11] -= 1
                    n -= 1
                    if not n:
                        break
            if att[11] == 0:
                # after_cpu: enter the memory stage.
                if server.mem_busy < mem_k:
                    server.mem_busy += 1
                    seq += 16
                    _push(heap_l, (now + att[7], seq + _K_MEM, server, att))
                else:
                    server.mem_q.append(att)
        elif kind == _K_MEM:
            server = a
            att = b
            q = server.mem_q
            if q:
                natt = q.popleft()
                seq += 16
                _push(heap_l, (now + natt[7], seq + _K_MEM, server, natt))
            else:
                server.mem_busy -= 1
            # after_mem: the disk and NIC stations, advanced as Lindley
            # carries (exact -- see the module docstring).
            free = server.disk_free
            dep = (now if now > free else free) + att[8]
            server.disk_free = dep
            free = server.nic_free
            dep = (dep if dep > free else free) + att[9]
            server.nic_free = dep
            seq += 16
            _push(heap_l, (dep, seq + _K_DONE, server, att))
        elif kind == _K_DONE:
            # done(): the attempt completed (NIC transfer finished).
            server = a
            att = b
            server.outstanding -= 1
            att[3] = True
            if not att[2]:
                rs = att[0]
                if have_brk:
                    b_ = server.brk
                    if b_.state is _CLOSED and not att[4]:
                        # record_success fast path: append to the window.
                        b_._outcomes.append(True)
                    else:
                        b_.record_success(now, att[4])
                if det_buf is not None:
                    det_buf[server.index].append(now - att[5])
                if rs[3]:
                    report.wasted_completions += 1
                else:
                    rs[3] = True
                    server.completions += 1
                    # complete(served=True) + _record_response, inlined.
                    start = rs[1]
                    response = now - start
                    i = int(now / bucket)
                    completed_bl[i] = completed_get(i, 0.0) + 1.0
                    good = qos is None or response <= qos_limit
                    if good:
                        goodput_bl[i] = goodput_get(i, 0.0) + 1.0
                    if start >= t0:
                        responses_append(response)
                        if qos_samples is not None:
                            qos_samples.append(response)
                        if good:
                            good_n += 1
                        if has_metrics:
                            resp_buf.append(response)
                            m_outcomes[0] += 1
        elif kind == _K_ARRIVE:
            # schedule_arrival() then issue(), inlined.
            rate = surge_pms if surge_start <= now < surge_end else base_pms
            seq += 16
            _push(
                heap_l,
                (now + -_log(1.0 - _random()) / rate, seq + _K_ARRIVE,
                 None, None),
            )
            rs = [fast_sample(rng), now, 0, False, False]
            i = int(now / bucket)
            offered_b[i] = offered_get(i, 0.0) + 1.0
            if measuring:
                offered_n += 1
            if retry_budget is not None:
                # note_request(), inlined: min(burst, tokens + ratio).
                tok = retry_budget._tokens + rb_ratio
                retry_budget._tokens = (
                    rb_burst if rb_burst < tok else tok
                )
            if admission is not None:
                # admit(), inlined: token bucket, then the adaptive
                # shed draw -- taken only when shed probability > 0,
                # exactly like AdmissionController.admit.
                if adm_bucket is not None and not adm_bucket.try_acquire(
                    now
                ):
                    overload_report.rate_limited += 1
                    continue  # abandon(): open-loop no-op
                ewma = admission._delay_ewma
                if ewma > adm_threshold:
                    ramp = (ewma - adm_threshold) / adm_threshold
                    p = adm_max_shed if adm_max_shed < ramp else ramp
                    if p > 0.0 and _random() < p:
                        overload_report.shed_admission += 1
                        continue
            if not fused:
                dispatch_request(now, rs)
                continue
            # --- fused dispatch_request + start_attempt, fully
            # inlined for the first attempt of each request (the
            # hot path: ~1.07 attempts per request on the surge
            # bench).  Keep in sync with the closures above, which
            # still serve retries, hedges, probes, detector
            # configs, and round-robin dispatch. ---------------
            least = -1
            ties = None
            blocked = True
            for s in servers_l:
                if have_brk:
                    b_ = s.brk
                    if b_.state is not _CLOSED and not b_.allow(now):
                        continue
                blocked = False
                o = s.outstanding
                if have_cap and o >= queue_cap:
                    continue
                if ties is None or o < least:
                    least = o
                    ties = [s]
                elif o == least:
                    ties.append(s)
            if ties is None:
                if blocked:
                    overload_report.breaker_rejections += 1
                else:
                    overload_report.rejected_queue_full += 1
                fast_fail(now, rs)
                continue
            n = len(ties)
            k = n.bit_length()
            r = _getrandbits(k)
            while r >= n:
                r = _getrandbits(k)
            server = ties[r]
            rs[2] = 1
            d = rs[0]
            s_out = server.outstanding
            if brownout is not None and s_out >= brownout_enter:
                c_cpu = d[0] * brownout_factor
                c_mem = d[1] * brownout_factor
                c_ios = d[2] * brownout_factor
                c_bytes = d[3] * brownout_factor
                c_net = d[4] * brownout_factor
                overload_report.brownout_requests += 1
            else:
                c_cpu = d[0]
                c_mem = d[1]
                c_ios = d[2]
                c_bytes = d[3]
                c_net = d[4]
            probe = (
                have_brk
                and server.brk.state is _HALF_OPEN
                and server.brk.note_dispatch(now)
            )
            server.outstanding = s_out + 1
            cpu_ms = c_cpu * cpu_factor
            mem_ms = c_mem / mem_div
            disk_ms = (
                c_ios * (disk_write_lat if d[5] else disk_read_lat)
                + c_bytes / disk_denom
            )
            net_ms = nic_overhead + c_net / nic_denom
            if drift is not None:
                lane = drift_cpu[server.index]
                if lane is not None:
                    cpu_ms *= drift_scale(lane, now)
                lane = drift_flash[server.index]
                if lane is not None:
                    disk_ms *= drift_scale(lane, now)
                lane = drift_nic[server.index]
                if lane is not None:
                    net_ms *= drift_scale(lane, now)
            par = d[6]
            slices = par if par < cpu_k else cpu_k
            floor_ = cpu_ms + mem_ms + disk_ms + net_ms
            att = [
                rs, server, False, False, probe, now, fused_timeout,
                mem_ms, disk_ms, net_ms, floor_, slices, False, False, 1,
            ]
            svc = cpu_ms if slices == 1 else cpu_ms / slices
            if server.cpu_busy + slices <= cpu_k:
                att[12] = True
                if admission is not None:
                    admission._delay_ewma *= adm_1ma
                if deadline_gate and floor_ > fused_timeout:
                    att[2] = True
                    overload_report.shed_deadline += 1
                    server.outstanding -= 1
                    if have_brk:
                        server.brk.record_failure(now, probe)
                    retry_or_give_up(now, rs)
                else:
                    att[13] = True
                    att[14] = slices
                    server.cpu_busy += slices
                    seq += 16
                    _push(
                        heap_l, (now + svc, seq, server, att)
                    )
            else:
                for _ in range(slices):
                    if server.cpu_busy < cpu_k:
                        if cpu_gate(now, att):
                            server.cpu_busy += 1
                            seq += 16
                            _push(
                                heap_l,
                                (now + svc, seq, server, att),
                            )
                    else:
                        server.cpu_q.append((svc, att))
            if retry is not None:
                seq += 16
                _push(
                    heap_l,
                    (now + fused_timeout, seq + _K_TIMEOUT, att, None),
                )
                if hedge_after is not None:
                    seq += 16
                    _push(
                        heap_l,
                        (now + hedge_after, seq + _K_HEDGE, att, None),
                    )
        elif kind == _K_TIMEOUT:
            att = a
            # att[3] first: nearly every timeout is stale (the attempt
            # already completed), and that read short-circuits the rest.
            if not (att[3] or att[2] or att[0][3]):
                rs = att[0]
                att[2] = True
                report.timeouts += 1
                if det_buf is not None:
                    # A timeout is a floor on the true latency.
                    det_buf[att[1].index].append(att[6])
                if have_brk:
                    att[1].brk.record_failure(now, att[4])
                retry_or_give_up(now, rs)
        elif kind == _K_HEDGE:
            att = a
            rs = att[0]
            if not (
                rs[3] or att[3] or att[2] or rs[4]
            ):
                server = att[1]
                others = [
                    s for s in servers if s is not server and allowed(now, s)
                ] or [s for s in servers if allowed(now, s)]
                if not others:
                    report.hedges_dropped += 1
                else:
                    rs[4] = True
                    rs[2] += 1
                    report.hedges += 1
                    target = pick(others)
                    if (
                        detector is not None
                        and (detector.ejected_count or detector.drained_count)
                        and not detector.routable(target.index)
                    ):
                        routable = [
                            s for s in others if detector.routable(s.index)
                        ]
                        if routable:
                            target = min(
                                routable,
                                key=lambda s: (s.outstanding, s.index),
                            )
                            report.hedge_redirects += 1
                    start_attempt(now, rs, target, True)
        elif kind == _K_BACKOFF:
            dispatch_request(now, a)
        elif kind == _K_TICK:
            if not st.done:
                flush_detector()
                for change in detector.evaluate(now):
                    if change.reason == "readmitted" and breakers is not None:
                        breakers[change.server].reset(now)
                push(now + eval_interval, _K_TICK, None, None)
        elif kind == _K_BEGIN:
            measuring = True
            st.measuring = True
        else:  # _K_END
            st.done = True
            break

    st.offered += offered_n
    st.good += good_n
    if not st.done:
        raise RuntimeError("cluster simulation ended before measurement")

    # --- finalization (mirrors the scalar path) -----------------------
    failslow_report: Optional[FailSlowReport] = None
    if detector is not None:
        flush_detector()
        failslow_report = detector.finalize(now)
    if csim._failslow is not None:
        if failslow_report is None:
            failslow_report = FailSlowReport()
        failslow_report.drifting_servers = csim._failslow.drifting_servers
    window_s = max(t1 - t0, 1e-9) / 1000.0
    throughput = len(responses) / window_s
    if metrics is not None:
        if resp_buf:
            metrics.histogram("cluster.response_ms").record_many(resp_buf)
        if m_outcomes[0]:
            metrics.counter("cluster.requests", outcome="served").inc(
                m_outcomes[0]
            )
        if m_outcomes[1]:
            metrics.counter("cluster.requests", outcome="gave_up").inc(
                m_outcomes[1]
            )
        metrics.counter("cluster.timeouts").inc(report.timeouts)
        metrics.counter("cluster.retries").inc(report.retries)
        metrics.counter("cluster.hedges").inc(report.hedges)
        metrics.counter("cluster.gave_up").inc(report.gave_up)
        metrics.counter("cluster.lost_in_flight").inc(report.lost_in_flight)
        metrics.gauge("cluster.throughput_rps").set(throughput)
        if failslow_report is not None:
            metrics.counter("cluster.failslow.ejections").inc(
                failslow_report.ejections
            )
            metrics.counter("cluster.failslow.readmissions").inc(
                failslow_report.readmissions
            )
            metrics.counter("cluster.failslow.probes").inc(
                failslow_report.probes
            )
        for server in servers:
            metrics.gauge(
                "cluster.completions", server=server.index
            ).set(server.completions)
            cache = getattr(disk_models[server.index], "cache", None)
            if cache is not None:  # pragma: no cover - excluded by support
                cache.export_metrics(metrics, server=server.index)
    attach_report = retry is not None or policy is not None
    return ClusterResult(
        servers=nservers,
        throughput_rps=throughput,
        mean_response_ms=(
            sum(responses) / len(responses) if responses else 0.0
        ),
        qos_percentile_ms=(
            qos.percentile_ms() if qos and qos.count else 0.0
        ),
        qos_met=qos.satisfied() if qos else True,
        per_server_rps=throughput / nservers,
        server_completions=[s.completions for s in servers],
        qos_violation_rate=qos.violation_rate() if qos else 0.0,
        availability=1.0,
        fault_report=report if attach_report else None,
        offered_rps=st.offered / window_s,
        goodput_rps=st.good / window_s,
        p99_ms=(
            qos.percentile_ms(0.99) if qos and qos.count else 0.0
        ),
        overload_report=overload_report,
        failslow_report=failslow_report,
        recovery_report=None,
    )
