"""Sharded parallel DES with vectorized event cohorts and a calibrated
analytic fast path.

The paper's ensemble-scale claims (sections 3.5-3.6) need whole-rack
simulations; the ROADMAP's raw-speed north star is a parallel &
vectorized engine at >=5M events/sec.  This module supplies both layers:

**Shard decomposition.**  A cluster is partitioned along its
``FailureDomain``/rack boundaries into *cells* -- one cell per enclosure
group -- that share no simulated resources, so each cell is an
independent DES advanced on its own clock.  Crucially, the decomposition
is FIXED by the scenario (cell count and per-cell seeds never depend on
the worker count): ``shards=N`` only chooses how many OS processes the
cells are spread over, which is why sharded runs are bit-stable with
respect to shard count -- the per-cell results are identical streams
folded in cell order, digest-asserted serial vs ``--shards N`` in tests,
CI, and ``repro-bench``.  Synchronization happens only at the balancer
boundary: offered load is split across cells when the run starts and
per-cell telemetry folds back through
:func:`repro.perf.parallel.merge_telemetry` when it ends; within a cell,
time advances in conservative windows (no event in window ``w`` can
observe state later than ``w``'s end, because cells are closed systems).

**Vectorized event cohorts.**  Inside a cell, the rack engine drains
same-timestamp/same-kind event batches -- a window's arrivals, its
service completions, its deadline-timer pops -- through the numpy
queueing kernels of :mod:`repro.perf.kernels` scheduled as cohorts on a
:class:`repro.simulator.engine.CohortSimulation`, instead of per-event
Python dispatch.  Variates are generated once per cell with the
stream-identical samplers of :mod:`repro.perf.variates` and shared by
every execution mode, so the vectorized engine is BITWISE identical to
the event-at-a-time oracle (``mode="scalar"``), not statistically close:
the Lindley recursion is evaluated in the (T, M) form both sides, the
drop discipline under ``queue_cap`` is the same fixed point, and
responses are assembled in the same per-server arrival order.

**Calibrated hybrid fast path.**  ``mode="hybrid"`` classifies each
conservative window: steady-state windows (no surge, no active
fail-slow drift, small backlog, utilization under
:data:`STEADY_RHO_MAX`) are routed through the DES-validated M/M/1(/K)
closed forms of :mod:`repro.simulator.queueing` -- a deterministic
quantile-ladder sample stands in for the window's responses -- and the
engine drops into event-at-a-time mode only around transients.  The
first steady window of every cell is a *calibration window*: it runs
both ways, the relative error of the analytic mean against the full-DES
mean is recorded (telemetry gauges ``sharded.calibration.*``), and the
DES numbers win.  The documented accuracy envelope is
:data:`HYBRID_TOLERANCE` on p50/p99 against full DES; forcing full DES
is just ``mode="cohort"`` (vectorized) or ``mode="scalar"``.

:class:`ShardedClusterSimulator` applies the same decomposition to the
full-fidelity :class:`repro.cluster.balancer.ClusterSimulator` --
EXT-10-style surge and EXT-12-style fail-slow scenarios shard along
enclosure boundaries with scripted faults remapped into cell-local
indices -- streaming per-cell payloads through
:func:`repro.perf.parallel.pmap_iter` so RSS stays bounded at any shard
count.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.kernels import (
    cohort_departures,
    cohort_departures_capped,
)
from repro.perf.parallel import default_jobs, merge_telemetry, pmap_iter
from repro.perf.variates import exponential_block
from repro.simulator.engine import CohortSimulation, Simulation
from repro.simulator.queueing import (
    mm1k_blocking_probability,
    mm1k_mean_wait,
)
from repro.simulator.telemetry import LatencyHistogram

#: Documented accuracy envelope of the hybrid fast path: relative error
#: of hybrid p50/p99 against full DES on scenarios whose steady windows
#: dominate.  Asserted in ``tests/perf/test_sharded.py`` and the
#: ``sharded_engine`` bench section; recorded as the telemetry gauge
#: ``sharded.calibration.tolerance`` on every hybrid run.
HYBRID_TOLERANCE = 0.15

#: A window whose utilization is at or above this is never analytic --
#: the exponential-sojourn forms degrade near saturation and transients
#: drain slowly.
STEADY_RHO_MAX = 0.9

#: Maximum per-server backlog (jobs still in system at the window
#: boundary) for the next window to qualify as steady.
STEADY_BACKLOG_MAX = 8

#: Sojourns pooled (across a cell's servers and successive steady
#: windows) before the calibration error is scored.  Sojourn samples
#: autocorrelate within busy periods, so a single window's mean is far
#: noisier than its raw count suggests; calibration keeps running the
#: DES kernels until this many samples have accumulated.  A cell whose
#: scored error still exceeds :data:`HYBRID_TOLERANCE` declines the
#: analytic path outright and stays on the DES kernels.
CALIBRATION_MIN_SAMPLES = 6_000

_MASK64 = (1 << 64) - 1

_MODES = ("scalar", "cohort", "hybrid")


def _splitmix64(value: int) -> int:
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def derive_seed(seed: int, *parts: int) -> int:
    """Deterministic per-cell/per-stream seed, independent of shard
    count (the decomposition key of the whole module)."""
    value = _splitmix64(seed & _MASK64)
    for part in parts:
        value = _splitmix64(value ^ _splitmix64(part & _MASK64))
    return value


# ---------------------------------------------------------------------------
# Rack-cell scenario (the raw-speed engine repro-bench gates)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RackScenario:
    """One rack of identical M/M/1-style serving queues, cell-sharded.

    Each cell models one enclosure (``servers_per_cell`` servers, the
    :class:`~repro.cluster.balancer` ``FailureDomain`` unit); cells are
    independent, so the scenario shards perfectly.  ``rate_rps`` is the
    *per-server* offered rate; ``surge`` is EXT-10 shaped (multiplier,
    start_ms, end_ms) applied to every server, ``failslow`` is EXT-12
    shaped (cell, server, service multiplier, start_ms, end_ms) applied
    to one server's service times.  ``queue_cap`` bounds the number in
    system per server (M/M/1/K drop discipline); ``deadline_ms`` arms a
    per-request deadline timer (the timer-churn event pattern).
    """

    servers_per_cell: int = 8
    cells: int = 4
    rate_rps: float = 1500.0
    service_ms: float = 0.4
    duration_ms: float = 2000.0
    window_ms: float = 100.0
    deadline_ms: float = 8.0
    seed: int = 1
    surge: Optional[Tuple[float, float, float]] = None
    failslow: Optional[Tuple[int, int, float, float, float]] = None
    queue_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.servers_per_cell < 1 or self.cells < 1:
            raise ValueError("need at least one server and one cell")
        if self.rate_rps <= 0 or self.service_ms <= 0:
            raise ValueError("rate and service time must be positive")
        if self.duration_ms <= 0 or self.window_ms <= 0:
            raise ValueError("duration and window must be positive")
        if self.window_ms > self.duration_ms:
            raise ValueError("window must not exceed the duration")
        if self.deadline_ms <= 0:
            raise ValueError("deadline must be positive")
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError("queue_cap must be positive (or None)")
        if self.surge is not None:
            mult, start, end = self.surge
            if mult < 1.0 or start < 0 or end < start:
                raise ValueError("surge must be (mult>=1, start, end>=start)")
        if self.failslow is not None:
            cell, server, mult, start, end = self.failslow
            if not (0 <= cell < self.cells):
                raise ValueError("failslow cell out of range")
            if not (0 <= server < self.servers_per_cell):
                raise ValueError("failslow server out of range")
            if mult < 1.0 or start < 0 or end < start:
                raise ValueError("failslow must be (mult>=1, start, end>=start)")

    @classmethod
    def from_platform(cls, platform, workload, utilization: float = 0.6, **kwargs):
        """Derive ``service_ms``/``rate_rps`` from a real platform and
        workload via :func:`repro.simulator.server_sim.mean_service_demand_ms`,
        targeting the given per-server utilization."""
        from repro.simulator.server_sim import mean_service_demand_ms

        if not 0 < utilization < 1:
            raise ValueError("utilization must be in (0, 1)")
        service_ms = mean_service_demand_ms(platform, workload)
        rate_rps = utilization / service_ms * 1000.0
        return cls(service_ms=service_ms, rate_rps=rate_rps, **kwargs)

    def rate_per_ms(self, now_ms: float) -> float:
        """Per-server offered rate at ``now_ms`` (surge applied)."""
        rate = self.rate_rps / 1000.0
        if self.surge is not None:
            mult, start, end = self.surge
            if start <= now_ms < end:
                rate *= mult
        return rate

    def surge_active(self, start_ms: float, end_ms: float) -> bool:
        if self.surge is None:
            return False
        _, s_start, s_end = self.surge
        return s_start < end_ms and start_ms < s_end

    def failslow_active(self, cell: int, start_ms: float, end_ms: float) -> bool:
        if self.failslow is None or self.failslow[0] != cell:
            return False
        _, _, _, f_start, f_end = self.failslow
        return f_start < end_ms and start_ms < f_end


@dataclass
class CellOutcome:
    """Raw per-cell output, identical across execution modes (except
    hybrid, whose analytic windows synthesize responses)."""

    cell: int
    responses: List[np.ndarray]
    drops: List[int]
    violations: int
    windows_vector: int = 0
    windows_scalar: int = 0
    windows_analytic: int = 0
    calibration_error: float = 0.0

    @property
    def admitted(self) -> int:
        return sum(len(r) for r in self.responses)

    @property
    def events(self) -> int:
        # Three logical events per admitted request (arrival, service
        # completion, deadline-timer resolution), one per drop.
        return 3 * self.admitted + sum(self.drops)

    def digest(self) -> str:
        """SHA-256 over the behavioural payload, in canonical (server,
        arrival) order -- the equality sharded-vs-serial asserts."""
        hasher = hashlib.sha256()
        hasher.update(str(self.cell).encode())
        for server, resp in enumerate(self.responses):
            hasher.update(str((server, len(resp), self.drops[server])).encode())
            hasher.update(np.ascontiguousarray(resp, dtype=np.float64).tobytes())
        hasher.update(str(self.violations).encode())
        return hasher.hexdigest()


def _rate_segments(scenario: RackScenario) -> List[Tuple[float, float]]:
    """``(end_ms, rate_per_ms)`` pieces covering ``[0, duration)`` --
    the piecewise-constant offered rate with the surge window applied."""
    duration = scenario.duration_ms
    base = scenario.rate_rps / 1000.0
    if scenario.surge is None:
        return [(duration, base)]
    mult, start, end = scenario.surge
    segments: List[Tuple[float, float]] = []
    cursor = 0.0
    for boundary, rate in (
        (min(start, duration), base),
        (min(end, duration), base * mult),
        (duration, base),
    ):
        if boundary > cursor:
            segments.append((boundary, rate))
            cursor = boundary
    return segments


def _cell_inputs(
    scenario: RackScenario, cell: int
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Arrival times and unit-exponential service draws for one cell.

    Generated once, per the shared-variate contract of
    :mod:`repro.perf.variates`: every execution mode of this cell
    consumes exactly these arrays, so cross-mode equality never depends
    on how the draws were produced.  Seeds derive from (scenario seed,
    cell, server, stream) only -- never the shard count.

    Arrival generation walks the piecewise-constant rate segments in
    blocks: inter-arrivals are drawn in bulk (:func:`exponential_block`)
    and accumulated with a carry-seeded ``np.add.accumulate`` -- the
    exact left fold a scalar ``t += delta`` loop performs -- then cut at
    the segment boundary.  A draw that crosses the boundary keeps the
    rate it started under, identical to per-draw rate lookup; the
    block's unused tail draws are discarded (each server has a dedicated
    generator, so over-drawing is deterministic and affects nothing
    else).
    """
    arrivals: List[np.ndarray] = []
    units: List[np.ndarray] = []
    duration = scenario.duration_ms
    segments = _rate_segments(scenario)
    for server in range(scenario.servers_per_cell):
        rng_arr = random.Random(derive_seed(scenario.seed, cell, server, 0))
        chunks: List[np.ndarray] = []
        count = 0
        now = 0.0
        for seg_end, rate in segments:
            while now < seg_end:
                expect = (seg_end - now) * rate
                block = int(expect + 6.0 * math.sqrt(expect + 1.0)) + 16
                deltas = exponential_block(rng_arr, block, rate)
                seeded = np.empty(block + 1, dtype=np.float64)
                seeded[0] = now
                seeded[1:] = deltas
                cum = np.add.accumulate(seeded)[1:]
                inside = int(np.searchsorted(cum, seg_end, side="left"))
                if inside:
                    chunks.append(cum[:inside])
                    count += inside
                if inside == block:
                    # No boundary crossing in this block: keep drawing.
                    now = float(cum[-1])
                    continue
                # First draw at or past the boundary: it keeps this
                # segment's rate but belongs to the next segment(s).
                now = float(cum[inside])
                if now < duration:
                    chunks.append(cum[inside : inside + 1])
                    count += 1
        arr = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=np.float64)
        )
        rng_srv = random.Random(derive_seed(scenario.seed, cell, server, 1))
        unit = exponential_block(rng_srv, count, 1.0)
        arrivals.append(arr)
        units.append(unit)
    return arrivals, units


def _service_multiplier(
    scenario: RackScenario, cell: int, server: int, arrival_ms: float
) -> float:
    if scenario.failslow is None:
        return 1.0
    f_cell, f_server, mult, start, end = scenario.failslow
    if f_cell == cell and f_server == server and start <= arrival_ms < end:
        return mult
    return 1.0


def _service_multipliers(
    scenario: RackScenario, cell: int, server: int, arrivals: np.ndarray
) -> Optional[np.ndarray]:
    """Vectorized :func:`_service_multiplier` (None = all ones)."""
    if scenario.failslow is None:
        return None
    f_cell, f_server, mult, start, end = scenario.failslow
    if f_cell != cell or f_server != server:
        return None
    return np.where((arrivals >= start) & (arrivals < end), mult, 1.0)


def _run_cell_scalar(scenario: RackScenario, cell: int) -> CellOutcome:
    """Event-at-a-time oracle: a full DES over individually scheduled
    arrival, completion, and deadline-timer events.

    State updates use the identical (T, M) Lindley form and drop
    discipline as the cohort kernels, on the identical variate arrays,
    so the vectorized engine must reproduce this cell bit-for-bit.
    """
    arrivals, units = _cell_inputs(scenario, cell)
    sim = Simulation()
    n_servers = scenario.servers_per_cell
    service_ms = scenario.service_ms
    deadline = scenario.deadline_ms
    cap = scenario.queue_cap
    responses: List[List[float]] = [[] for _ in range(n_servers)]
    drops = [0] * n_servers
    violations = [0]
    t_cum = [0.0] * n_servers
    m_max = [-math.inf] * n_servers
    pendings: List[List[float]] = [[] for _ in range(n_servers)]
    index = [0] * n_servers

    def _noop() -> None:
        return None

    def make_arrival(server: int):
        arr = arrivals[server]
        unit = units[server]
        pend = pendings[server]
        resp = responses[server]

        def on_arrival() -> None:
            k = index[server]
            index[server] = k + 1
            arrival = arr[k]
            if k + 1 < len(arr):
                sim.schedule_at(arr[k + 1], on_arrival)
            while pend and pend[0] <= arrival:
                del pend[0]
            if cap is not None and len(pend) >= cap:
                drops[server] += 1
                return
            mult = _service_multiplier(scenario, cell, server, arrival)
            service = (unit[k] * service_ms) * mult
            t_prev = t_cum[server]
            total = t_prev + service
            t_cum[server] = total
            slack = arrival - t_prev
            if slack > m_max[server]:
                m_max[server] = slack
            depart = total + m_max[server]
            pend.append(depart)
            response = depart - arrival
            timer = sim.schedule_timer(
                max(0.0, arrival + deadline - sim.now), _noop
            )

            def on_complete() -> None:
                resp.append(response)
                if response <= deadline:
                    sim.cancel(timer)
                else:
                    violations[0] += 1

            sim.schedule_at(depart, on_complete)

        return on_arrival

    for server in range(n_servers):
        if len(arrivals[server]):
            sim.schedule_at(arrivals[server][0], make_arrival(server))
    sim.run()
    return CellOutcome(
        cell=cell,
        responses=[np.asarray(r, dtype=np.float64) for r in responses],
        drops=drops,
        violations=violations[0],
        windows_scalar=int(math.ceil(scenario.duration_ms / scenario.window_ms)),
    )


class _ServerState:
    """Per-server queue state shared by the windowed modes."""

    __slots__ = ("t_cum", "m_max", "pending", "chunks", "drops", "violations")

    def __init__(self) -> None:
        self.t_cum = 0.0
        self.m_max = -math.inf
        self.pending = np.empty(0, dtype=np.float64)
        self.chunks: List[np.ndarray] = []
        self.drops = 0
        self.violations = 0

    def carry(self):
        return (self.t_cum, self.m_max, self.pending)

    def set_carry(self, carry) -> None:
        self.t_cum, self.m_max, self.pending = carry

    def reset(self) -> None:
        self.t_cum = 0.0
        self.m_max = -math.inf
        self.pending = np.empty(0, dtype=np.float64)

    def backlog(self, boundary_ms: float) -> int:
        return int(np.count_nonzero(self.pending > boundary_ms))


def _window_scalar(
    state: _ServerState,
    arrivals: np.ndarray,
    units: np.ndarray,
    multipliers: Optional[np.ndarray],
    service_ms: float,
    cap: Optional[int],
) -> np.ndarray:
    """Event-at-a-time processing of one window (hybrid transient mode
    and the fallback for drop-heavy capped windows): same updates as
    the oracle, expressed over the window slice."""
    pend: List[float] = list(state.pending)
    out: List[float] = []
    t_cum = state.t_cum
    m_max = state.m_max
    for k in range(len(arrivals)):
        arrival = arrivals[k]
        while pend and pend[0] <= arrival:
            del pend[0]
        if cap is not None and len(pend) >= cap:
            state.drops += 1
            continue
        mult = 1.0 if multipliers is None else multipliers[k]
        service = (units[k] * service_ms) * mult
        t_prev = t_cum
        t_cum = t_prev + service
        slack = arrival - t_prev
        if slack > m_max:
            m_max = slack
        depart = t_cum + m_max
        pend.append(depart)
        out.append(depart - arrival)
    state.t_cum = t_cum
    state.m_max = m_max
    state.pending = np.asarray(pend, dtype=np.float64)
    return np.asarray(out, dtype=np.float64)


def _window_vector(
    state: _ServerState,
    arrivals: np.ndarray,
    units: np.ndarray,
    multipliers: Optional[np.ndarray],
    service_ms: float,
    cap: Optional[int],
) -> np.ndarray:
    """Cohort-kernel processing of one window; bit-identical to
    :func:`_window_scalar` (falls back to it when the capped kernel
    reports a drop storm)."""
    services = units * service_ms
    if multipliers is not None:
        services = services * multipliers
    if cap is None:
        departures, carry = cohort_departures(arrivals, services, state.carry())
        state.set_carry(carry)
        return departures - arrivals
    outcome = cohort_departures_capped(arrivals, services, cap, state.carry())
    if outcome is None:
        return _window_scalar(state, arrivals, units, multipliers, service_ms, cap)
    departures, admitted, carry = outcome
    state.set_carry(carry)
    state.drops += int(len(arrivals) - np.count_nonzero(admitted))
    return departures[admitted] - arrivals[admitted]


def _analytic_window(
    state: _ServerState,
    count: int,
    rate_per_ms: float,
    service_ms: float,
    cap: Optional[int],
) -> Tuple[np.ndarray, int]:
    """Closed-form stand-in for a steady window: a deterministic
    quantile-ladder sample of the M/M/1(/K) sojourn distribution with
    the window's actual arrival count.  Returns (synthetic responses,
    analytic drops); resets the queue carry (steady windows are treated
    as regeneration points -- the calibrated approximation)."""
    rho = rate_per_ms * service_ms
    analytic_drops = 0
    if cap is not None:
        p_block = mm1k_blocking_probability(rho, cap)
        analytic_drops = int(count * p_block + 0.5)
        mean_sojourn = mm1k_mean_wait(service_ms, rho, cap) + service_ms
        count -= analytic_drops
    else:
        mean_sojourn = service_ms / (1.0 - rho)
    state.reset()
    state.drops += analytic_drops
    if count <= 0:
        return np.empty(0, dtype=np.float64), analytic_drops
    quantiles = (np.arange(count) + 0.5) / count
    return -mean_sojourn * np.log1p(-quantiles), analytic_drops


def _run_cell_windowed(
    scenario: RackScenario, cell: int, hybrid: bool
) -> CellOutcome:
    """Conservative-window cell engine: vectorized event cohorts, with
    the calibrated analytic fast path when ``hybrid``.

    The cell's timeline is cut into windows of ``window_ms``; at each
    boundary an *arrivals* cohort (one payload per server, merged into a
    single dispatch by :class:`CohortSimulation`) drains the window
    through the queueing kernels, then schedules the *service
    completions* cohort (response recording) which schedules the *timer
    pops* cohort (deadline accounting) -- three same-timestamp cohorts
    replacing ``3 * n`` per-event Python callbacks.
    """
    arrivals, units = _cell_inputs(scenario, cell)
    service_ms = scenario.service_ms
    cap = scenario.queue_cap
    deadline = scenario.deadline_ms
    n_servers = scenario.servers_per_cell
    n_windows = int(math.ceil(scenario.duration_ms / scenario.window_ms))
    edges = np.minimum(
        (np.arange(n_windows + 1)) * scenario.window_ms, scenario.duration_ms
    )
    bounds = [np.searchsorted(arrivals[s], edges) for s in range(n_servers)]
    states = [_ServerState() for _ in range(n_servers)]
    outcome = CellOutcome(
        cell=cell, responses=[], drops=[0] * n_servers, violations=0
    )
    base_rate = scenario.rate_rps / 1000.0
    rho_base = base_rate * service_ms
    calibrated = [False]
    analytic_ok = [True]
    calib_sum = [0.0, 0.0]  # pooled (sum of sojourns, count) across servers

    sim = CohortSimulation()

    def classify(window: int, start_ms: float, end_ms: float) -> bool:
        """True when every server of this window may go analytic."""
        if not hybrid:
            return False
        if window == 0:
            # The first window starts from an empty system: it is the
            # warmup transient by construction, never steady state.
            return False
        if scenario.surge_active(start_ms, end_ms):
            return False
        if scenario.failslow_active(cell, start_ms, end_ms):
            return False
        if rho_base >= STEADY_RHO_MAX:
            return False
        return all(
            state.backlog(start_ms) <= STEADY_BACKLOG_MAX for state in states
        )

    def handle(kind: str, payloads: List[object]) -> None:
        if kind == "arrivals":
            for payload in payloads:
                server, window = payload
                lo, hi = bounds[server][window], bounds[server][window + 1]
                arr = arrivals[server][lo:hi]
                unit = units[server][lo:hi]
                mult = _service_multipliers(scenario, cell, server, arr)
                state = states[server]
                steady = classify(window, edges[window], edges[window + 1])
                if steady and calibrated[0] and analytic_ok[0]:
                    resp, _ = _analytic_window(
                        state, len(arr), base_rate, service_ms, cap
                    )
                    if server == 0:
                        outcome.windows_analytic += 1
                else:
                    resp = _window_vector(
                        state, arr, unit, mult, service_ms, cap
                    )
                    if steady and not calibrated[0]:
                        # Calibration windows: every server still runs
                        # the DES kernels while sojourns pool across
                        # the whole cell and successive steady windows
                        # (a single window's mean is too noisy --
                        # sojourns autocorrelate within busy periods).
                        # Once enough samples accumulate, the pooled
                        # mean is scored against the closed form and
                        # later steady windows go analytic.
                        calib_sum[0] += float(resp.sum())
                        calib_sum[1] += float(len(resp))
                        if (
                            server == n_servers - 1
                            and calib_sum[1] >= CALIBRATION_MIN_SAMPLES
                        ):
                            if cap is not None:
                                analytic_mean = (
                                    mm1k_mean_wait(service_ms, rho_base, cap)
                                    + service_ms
                                )
                            else:
                                analytic_mean = service_ms / (1.0 - rho_base)
                            if calib_sum[0] > 0:
                                des_mean = calib_sum[0] / calib_sum[1]
                                outcome.calibration_error = abs(
                                    analytic_mean - des_mean
                                ) / des_mean
                            # A cell whose closed form disagrees with
                            # its own DES beyond the tolerance never
                            # goes analytic: the fast path is an
                            # optimization, not an obligation.
                            analytic_ok[0] = (
                                outcome.calibration_error <= HYBRID_TOLERANCE
                            )
                            calibrated[0] = True
                    if server == 0:
                        outcome.windows_vector += 1
                sim.schedule_cohort(0.0, "completions", (server, resp))
        elif kind == "completions":
            for payload in payloads:
                server, resp = payload
                states[server].chunks.append(resp)
                pops = int(np.count_nonzero(resp > deadline))
                sim.schedule_cohort(0.0, "timer_pops", pops)
        else:  # timer_pops
            outcome.violations += sum(payloads)

    sim.set_cohort_handler(handle)
    for window in range(n_windows):
        for server in range(n_servers):
            sim.schedule_cohort(float(edges[window + 1]), "arrivals", (server, window))
    sim.run()

    for server, state in enumerate(states):
        if state.chunks:
            outcome.responses.append(np.concatenate(state.chunks))
        else:
            outcome.responses.append(np.empty(0, dtype=np.float64))
        outcome.drops[server] = state.drops
    return outcome


def _run_rack_cell(task: Tuple[RackScenario, int, str]) -> CellOutcome:
    """Module-level cell worker (picklable for :func:`pmap_iter`)."""
    scenario, cell, mode = task
    if mode == "scalar":
        return _run_cell_scalar(scenario, cell)
    return _run_cell_windowed(scenario, cell, hybrid=(mode == "hybrid"))


@dataclass
class RackResult:
    """Folded outcome of one sharded rack run."""

    mode: str
    cells: int
    shards: int
    requests: int
    admitted: int
    drops: int
    violations: int
    events: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    windows_vector: int
    windows_scalar: int
    windows_analytic: int
    calibration_error: float
    digest: str
    histogram: LatencyHistogram = field(repr=False)


def run_rack(
    scenario: RackScenario,
    mode: str = "cohort",
    shards: int = 1,
    metrics=None,
) -> RackResult:
    """Run every cell of ``scenario`` under ``mode`` across ``shards``
    worker processes and fold the results in cell order.

    ``shards`` only partitions work (``shards=0`` means one per core);
    the payload digest is identical for every value -- the bit-stability
    contract.  Per-cell latency histograms fold losslessly through
    :func:`merge_telemetry`, streamed via :func:`pmap_iter` so at most a
    constant number of cell payloads is ever in flight.  With a
    ``metrics`` registry, the window classifier's decisions and the
    hybrid calibration error/tolerance are recorded as telemetry.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if shards == 0:
        shards = default_jobs()
    if shards < 1:
        raise ValueError("shards must be >= 1 (or 0 for one per core)")
    tasks = [(scenario, cell, mode) for cell in range(scenario.cells)]
    hasher = hashlib.sha256()
    histogram: Optional[LatencyHistogram] = None
    requests = admitted = drops = violations = events = 0
    windows = [0, 0, 0]
    calibration = 0.0
    for outcome in pmap_iter(_run_rack_cell, tasks, jobs=min(shards, len(tasks))):
        hasher.update(outcome.digest().encode())
        cell_hist = LatencyHistogram()
        for resp in outcome.responses:
            cell_hist.record_many(resp)
        histogram = merge_telemetry([histogram, cell_hist])
        admitted += outcome.admitted
        drops += sum(outcome.drops)
        violations += outcome.violations
        events += outcome.events
        windows[0] += outcome.windows_vector
        windows[1] += outcome.windows_scalar
        windows[2] += outcome.windows_analytic
        calibration = max(calibration, outcome.calibration_error)
    requests = admitted + drops
    assert histogram is not None
    result = RackResult(
        mode=mode,
        cells=scenario.cells,
        shards=shards,
        requests=requests,
        admitted=admitted,
        drops=drops,
        violations=violations,
        events=events,
        mean_ms=histogram.mean_ms,
        p50_ms=histogram.percentile_ms(0.50, default=0.0),
        p99_ms=histogram.percentile_ms(0.99, default=0.0),
        windows_vector=windows[0],
        windows_scalar=windows[1],
        windows_analytic=windows[2],
        calibration_error=calibration,
        digest=hasher.hexdigest(),
        histogram=histogram,
    )
    if metrics is not None:
        metrics.counter("sharded.requests").inc(requests)
        metrics.counter("sharded.drops").inc(drops)
        metrics.counter("sharded.windows.vector").inc(windows[0])
        metrics.counter("sharded.windows.scalar").inc(windows[1])
        metrics.counter("sharded.windows.analytic").inc(windows[2])
        metrics.gauge("sharded.calibration.error").set(calibration)
        metrics.gauge("sharded.calibration.tolerance").set(HYBRID_TOLERANCE)
        metrics.histogram("sharded.response_ms").merge(histogram)
    return result


# ---------------------------------------------------------------------------
# Full-fidelity sharded ClusterSimulator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ClusterCellSpec:
    """Picklable recipe for one cell's ClusterSimulator (workloads hold
    closures, so the *factory* travels, not the instance)."""

    cell: int
    first_server: int
    servers: int
    workload_factory: object
    platform: object
    clients_per_server: int
    dispatch: object
    seed: int
    warmup_requests: int
    measure_requests: int
    enclosure_size: int
    arrivals: object
    warmup_ms: float
    measure_ms: float
    retry: object
    overload: object
    failslow: object
    failslow_detection: object
    failures: object
    recoveries: object


def _run_cluster_cell(spec: _ClusterCellSpec):
    """Module-level cell worker: build and run one cell's cluster."""
    from repro.cluster.balancer import ClusterSimulator
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    simulator = ClusterSimulator(
        spec.platform,
        spec.workload_factory(),
        servers=spec.servers,
        clients_per_server=spec.clients_per_server,
        dispatch=spec.dispatch,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
        enclosure_size=spec.enclosure_size,
        arrivals=spec.arrivals,
        warmup_ms=spec.warmup_ms,
        measure_ms=spec.measure_ms,
        retry=spec.retry,
        overload=spec.overload,
        failslow=spec.failslow,
        failslow_detection=spec.failslow_detection,
        failures=spec.failures,
        recoveries=spec.recoveries,
        metrics=metrics,
    )
    return simulator.run(), metrics


@dataclass
class ShardedClusterResult:
    """Per-cell :class:`ClusterResult` payloads plus merged telemetry."""

    cells: List[object]
    servers: int
    shards: int
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    mean_response_ms: float
    p99_ms: float
    metrics: object = field(repr=False, default=None)

    def digest(self) -> str:
        """SHA-256 over the ordered per-cell stream digests: identical
        for every shard count by construction, asserted in tests/CI."""
        hasher = hashlib.sha256()
        for cell_result in self.cells:
            hasher.update(cell_result.stream_digest().encode())
        return hasher.hexdigest()


class ShardedClusterSimulator:
    """A :class:`~repro.cluster.balancer.ClusterSimulator` partitioned
    along FailureDomain (enclosure) boundaries into independent cells.

    **Shard boundary rules.**  Cells are contiguous groups of whole
    enclosures (``servers`` must divide into ``cells`` groups of a
    multiple of ``enclosure_size``), because the enclosure is the unit
    that shares fate (fans/PSUs) and the balancer's ``FailureDomain``.
    Scripted ``failures``/``recoveries`` and fail-slow injections are
    remapped into cell-local indices.  Cluster-coupling features are
    rejected: ``remote_memory`` (one blade link shared by ALL servers)
    and stochastic ``faults`` (shared-blade blast radius) cannot be
    partitioned without changing semantics.  Dispatch and overload
    protection operate per cell -- the modular-DC model where each rack
    fronts its own balancer; a sharded run is therefore its *own*
    system, compared against itself across shard counts, not against
    the monolithic balancer.

    **Conservative windows.**  Cells share no simulated state, so each
    cell's DES is one maximal conservative window: no event in a cell
    can observe another cell, and synchronization happens only at the
    balancer boundary -- offered load is split when the run starts
    (open-loop rates scale by the cell's server share) and per-cell
    telemetry folds back losslessly when it ends.

    The decomposition is fixed by (scenario, ``cells``): ``shards``
    only chooses process count, so results are bit-stable with respect
    to it (``digest()`` equality, asserted for 1/2/4 shards).
    """

    def __init__(
        self,
        platform,
        workload_factory,
        servers: int,
        clients_per_server: int = 1,
        *,
        cells: Optional[int] = None,
        enclosure_size: Optional[int] = None,
        dispatch=None,
        seed: int = 1,
        warmup_requests: int = 500,
        measure_requests: int = 4000,
        arrivals=None,
        warmup_ms: float = 2000.0,
        measure_ms: float = 20_000.0,
        retry=None,
        overload=None,
        failslow=None,
        failslow_detection=None,
        failures: Optional[Dict[int, float]] = None,
        recoveries: Optional[Dict[int, float]] = None,
        remote_memory=None,
        faults=None,
    ):
        from repro.cluster.balancer import DEFAULT_ENCLOSURE_SIZE, Dispatch

        if remote_memory is not None:
            raise ValueError(
                "remote_memory couples every server through one blade link; "
                "a sharded run cannot partition it -- use ClusterSimulator"
            )
        if faults is not None:
            raise ValueError(
                "stochastic FaultProfile injection draws shared-component "
                "faults across the whole cluster; use scripted failures/"
                "failslow (cell-local) or ClusterSimulator"
            )
        if not callable(workload_factory):
            raise TypeError(
                "workload_factory must be a zero-argument callable (workload "
                "objects hold closures and cannot cross process boundaries)"
            )
        if enclosure_size is None:
            enclosure_size = DEFAULT_ENCLOSURE_SIZE
        if servers < 1 or servers % enclosure_size:
            raise ValueError(
                f"servers ({servers}) must be a positive multiple of the "
                f"enclosure size ({enclosure_size})"
            )
        enclosures = servers // enclosure_size
        if cells is None:
            cells = enclosures
        if cells < 1 or enclosures % cells:
            raise ValueError(
                f"cells ({cells}) must evenly divide the {enclosures} "
                "enclosures (shard boundaries follow FailureDomains)"
            )
        self._platform = platform
        self._workload_factory = workload_factory
        self._servers = servers
        self._cells = cells
        self._cell_servers = servers // cells
        self._enclosure_size = enclosure_size
        self._clients_per_server = clients_per_server
        self._dispatch = Dispatch.LEAST_OUTSTANDING if dispatch is None else dispatch
        self._seed = seed
        self._warmup_requests = warmup_requests
        self._measure_requests = measure_requests
        self._arrivals = arrivals
        self._warmup_ms = warmup_ms
        self._measure_ms = measure_ms
        self._retry = retry
        self._overload = overload
        self._failslow = failslow
        self._failslow_detection = failslow_detection
        self._failures = dict(failures or {})
        self._recoveries = dict(recoveries or {})
        for label, schedule in (("failure", self._failures), ("recovery", self._recoveries)):
            for index in schedule:
                if not 0 <= index < servers:
                    raise ValueError(f"scripted {label} for unknown server {index}")

    @property
    def cells(self) -> int:
        return self._cells

    def _cell_spec(self, cell: int) -> _ClusterCellSpec:
        first = cell * self._cell_servers
        last = first + self._cell_servers
        arrivals = self._arrivals
        if arrivals is not None:
            arrivals = replace(
                arrivals,
                base_rate_rps=arrivals.base_rate_rps
                * (self._cell_servers / self._servers),
            )
        failslow = self._failslow
        if failslow is not None:
            local = [
                replace(injection, server=injection.server - first)
                for injection in failslow.injections
                if first <= injection.server < last
            ]
            failslow = replace(failslow, injections=tuple(local)) if local else None
        failures = {
            index - first: at
            for index, at in self._failures.items()
            if first <= index < last
        }
        recoveries = {
            index - first: at
            for index, at in self._recoveries.items()
            if first <= index < last
        }
        return _ClusterCellSpec(
            cell=cell,
            first_server=first,
            servers=self._cell_servers,
            workload_factory=self._workload_factory,
            platform=self._platform,
            clients_per_server=self._clients_per_server,
            dispatch=self._dispatch,
            seed=derive_seed(self._seed, cell),
            warmup_requests=self._warmup_requests,
            measure_requests=self._measure_requests,
            enclosure_size=self._enclosure_size,
            arrivals=arrivals,
            warmup_ms=self._warmup_ms,
            measure_ms=self._measure_ms,
            retry=self._retry,
            overload=self._overload,
            failslow=failslow,
            failslow_detection=self._failslow_detection,
            failures=failures or None,
            recoveries=recoveries or None,
        )

    def run(self, shards: int = 1) -> ShardedClusterResult:
        """Run all cells across ``shards`` processes (0 = one per core),
        streaming per-cell payloads through :func:`pmap_iter` and
        folding telemetry in cell order."""
        if shards == 0:
            shards = default_jobs()
        if shards < 1:
            raise ValueError("shards must be >= 1 (or 0 for one per core)")
        specs = [self._cell_spec(cell) for cell in range(self._cells)]
        cells: List[object] = []
        merged = None
        for result, metrics in pmap_iter(
            _run_cluster_cell, specs, jobs=min(shards, len(specs))
        ):
            cells.append(result)
            merged = merge_telemetry([merged, metrics])
        response = (
            merged.histogram("cluster.response_ms") if merged is not None else None
        )
        return ShardedClusterResult(
            cells=cells,
            servers=self._servers,
            shards=shards,
            offered_rps=sum(cell.offered_rps for cell in cells),
            throughput_rps=sum(cell.throughput_rps for cell in cells),
            goodput_rps=sum(cell.goodput_rps for cell in cells),
            mean_response_ms=response.mean_ms if response is not None else 0.0,
            p99_ms=(
                response.percentile_ms(0.99, default=0.0)
                if response is not None
                else 0.0
            ),
            metrics=merged,
        )


# ---------------------------------------------------------------------------
# Smoke CLI (CI sharded-smoke job)
# ---------------------------------------------------------------------------


def _smoke_scenarios() -> Iterable[Tuple[str, RackScenario]]:
    yield (
        "surge",
        RackScenario(
            servers_per_cell=4,
            cells=4,
            rate_rps=900.0,
            service_ms=0.5,
            duration_ms=600.0,
            window_ms=60.0,
            deadline_ms=6.0,
            surge=(3.0, 200.0, 320.0),
            queue_cap=64,
            seed=11,
        ),
    )
    yield (
        "failslow",
        RackScenario(
            servers_per_cell=4,
            cells=4,
            rate_rps=900.0,
            service_ms=0.5,
            duration_ms=600.0,
            window_ms=60.0,
            deadline_ms=6.0,
            failslow=(1, 2, 6.0, 150.0, 400.0),
            seed=13,
        ),
    )


def _smoke(shard_counts: Sequence[int] = (1, 2, 4)) -> int:
    """Digest-invariance + hybrid-accuracy smoke used by CI."""
    failures = 0
    for name, scenario in _smoke_scenarios():
        oracle = run_rack(scenario, mode="scalar", shards=1)
        digests = {1: run_rack(scenario, mode="cohort", shards=1).digest}
        for shards in shard_counts[1:]:
            digests[shards] = run_rack(scenario, mode="cohort", shards=shards).digest
        values = set(digests.values())
        exact = values == {oracle.digest}
        status = "ok" if exact else "FAIL"
        if not exact:
            failures += 1
        print(
            f"sharded-smoke [{name}] scalar-vs-cohort digests over shards "
            f"{tuple(digests)}: {status}"
        )
    steady = RackScenario(
        servers_per_cell=8,
        cells=2,
        rate_rps=1200.0,
        service_ms=0.5,
        duration_ms=4000.0,
        window_ms=200.0,
        deadline_ms=8.0,
        seed=7,
    )
    full = run_rack(steady, mode="cohort")
    hybrid = run_rack(steady, mode="hybrid")
    p50_err = abs(hybrid.p50_ms - full.p50_ms) / full.p50_ms
    p99_err = abs(hybrid.p99_ms - full.p99_ms) / full.p99_ms
    within = (
        max(p50_err, p99_err) <= HYBRID_TOLERANCE
        and hybrid.windows_analytic > 0
    )
    if not within:
        failures += 1
    print(
        f"sharded-smoke [hybrid] p50 err {p50_err:.3f}, p99 err {p99_err:.3f} "
        f"(tolerance {HYBRID_TOLERANCE}, analytic windows "
        f"{hybrid.windows_analytic}/{hybrid.windows_analytic + hybrid.windows_vector}): "
        f"{'ok' if within else 'FAIL'}"
    )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Sharded DES smoke checks (digest invariance + hybrid accuracy)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI smoke suite"
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    failures = _smoke()
    if failures:
        print(f"sharded-smoke: {failures} check(s) FAILED")
        return 1
    print("sharded-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
