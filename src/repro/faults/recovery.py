"""Recovery orchestration: rebuild storms as real DES traffic.

Hamilton's modular-datacenter argument (PAPERS.md) is that cheap shared
components only work when recovery is automated -- and that recovery
itself is a workload: rebuilding lost redundancy moves pages over the
same enclosure links foreground requests use, so an unthrottled rebuild
storm wins durability by losing the foreground tail.  This module owns
that trade:

- :class:`RecoveryOrchestrator` reacts to blade failures/repairs of a
  :class:`~repro.memsim.redundancy.BladeGroup`, keeps the balancer's
  per-server :class:`~repro.memsim.redundancy.ServiceProfile` view
  fresh, and drains the rebuild worklist in chunks that *acquire the
  shared blade-controller* :class:`~repro.simulator.resources.Resource`
  -- rebuild chunks genuinely queue behind (and ahead of) foreground
  remote-memory transfers.
- :class:`RebuildPolicy` / :class:`RebuildThrottle` bound the storm: a
  token bucket (reusing the PR 2 admission machinery) caps sustained
  rebuild pages/s, and an EWMA of foreground latency provides
  p99-backpressure -- rebuild pauses while the foreground tail is
  inflated, trading a longer durability-exposure window for a flatter
  p99.
- :class:`MaintenancePlan` scripts drain windows (rolling upgrades)
  driven through :mod:`repro.faults.injector` correlated domains.

Everything here is deterministic and consumes **zero RNG**: chunk
sizes, throttle decisions, and placement are pure functions of
simulated time and the scripted fault schedule, so redundancy-off runs
stay bit-identical to the seed streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.memsim.redundancy import (
    BladeGroup,
    RedundancyAudit,
    RedundancyPolicy,
    ServiceProfile,
    auto_blade_group,
)
from repro.obs.span import SpanKind, Trace


@dataclass(frozen=True)
class RebuildPolicy:
    """QoS bounds on background rebuild traffic.

    ``rate_pages_per_s``/``burst_pages`` feed a token bucket (sustained
    rate cap); ``backpressure_ms``, when set, pauses rebuild whenever
    the EWMA of observed foreground latency exceeds it, re-checking
    every ``pause_ms``.  ``page_transfer_us`` defaults to the remote
    memory model's per-page link latency.
    """

    chunk_pages: int = 64
    rate_pages_per_s: float = 40_000.0
    burst_pages: float = 256.0
    backpressure_ms: Optional[float] = None
    ewma_alpha: float = 0.2
    pause_ms: float = 25.0
    page_transfer_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.chunk_pages < 1:
            raise ValueError("chunk_pages must be >= 1")
        if self.rate_pages_per_s <= 0:
            raise ValueError("rebuild rate must be positive")
        if self.burst_pages < self.chunk_pages:
            raise ValueError("burst_pages must cover at least one chunk")
        if self.backpressure_ms is not None and self.backpressure_ms <= 0:
            raise ValueError("backpressure_ms must be positive when set")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.pause_ms <= 0:
            raise ValueError("pause_ms must be positive")
        if self.page_transfer_us is not None and self.page_transfer_us <= 0:
            raise ValueError("page_transfer_us must be positive when set")


class RebuildThrottle:
    """Token-bucket rate cap + foreground-latency backpressure."""

    __slots__ = ("policy", "_bucket", "_ewma", "_primed")

    def __init__(self, policy: RebuildPolicy):
        # Deferred import: the balancer imports this module, and the
        # cluster package imports the balancer, so a module-level import
        # of repro.cluster.overload would close an import cycle.
        from repro.cluster.overload import TokenBucket

        self.policy = policy
        self._bucket = TokenBucket(policy.rate_pages_per_s, policy.burst_pages)
        self._ewma = 0.0
        self._primed = False

    @property
    def foreground_ewma_ms(self) -> float:
        return self._ewma

    def observe_foreground(self, latency_ms: float) -> None:
        """Feed one foreground completion latency into the EWMA."""
        if not self._primed:
            self._ewma = latency_ms
            self._primed = True
        else:
            alpha = self.policy.ewma_alpha
            self._ewma += alpha * (latency_ms - self._ewma)

    @property
    def backpressured(self) -> bool:
        limit = self.policy.backpressure_ms
        return limit is not None and self._primed and self._ewma > limit

    def try_acquire(self, now_ms: float, pages: int) -> bool:
        return self._bucket.try_acquire(now_ms, float(pages))

    def refill_wait_ms(self, pages: int) -> float:
        """Deterministic wait until ``pages`` tokens will have accrued."""
        deficit = float(pages) - self._bucket.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / (self.policy.rate_pages_per_s / 1000.0) + 1e-9


@dataclass(frozen=True)
class BladeFault:
    """One scripted blade fail/repair pair (a storm is a tuple of these)."""

    blade: int
    fail_ms: float
    repair_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.blade < 0:
            raise ValueError("blade index must be >= 0")
        if self.fail_ms < 0:
            raise ValueError("fail_ms must be >= 0")
        if self.repair_ms is not None and self.repair_ms <= self.fail_ms:
            raise ValueError("repair_ms must come after fail_ms")


@dataclass(frozen=True)
class MaintenanceWindow:
    """Drain one server for ``duration_ms`` starting at ``start_ms``."""

    server: int
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


@dataclass(frozen=True)
class MaintenancePlan:
    """A scripted set of drain windows (no RNG; replayable)."""

    windows: Tuple[MaintenanceWindow, ...] = ()

    def __post_init__(self) -> None:
        for window in self.windows:
            if not isinstance(window, MaintenanceWindow):
                raise TypeError("windows must be MaintenanceWindow instances")

    @classmethod
    def rolling(
        cls,
        servers: int,
        start_ms: float,
        duration_ms: float,
        gap_ms: float = 0.0,
    ) -> "MaintenancePlan":
        """A rolling upgrade: drain each server in turn, one at a time."""
        if servers < 1:
            raise ValueError("servers must be >= 1")
        if gap_ms < 0:
            raise ValueError("gap_ms must be >= 0")
        step = duration_ms + gap_ms
        return cls(tuple(
            MaintenanceWindow(i, start_ms + i * step, duration_ms)
            for i in range(servers)
        ))


@dataclass(frozen=True)
class RedundancyConfig:
    """Everything the cluster needs to run protected remote memory.

    ``policy=None`` keeps today's unprotected single-blade behaviour
    (blade-down drops to local paging) while still letting the scripted
    ``blade_faults`` storm run -- that is EXT-13's unprotected arm.
    """

    policy: Optional[RedundancyPolicy] = None
    blades: Optional[int] = None
    pages_per_server: int = 256
    rebuild: RebuildPolicy = RebuildPolicy()
    blade_faults: Tuple[BladeFault, ...] = ()

    def __post_init__(self) -> None:
        if self.pages_per_server < 1:
            raise ValueError("pages_per_server must be >= 1")
        if self.blades is not None and self.blades < 1:
            raise ValueError("blades must be >= 1")
        if (
            self.policy is not None
            and self.blades is not None
            and self.blades < self.policy.min_blades
        ):
            raise ValueError(
                f"{self.policy.describe()} needs >= "
                f"{self.policy.min_blades} blades"
            )
        for fault in self.blade_faults:
            if not isinstance(fault, BladeFault):
                raise TypeError("blade_faults must be BladeFault instances")
            if fault.blade >= self.nblades:
                raise ValueError(
                    f"blade {fault.blade} out of range for "
                    f"{self.nblades} blades"
                )

    @property
    def nblades(self) -> int:
        if self.blades is not None:
            return self.blades
        return self.policy.min_blades if self.policy is not None else 1

    def build_group(self, server_ids: Sequence[str]) -> Optional[BladeGroup]:
        """Materialise the blade group, pre-populated with each server's
        steady remote working set.  ``None`` when unprotected."""
        if self.policy is None:
            return None
        group = auto_blade_group(
            self.policy, self.nblades, server_ids, self.pages_per_server
        )
        group.populate()
        return group


@dataclass
class RecoveryReport:
    """What recovery did during a run (excluded from stream digests)."""

    blade_failures: int = 0
    blade_repairs: int = 0
    blade_downtime_ms: Dict[int, float] = field(default_factory=dict)
    #: Requests whose remote reads were partly served from surviving
    #: replicas / reconstructed stripes instead of the primary copy.
    failover_requests: int = 0
    #: Requests that paid local-paging time for unrecoverable pages.
    lossy_requests: int = 0
    #: Group counters (copied at finalize).
    failover_reads: int = 0
    reconstructed_reads: int = 0
    lost_page_reads: int = 0
    degraded_writes: int = 0
    lost_writes: int = 0
    pages_rebuilt: int = 0
    #: Rebuild stream accounting.
    rebuild_chunks: int = 0
    rebuild_ms: float = 0.0
    throttle_denials: int = 0
    backpressure_pauses: int = 0
    #: Time any written page sat below full redundancy (the durability
    #: exposure window; stays open to run end if pages are lost).
    exposure_ms: float = 0.0
    #: Maintenance drains.
    drains: int = 0
    drain_ms: float = 0.0
    audit: Optional[RedundancyAudit] = None
    rebuild_traces: List[Trace] = field(default_factory=list)

    @property
    def data_loss(self) -> bool:
        return self.lost_page_reads > 0 or (
            self.audit is not None and self.audit.lost > 0
        )


class RecoveryOrchestrator:
    """Drives failover state and background rebuild for one blade group.

    The orchestrator never touches an RNG.  Its ``active`` flag is the
    balancer's one-attribute hot-path gate: while False (healthy group,
    nothing to rebuild) the foreground code path is byte-identical to
    the unprotected one.
    """

    def __init__(
        self,
        sim,
        link,
        group: BladeGroup,
        policy: RebuildPolicy,
        page_latency_us: float,
        metrics=None,
        trace: bool = False,
        report: Optional[RecoveryReport] = None,
    ):
        self._sim = sim
        self._link = link
        self.group = group
        self.policy = policy
        self.throttle = RebuildThrottle(policy)
        self.report = report if report is not None else RecoveryReport()
        self.active = False
        #: Called with (server_id, impaired) when a server crosses into
        #: or out of unrecoverable-page territory (hedge avoidance).
        self.on_impairment: Optional[Callable[[str, bool], None]] = None
        per_page_us = (
            policy.page_transfer_us
            if policy.page_transfer_us is not None
            else page_latency_us
        )
        self._chunk_service_ms = (
            policy.chunk_pages * per_page_us / 1000.0
            * group.policy.rebuild_transfers_per_page
        )
        self._profiles: Dict[str, ServiceProfile] = {}
        self._profile_version = -1
        self._down_since: Dict[int, float] = {}
        self._exposure_since: Optional[float] = None
        self._pumping = False
        self._stream_trace: Optional[Trace] = None
        self._stream_started = 0.0
        self._streams = 0
        self._impaired: set = set()
        self._metrics = metrics
        self._trace_streams = trace
        if metrics is not None:
            self._pages_counter = metrics.counter("rebuild.pages")
            self._chunk_counter = metrics.counter("rebuild.chunks")
            self._pause_counter = metrics.counter("rebuild.backpressure_pauses")
            self._deny_counter = metrics.counter("rebuild.throttle_denials")
            self._backlog_gauge = metrics.gauge("rebuild.backlog_pages")
        else:
            self._pages_counter = self._chunk_counter = None
            self._pause_counter = self._deny_counter = None
            self._backlog_gauge = None

    # -- balancer-facing views ---------------------------------------

    def profile(self, server_id: str) -> ServiceProfile:
        """Current service profile, cached against the group version."""
        if self.group.version != self._profile_version:
            self._profiles = {}
            self._profile_version = self.group.version
        prof = self._profiles.get(server_id)
        if prof is None:
            prof = self.group.service_profile(server_id)
            self._profiles[server_id] = prof
        return prof

    @property
    def rebuilding(self) -> bool:
        return self._pumping

    def observe_foreground(self, latency_ms: float) -> None:
        self.throttle.observe_foreground(latency_ms)

    # -- blade lifecycle ----------------------------------------------

    def blade_failed(self, blade: int) -> None:
        now = self._sim.now
        self.group.fail_blade(blade)
        self.report.blade_failures += 1
        self._down_since[blade] = now
        if self._exposure_since is None:
            self._exposure_since = now
        self.active = True
        self._notify_impairments()

    def blade_repaired(self, blade: int) -> None:
        now = self._sim.now
        self.group.repair_blade(blade)
        self.report.blade_repairs += 1
        since = self._down_since.pop(blade, now)
        downtime = self.report.blade_downtime_ms
        downtime[blade] = downtime.get(blade, 0.0) + (now - since)
        self._notify_impairments()
        self._start_stream()

    def _notify_impairments(self) -> None:
        if self.on_impairment is None:
            return
        for server_id in self.group._slots:
            impaired = self.profile(server_id).lost_fraction > 0.0
            was = server_id in self._impaired
            if impaired and not was:
                self._impaired.add(server_id)
                self.on_impairment(server_id, True)
            elif was and not impaired:
                self._impaired.discard(server_id)
                self.on_impairment(server_id, False)

    # -- rebuild pump -------------------------------------------------

    def _start_stream(self) -> None:
        if self._pumping:
            return
        if self.group.pages_needing_rebuild == 0:
            self._settle()
            return
        self._pumping = True
        self._stream_started = self._sim.now
        if self._trace_streams:
            trace = Trace(f"rebuild-{self._streams}")
            trace.start(
                SpanKind.REBUILD, self._sim.now,
                name=f"rebuild stream {self._streams}",
            )
            self._stream_trace = trace
        self._streams += 1
        self._pump()

    def _pump(self) -> None:
        backlog = self.group.pages_needing_rebuild
        if self._backlog_gauge is not None:
            self._backlog_gauge.set(float(backlog))
        if backlog == 0:
            self._finish_stream()
            return
        now = self._sim.now
        if self.throttle.backpressured:
            self.report.backpressure_pauses += 1
            if self._pause_counter is not None:
                self._pause_counter.inc()
            self._sim.schedule(self.policy.pause_ms, self._pump)
            return
        pages = min(self.policy.chunk_pages, backlog)
        if not self.throttle.try_acquire(now, pages):
            self.report.throttle_denials += 1
            if self._deny_counter is not None:
                self._deny_counter.inc()
            self._sim.schedule(self.throttle.refill_wait_ms(pages), self._pump)
            return
        service_ms = self._chunk_service_ms * (pages / self.policy.chunk_pages)

        def chunk_done() -> None:
            restored = self.group.rebuild_step(pages)
            self.report.rebuild_chunks += 1
            if self._pages_counter is not None and restored:
                self._pages_counter.inc(restored)
            if self._chunk_counter is not None:
                self._chunk_counter.inc()
            if self._stream_trace is not None:
                end = self._sim.now
                span = self._stream_trace.start(
                    SpanKind.REBUILD, end - service_ms, name="chunk",
                )
                span.annotate(pages=restored)
                Trace.finish(span, end)
            self._profiles = {}
            self._profile_version = self.group.version
            self._notify_impairments()
            self._pump()

        self._link.acquire(service_ms, chunk_done)

    def _finish_stream(self) -> None:
        now = self._sim.now
        self.report.rebuild_ms += now - self._stream_started
        if self._stream_trace is not None:
            self._stream_trace.close(now)
            self.report.rebuild_traces.append(self._stream_trace)
            self._stream_trace = None
        self._pumping = False
        self._settle()

    def _settle(self) -> None:
        """Close the exposure window / deactivate if fully redundant."""
        if self._down_since or self.group.pages_needing_rebuild:
            return
        if self.group.degraded_pages() == 0:
            now = self._sim.now
            if self._exposure_since is not None:
                self.report.exposure_ms += now - self._exposure_since
                self._exposure_since = None
            self.active = False
        # Lost pages keep the group active (degraded service persists)
        # and the exposure window open until finalize.

    # -- teardown -----------------------------------------------------

    def finalize(self, now_ms: float) -> RecoveryReport:
        report = self.report
        if self._exposure_since is not None:
            report.exposure_ms += now_ms - self._exposure_since
            self._exposure_since = None
        for blade, since in self._down_since.items():
            downtime = report.blade_downtime_ms
            downtime[blade] = downtime.get(blade, 0.0) + (now_ms - since)
        if self._stream_trace is not None:
            report.rebuild_ms += now_ms - self._stream_started
            self._stream_trace.close(now_ms, status="truncated")
            report.rebuild_traces.append(self._stream_trace)
            self._stream_trace = None
        group = self.group
        report.failover_reads = group.failover_reads
        report.reconstructed_reads = group.reconstructed_reads
        report.lost_page_reads = group.lost_page_reads
        report.degraded_writes = group.degraded_writes
        report.lost_writes = group.lost_writes
        report.pages_rebuilt = group.pages_rebuilt
        report.audit = group.audit()
        return report
