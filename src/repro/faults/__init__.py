"""Stochastic fault injection and failure-domain modelling.

The paper's long-term design N2 wins by *sharing* ensemble resources --
a remote memory blade, SAN'd laptop disks behind a flash cache,
aggregated cooling -- but sharing concentrates failure domains.  This
package supplies the fault model needed to check whether the
srvr1 -> N1 -> N2 progression preserves its Perf/TCO-$ advantage once
availability is priced in:

- :mod:`~repro.faults.model` -- per-component-class MTBF/MTTR
  characteristics (:class:`FaultSpec`, :class:`FaultProfile`) with
  commodity-hardware defaults and acceleration for simulated windows.
- :mod:`~repro.faults.injector` -- seeded, fully deterministic
  fault-event injection into the discrete-event simulator, plus
  :class:`FailureDomain` for correlated failures (one memory-blade or
  enclosure fault degrading every attached server at once).
- :mod:`~repro.faults.failslow` -- *gray* failures: drift processes
  that degrade individual servers' CPU/NIC/remote-memory/flash service
  times continuously (:class:`FailSlowPlan`), and the deterministic
  peer-comparison detector (:class:`PeerComparisonDetector`) that
  scores, ejects, probes, and re-admits them at the balancer level.
- :mod:`~repro.faults.recovery` -- redundancy configuration, the
  QoS-throttled rebuild orchestrator (rebuild streams contend with
  foreground traffic on the shared blade link), and scripted
  maintenance-drain plans (:class:`MaintenancePlan`).

Consumers: :class:`repro.cluster.balancer.ClusterSimulator` (health
checks, retries, hedging, degraded modes),
:mod:`repro.costmodel.availability` (repair/downtime pricing) and
:mod:`repro.experiments.availability` (the srvr1/N1/N2 rerun under
faults).
"""

from repro.faults.model import (
    ComponentType,
    DEFAULT_FAULT_PROFILE,
    DEPRECIATION_CYCLE_HOURS,
    FaultProfile,
    FaultSpec,
)
from repro.faults.injector import (
    FailureDomain,
    FaultComponent,
    FaultEvent,
    FaultInjector,
)
from repro.faults.failslow import (
    AdaptiveTimeoutPolicy,
    DetectionPolicy,
    DriftTable,
    FailSlowInjection,
    FailSlowPlan,
    FailSlowReport,
    HealthTransition,
    LinearDrift,
    PeerComparisonDetector,
    SawtoothDrift,
    ServerHealth,
    SlowResource,
    StepDrift,
    StutterDrift,
)
# Imported last: recovery pulls in repro.memsim (and, lazily, the
# cluster overload machinery), so it must not gate the lighter modules.
from repro.faults.recovery import (
    BladeFault,
    MaintenancePlan,
    MaintenanceWindow,
    RebuildPolicy,
    RebuildThrottle,
    RecoveryOrchestrator,
    RecoveryReport,
    RedundancyConfig,
)

__all__ = [
    "ComponentType",
    "DEFAULT_FAULT_PROFILE",
    "DEPRECIATION_CYCLE_HOURS",
    "FaultProfile",
    "FaultSpec",
    "FailureDomain",
    "FaultComponent",
    "FaultEvent",
    "FaultInjector",
    "AdaptiveTimeoutPolicy",
    "DetectionPolicy",
    "DriftTable",
    "FailSlowInjection",
    "FailSlowPlan",
    "FailSlowReport",
    "HealthTransition",
    "LinearDrift",
    "PeerComparisonDetector",
    "SawtoothDrift",
    "ServerHealth",
    "SlowResource",
    "StepDrift",
    "StutterDrift",
    "BladeFault",
    "MaintenancePlan",
    "MaintenanceWindow",
    "RebuildPolicy",
    "RebuildThrottle",
    "RecoveryOrchestrator",
    "RecoveryReport",
    "RedundancyConfig",
]
