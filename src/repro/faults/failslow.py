"""Fail-slow (gray-failure) injection and peer-comparison detection.

PR 1 models *fail-stop* faults (a component is up or down) and PR 2
models *overload* (everyone is slow together).  This module models the
failure class that threatens the paper's low-cost N1/N2 ensembles most
(ISCA'08 section 3.6, and Hamilton's modular-datacenter argument in
PAPERS.md): components that keep answering, but slowly -- wearing flash
whose reads stretch, a NIC renegotiating to a lower rate, a thermally
throttled microblade, a CPU losing turbo headroom.  Fleet-level health
checks tuned for fail-stop see such a server as perfectly healthy while
one 10x-slow blade poisons the whole cluster's p99.

Two halves, deliberately separable:

**Injection** -- :class:`FailSlowPlan` attaches *drift processes* to
individual servers' resource dimensions (:class:`SlowResource`: CPU
service time, NIC latency, remote-memory access time, flash/disk read
latency).  Four drift shapes cover the catalog of real gray failures:

- :class:`LinearDrift` -- gradual wear (flash program/erase damage,
  fan-bearing degradation): multiplier ramps from 1x to ``peak``;
- :class:`StepDrift` -- an abrupt but non-fatal event (link retrains at
  a lower rate, a core is offlined): jumps to ``factor`` and stays;
- :class:`StutterDrift` -- intermittent stalls (firmware GC pauses,
  background scrubbing): windows of ``factor`` slowdown recurring with
  a hash-derived pseudo-random pattern;
- :class:`SawtoothDrift` -- thermal cycling: multiplier climbs to
  ``peak`` over each period, then resets (heatsink clogged, fan duty
  cycling).

Every drift is a *pure function of simulated time*: parameters are
explicit and the stutter pattern comes from a SplitMix64 hash of the
window index, so injection consumes **zero RNG state** -- a drifting
run draws exactly the same workload/fault randomness as a healthy one,
and detected vs undetected request streams stay replayable.

**Detection** -- :class:`PeerComparisonDetector` implements the
service-level recovery Hamilton argues must replace hardware
reliability, as a deterministic state machine driven by the cluster
balancer:

- *peer-comparison scoring*: per-server attempt-latency histograms
  (PR 5's :class:`~repro.obs.metrics.MetricsRegistry` instruments,
  windowed via :meth:`~repro.simulator.telemetry.LatencyHistogram.since`)
  feed an EWMA of each server's windowed p95; a server is *suspect*
  when its EWMA exceeds ``suspect_ratio`` x the fleet median -- gray
  failure is invisible in absolute thresholds but obvious against
  peers doing identical work;
- *outlier ejection*: ``suspect_evals`` consecutive suspect windows
  quarantine the server (bounded by ``max_ejected_fraction`` so a
  common-mode slowdown can never eject the fleet);
- *probation probes*: after ``quarantine_ms`` the server re-enters on a
  trickle of probe requests; healthy probes re-admit it, slow probes
  re-quarantine it;
- *percentile-adaptive timeouts*: the per-attempt timeout becomes
  ``multiple`` x the fleet-median EWMA p95 (clamped to
  ``[floor_ms, static timeout]``), so retries fire at "slower than
  peers", not at a static worst-case guess.

The detector never touches an RNG either: with a healthy fleet (no
transitions, adaptive timeouts off) a detection-enabled run is
byte-identical to a detection-free run -- asserted in tests and inside
``repro-bench``'s ``failslow_detect`` gate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # ``repro.faults`` loads early in package init (costmodel needs the
    # fault model); pulling obs/telemetry in at module level would close
    # the simulator <-> workloads import cycle.  The detector imports
    # them lazily at construction time instead.
    from repro.obs.metrics import MetricsRegistry
    from repro.simulator.telemetry import HistogramSnapshot, LatencyHistogram

__all__ = [
    "SlowResource",
    "LinearDrift",
    "StepDrift",
    "StutterDrift",
    "SawtoothDrift",
    "FailSlowInjection",
    "FailSlowPlan",
    "DriftTable",
    "ServerHealth",
    "AdaptiveTimeoutPolicy",
    "DetectionPolicy",
    "HealthTransition",
    "FailSlowReport",
    "PeerComparisonDetector",
]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: one well-mixed 64-bit word from ``value``."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _hash_unit(seed: int, index: int) -> float:
    """Deterministic uniform [0, 1) from (seed, index) -- no RNG state."""
    return _splitmix64((seed & _MASK64) ^ _splitmix64(index & _MASK64)) / 2.0**64


class SlowResource(enum.Enum):
    """A server resource dimension a drift process can degrade."""

    CPU = "cpu"
    NIC = "nic"
    REMOTE_MEMORY = "remote-mem"
    FLASH = "flash"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LinearDrift:
    """Gradual wear: multiplier ramps 1 -> ``peak`` over ``ramp_ms``.

    Flat at 1.0 before ``onset_ms``, linear to ``peak`` at
    ``onset_ms + ramp_ms``, then holds ``peak`` (the worn state does
    not heal).
    """

    peak: float
    onset_ms: float = 0.0
    ramp_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.peak < 1.0:
            raise ValueError("drift multipliers are slowdowns (>= 1.0)")
        if self.onset_ms < 0 or self.ramp_ms <= 0:
            raise ValueError("onset must be >= 0 and ramp positive")

    def multiplier(self, now_ms: float) -> float:
        if now_ms <= self.onset_ms:
            return 1.0
        progress = min((now_ms - self.onset_ms) / self.ramp_ms, 1.0)
        return 1.0 + (self.peak - 1.0) * progress


@dataclass(frozen=True)
class StepDrift:
    """Abrupt, persistent degradation: ``factor`` x from ``at_ms`` on."""

    factor: float
    at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("drift multipliers are slowdowns (>= 1.0)")
        if self.at_ms < 0:
            raise ValueError("step time must be >= 0")

    def multiplier(self, now_ms: float) -> float:
        return self.factor if now_ms >= self.at_ms else 1.0


@dataclass(frozen=True)
class StutterDrift:
    """Intermittent stalls: ``factor`` x for ``burst_ms`` at the start of
    each ``period_ms`` window, firing in ``probability`` of windows.

    Which windows stutter is a pure SplitMix64 hash of the window index
    and ``seed`` -- deterministic, replayable, zero RNG state consumed.
    """

    factor: float
    period_ms: float = 1000.0
    burst_ms: float = 200.0
    probability: float = 0.5
    seed: int = 0
    onset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("drift multipliers are slowdowns (>= 1.0)")
        if self.period_ms <= 0 or not 0 < self.burst_ms <= self.period_ms:
            raise ValueError("need 0 < burst_ms <= period_ms")
        if not 0 < self.probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        if self.onset_ms < 0:
            raise ValueError("onset must be >= 0")

    def multiplier(self, now_ms: float) -> float:
        if now_ms < self.onset_ms:
            return 1.0
        window = int((now_ms - self.onset_ms) / self.period_ms)
        offset = (now_ms - self.onset_ms) - window * self.period_ms
        if offset >= self.burst_ms:
            return 1.0
        if _hash_unit(self.seed, window) >= self.probability:
            return 1.0
        return self.factor


@dataclass(frozen=True)
class SawtoothDrift:
    """Thermal cycling: multiplier climbs 1 -> ``peak`` over each
    ``period_ms``, then snaps back to 1.0 (duty-cycled cooling)."""

    peak: float
    period_ms: float = 5000.0
    onset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.peak < 1.0:
            raise ValueError("drift multipliers are slowdowns (>= 1.0)")
        if self.period_ms <= 0:
            raise ValueError("period must be positive")
        if self.onset_ms < 0:
            raise ValueError("onset must be >= 0")

    def multiplier(self, now_ms: float) -> float:
        if now_ms < self.onset_ms:
            return 1.0
        phase = ((now_ms - self.onset_ms) % self.period_ms) / self.period_ms
        return 1.0 + (self.peak - 1.0) * phase


@dataclass(frozen=True)
class FailSlowInjection:
    """One drift process attached to one server's resource dimension."""

    server: int
    resource: SlowResource
    drift: object

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if not callable(getattr(self.drift, "multiplier", None)):
            raise TypeError("drift must expose multiplier(now_ms)")


@dataclass(frozen=True)
class FailSlowPlan:
    """The gray-failure scenario for one cluster run."""

    injections: Tuple[FailSlowInjection, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "injections", tuple(self.injections))

    @classmethod
    def single_slow_node(
        cls,
        server: int = 0,
        factor: float = 10.0,
        resource: SlowResource = SlowResource.CPU,
        at_ms: float = 0.0,
    ) -> "FailSlowPlan":
        """The canonical EXT-12 scenario: one node steps to ``factor`` x."""
        return cls(
            injections=(
                FailSlowInjection(server, resource, StepDrift(factor, at_ms)),
            )
        )

    @property
    def drifting_servers(self) -> List[int]:
        return sorted({injection.server for injection in self.injections})

    def table(self, servers: int) -> "DriftTable":
        """Compile the plan into per-server lookup arrays."""
        return DriftTable(self, servers)


class DriftTable:
    """Per-server, per-resource drift lookup for the balancer hot path.

    Each resource attribute is a list indexed by server holding either
    ``None`` (no drift -- the overwhelmingly common case, one branch to
    skip) or a tuple of drift processes whose multipliers compose.
    """

    __slots__ = ("cpu", "nic", "remote", "flash", "servers")

    def __init__(self, plan: FailSlowPlan, servers: int):
        if servers <= 0:
            raise ValueError("servers must be positive")
        out_of_range = [i.server for i in plan.injections if i.server >= servers]
        if out_of_range:
            raise ValueError(
                f"injection server indices out of range: {sorted(set(out_of_range))}"
            )
        self.servers = servers
        lanes: Dict[SlowResource, List[Optional[Tuple[object, ...]]]] = {
            resource: [None] * servers for resource in SlowResource
        }
        for injection in plan.injections:
            lane = lanes[injection.resource]
            existing = lane[injection.server] or ()
            lane[injection.server] = existing + (injection.drift,)
        self.cpu = lanes[SlowResource.CPU]
        self.nic = lanes[SlowResource.NIC]
        self.remote = lanes[SlowResource.REMOTE_MEMORY]
        self.flash = lanes[SlowResource.FLASH]

    @staticmethod
    def scale(drifts: Optional[Tuple[object, ...]], now_ms: float) -> float:
        """Composed multiplier of one lane entry at ``now_ms``."""
        if drifts is None:
            return 1.0
        factor = 1.0
        for drift in drifts:
            factor *= drift.multiplier(now_ms)
        return factor


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


class ServerHealth(enum.Enum):
    """Detector-side health state of one server."""

    ACTIVE = "active"
    QUARANTINED = "quarantined"
    PROBATION = "probation"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AdaptiveTimeoutPolicy:
    """Percentile-adaptive per-attempt timeouts.

    The attempt timeout becomes ``multiple`` x the fleet-median EWMA
    p95 (the detector's peer-comparison score), clamped to
    ``[floor_ms, static timeout]`` -- so a healthy fast fleet times out
    stragglers at "slower than peers" instead of a static worst-case
    bound, and the static bound remains a hard ceiling.
    """

    multiple: float = 3.0
    floor_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.multiple <= 1.0:
            raise ValueError("timeout multiple must exceed 1")
        if self.floor_ms <= 0:
            raise ValueError("floor must be positive")


@dataclass(frozen=True)
class DetectionPolicy:
    """Peer-comparison scoring, ejection, and re-admission knobs."""

    #: Detector evaluation cadence (simulated ms).  Scoring is gated on
    #: ``min_window_samples`` regardless, so a faster cadence than the
    #: traffic can fill windows only buys no-op ticks.
    eval_interval_ms: float = 1000.0
    #: Windowed-p95 smoothing weight (1.0 = no smoothing).
    ewma_alpha: float = 0.3
    #: Percentile of each evaluation window fed into the EWMA.
    score_percentile: float = 0.95
    #: A window below this many samples keeps accumulating instead of
    #: scoring (slow servers complete fewer requests -- their evidence
    #: arrives over more wall-clock, not never).
    min_window_samples: int = 8
    #: Suspect when EWMA p95 > ratio x fleet median...
    suspect_ratio: float = 2.0
    #: ...and exceeds the median by at least this absolute slack
    #: (ratio tests are meaningless noise at sub-millisecond medians).
    min_gap_ms: float = 5.0
    #: Consecutive fresh suspect windows before ejection.
    suspect_evals: int = 2
    #: Quarantine dwell before probation probing starts.
    quarantine_ms: float = 2000.0
    #: Dwell multiplier applied per relapse (probation -> quarantine):
    #: a persistently slow server is probed at exponentially longer
    #: intervals, so probe traffic stops polluting the tail (p99 over M
    #: samples is the worst M/100 -- a handful of slow probes per second
    #: IS the tail otherwise).
    quarantine_backoff: float = 3.0
    #: Relapse count at which the dwell stops growing.
    max_backoff_relapses: int = 6
    #: Probe requests granted to a probation server per evaluation.
    #: Kept deliberately small: probation probes run at the slow node's
    #: latency, and every probe is a candidate tail sample.
    probes_per_eval: int = 2
    #: Probe windows may score on fewer samples than regular windows.
    probe_min_samples: int = 2
    #: Probation is healthy while EWMA p95 <= ratio x fleet median.
    readmit_ratio: float = 1.5
    #: Consecutive healthy probation windows before re-admission.
    readmit_evals: int = 2
    #: Never hold more than this fraction of the fleet out of rotation
    #: (a common-mode slowdown must brown out, not self-eject).
    max_ejected_fraction: float = 0.34
    #: Optional percentile-adaptive per-attempt timeout.
    adaptive_timeout: Optional[AdaptiveTimeoutPolicy] = None

    def __post_init__(self) -> None:
        if self.eval_interval_ms <= 0:
            raise ValueError("evaluation interval must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 < self.score_percentile <= 1:
            raise ValueError("score percentile must be in (0, 1]")
        if self.min_window_samples < 1 or self.probe_min_samples < 1:
            raise ValueError("window sample minimums must be positive")
        if self.suspect_ratio <= 1.0 or self.readmit_ratio < 1.0:
            raise ValueError("suspect ratio > 1 and readmit ratio >= 1 required")
        if self.min_gap_ms < 0:
            raise ValueError("min_gap_ms must be >= 0")
        if self.suspect_evals < 1 or self.readmit_evals < 1:
            raise ValueError("eval streaks must be positive")
        if self.quarantine_ms <= 0:
            raise ValueError("quarantine dwell must be positive")
        if self.quarantine_backoff < 1.0 or self.max_backoff_relapses < 0:
            raise ValueError(
                "quarantine backoff must be >= 1 with a >= 0 relapse cap"
            )
        if self.probes_per_eval < 1:
            raise ValueError("probes_per_eval must be positive")
        if not 0 < self.max_ejected_fraction <= 1:
            raise ValueError("max_ejected_fraction must be in (0, 1]")


@dataclass
class HealthTransition:
    """One detector state change, for reports and tests."""

    time_ms: float
    server: int
    state: str  # new ServerHealth value
    reason: str  # "ejected" | "probation" | "readmitted" | "requarantined"


@dataclass
class FailSlowReport:
    """Fail-slow injection and detection summary for one cluster run."""

    #: Servers the plan degrades (empty = detection-only run).
    drifting_servers: List[int] = field(default_factory=list)
    #: Detector evaluations executed.
    evaluations: int = 0
    #: Suspect verdicts across all evaluations (pre-ejection evidence).
    suspect_flags: int = 0
    #: Active -> quarantined ejections.
    ejections: int = 0
    #: Probation -> active re-admissions.
    readmissions: int = 0
    #: Probation -> quarantined relapses.
    requarantines: int = 0
    #: Probe requests routed to probation servers.
    probes: int = 0
    #: Dispatches that ignored quarantine because no routable server
    #: remained (availability beats ejection).
    quarantine_bypasses: int = 0
    #: Servers marked drained from outside the detector (maintenance
    #: windows, redundancy failover with data loss).
    drain_marks: int = 0
    #: Full transition log in simulated-time order.
    transitions: List[HealthTransition] = field(default_factory=list)
    #: Total out-of-rotation time per server (quarantine + probation).
    ejected_ms: Dict[int, float] = field(default_factory=dict)
    #: Health state per server at end of run.
    final_health: Dict[int, str] = field(default_factory=dict)
    #: EWMA p95 score per server at end of run (scored servers only).
    final_score_ms: Dict[int, float] = field(default_factory=dict)
    #: Last adaptive per-attempt timeout in force (None = static).
    last_adaptive_timeout_ms: Optional[float] = None


class PeerComparisonDetector:
    """Deterministic gray-failure detector over per-server latencies.

    The balancer feeds every finished attempt's latency (completions at
    their true latency, timeouts at the timeout value -- a floor on the
    truth) into :meth:`observe`, and calls :meth:`evaluate` on a fixed
    simulated-time cadence.  All scoring state lives in
    :class:`~repro.obs.metrics.MetricsRegistry` per-server histograms,
    windowed with snapshots, so detection shares PR 5's telemetry
    machinery instead of growing a private stats stack.  Nothing in
    here touches an RNG, schedules differently based on wall time, or
    mutates anything outside its own state: decisions are a pure
    function of (observed latencies, simulated time).
    """

    def __init__(
        self,
        policy: DetectionPolicy,
        servers: int,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        from repro.obs.metrics import MetricsRegistry

        if servers <= 0:
            raise ValueError("servers must be positive")
        self.policy = policy
        self.servers = servers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.report = FailSlowReport()
        #: The per-server attempt-latency histograms detection scores
        #: (public: the balancer binds their ``record`` methods directly
        #: onto its completion hot path).
        self.histograms: Tuple[LatencyHistogram, ...] = tuple(
            self.metrics.histogram("failslow.attempt_ms", server=index)
            for index in range(servers)
        )
        self._since: List[HistogramSnapshot] = [
            hist.snapshot() for hist in self.histograms
        ]
        self._health = [ServerHealth.ACTIVE] * servers
        self._score: List[Optional[float]] = [None] * servers
        self._suspect_streak = [0] * servers
        self._healthy_streak = [0] * servers
        self._ejected_at = [0.0] * servers
        self._probe_credit = [0] * servers
        self._relapses = [0] * servers
        self._median: Optional[float] = None
        #: Current adaptive per-attempt timeout before the static cap,
        #: or None until the fleet median warms up.  A plain attribute
        #: so the balancer reads it without a method call per attempt.
        self.adaptive_timeout_ms: Optional[float] = None
        #: Servers currently out of rotation (quarantined or probation).
        #: A plain attribute for the balancer's per-request fast path:
        #: while 0 -- always, on a healthy fleet -- routability
        #: filtering and probe routing are skipped entirely.
        self.ejected_count = 0
        #: Servers marked unroutable from outside the detector:
        #: maintenance drains and failed-over servers paying the
        #: data-loss paging penalty.  Same fast-path contract as
        #: ``ejected_count`` -- the balancer checks the counter before
        #: filtering, so a run without drains costs nothing extra.
        self.drained_count = 0
        self._drained = [False] * servers
        # Fleet-wide sample total below which the next evaluation
        # cannot possibly score any window (see evaluate()'s gate).
        self._gate_total = 0

    # -- balancer-facing queries --------------------------------------

    @property
    def any_ejected(self) -> bool:
        """True while any server is out of rotation."""
        return self.ejected_count > 0

    def health(self, server: int) -> ServerHealth:
        return self._health[server]

    def routable(self, server: int) -> bool:
        """May regular (non-probe) traffic go to this server?

        False while quarantined/probation *or* externally drained
        (maintenance window, or failed over with unrecoverable pages) --
        so hedge redirects never land on a node that is being drained.
        """
        return (
            self._health[server] is ServerHealth.ACTIVE
            and not self._drained[server]
        )

    def set_drained(self, server: int, drained: bool) -> None:
        """Mark a server drained (maintenance / failed-over) or restored.

        Idempotent; drained servers are excluded from routing, probe
        selection, and the fleet median (a draining node's latencies
        must not drag the baseline the healthy fleet is scored against).
        """
        if self._drained[server] == drained:
            return
        self._drained[server] = drained
        self.drained_count += 1 if drained else -1
        if drained:
            self.report.drain_marks += 1

    def take_probe(self) -> Optional[int]:
        """A probation server owed a probe request, or None.

        Consumes one probe credit; lowest-index probation server first
        (deterministic, and probation is rare enough that fairness
        between concurrent probations does not matter).
        """
        for index in range(self.servers):
            if (
                self._health[index] is ServerHealth.PROBATION
                and self._probe_credit[index] > 0
                and not self._drained[index]
            ):
                self._probe_credit[index] -= 1
                self.report.probes += 1
                return index
        return None

    def attempt_timeout_ms(self, static_ms: float) -> float:
        """Per-attempt timeout: adaptive when enabled and warmed up.

        Called once per dispatched attempt, so the adaptive value is
        precomputed on every fleet-median update (:meth:`evaluate`) and
        the per-attempt cost is a comparison.
        """
        adaptive = self.adaptive_timeout_ms
        if adaptive is None:
            return static_ms
        timeout = adaptive if adaptive < static_ms else static_ms
        self.report.last_adaptive_timeout_ms = timeout
        return timeout

    def observe(self, server: int, latency_ms: float) -> None:
        """Record one finished attempt's latency for ``server``."""
        self.histograms[server].record(latency_ms)

    # -- periodic evaluation ------------------------------------------

    def _transition(
        self, now_ms: float, server: int, state: ServerHealth, reason: str
    ) -> HealthTransition:
        transition = HealthTransition(now_ms, server, state.value, reason)
        was_active = self._health[server] is ServerHealth.ACTIVE
        now_active = state is ServerHealth.ACTIVE
        if was_active and not now_active:
            self.ejected_count += 1
        elif now_active and not was_active:
            self.ejected_count -= 1
        self._health[server] = state
        self.report.transitions.append(transition)
        return transition

    def _fleet_median(self) -> Optional[float]:
        scores = sorted(
            score
            for index, score in enumerate(self._score)
            if score is not None
            and self._health[index] is ServerHealth.ACTIVE
            and not self._drained[index]
        )
        if not scores:
            return None
        middle = len(scores) // 2
        if len(scores) % 2:
            return scores[middle]
        return 0.5 * (scores[middle - 1] + scores[middle])

    def evaluate(self, now_ms: float) -> List[HealthTransition]:
        """One detection pass; returns the transitions it caused."""
        policy = self.policy
        report = self.report
        report.evaluations += 1
        transitions: List[HealthTransition] = []

        # Cheap gate first: no server can have a scorable window until
        # the fleet-wide sample total reaches the target the last full
        # pass computed (current total + the smallest per-server sample
        # deficit -- even if every new sample lands on the closest
        # server, it cannot reach its floor sooner).  Ticks land every
        # eval_interval_ms whether or not traffic does, so on a healthy
        # fleet most ticks exit here for the cost of a few adds.
        if self.ejected_count == 0:
            fleet_total = 0
            for hist in self.histograms:
                fleet_total += hist.count
            if fleet_total < self._gate_total:
                return transitions

        # 1. Score servers whose window accumulated enough evidence,
        # tracking the smallest deficit for the next gate target.
        fresh_indices: List[int] = []
        fleet_total = 0
        min_deficit = policy.min_window_samples
        for index, hist in enumerate(self.histograms):
            count = hist.count
            fleet_total += count
            snapshot = self._since[index]
            window_count = count - snapshot.total
            floor = (
                policy.probe_min_samples
                if self._health[index] is ServerHealth.PROBATION
                else policy.min_window_samples
            )
            if window_count < floor:
                # Keep accumulating; do not advance the window.
                deficit = floor - window_count
                if deficit < min_deficit:
                    min_deficit = deficit
                continue
            score = hist.percentile_since(snapshot, policy.score_percentile)
            previous = self._score[index]
            self._score[index] = (
                score
                if previous is None
                else policy.ewma_alpha * score
                + (1.0 - policy.ewma_alpha) * previous
            )
            self._since[index] = hist.snapshot()
            fresh_indices.append(index)

        if self.ejected_count == 0:
            self._gate_total = fleet_total + min_deficit
            # Nothing scored and nobody out of rotation: the fleet
            # median and every health state are exactly what the last
            # evaluation left them, so steps 2-5 would be no-ops.
            if not fresh_indices:
                return transitions

        # 2. Peer baseline: median score over in-rotation servers.  The
        # adaptive timeout derived from it is cached here so the
        # per-attempt query is a single comparison.
        median = self._fleet_median()
        self._median = median
        adaptive = policy.adaptive_timeout
        if adaptive is None or median is None:
            self.adaptive_timeout_ms = None
        else:
            value = adaptive.multiple * median
            self.adaptive_timeout_ms = (
                value if value > adaptive.floor_ms else adaptive.floor_ms
            )

        # 3. Suspicion and ejection for in-rotation servers.
        if median is not None:
            threshold = max(
                median * policy.suspect_ratio, median + policy.min_gap_ms
            )
            capacity = int(policy.max_ejected_fraction * self.servers)
            for index in fresh_indices:
                if self._health[index] is not ServerHealth.ACTIVE:
                    continue
                if self._score[index] > threshold:
                    report.suspect_flags += 1
                    self._suspect_streak[index] += 1
                    if (
                        self._suspect_streak[index] >= policy.suspect_evals
                        and self.ejected_count + 1 <= capacity
                    ):
                        report.ejections += 1
                        self._ejected_at[index] = now_ms
                        self._suspect_streak[index] = 0
                        self._healthy_streak[index] = 0
                        transitions.append(
                            self._transition(
                                now_ms, index, ServerHealth.QUARANTINED,
                                "ejected",
                            )
                        )
                else:
                    self._suspect_streak[index] = 0

        # 4. Quarantine dwell expiry -> probation probing.  The dwell
        # grows exponentially with relapses, so a persistently slow
        # server's probes stop showing up in the latency distribution.
        # (Steps 4 and 5 only have work while somebody is ejected.)
        if self.ejected_count == 0:
            return transitions
        for index in range(self.servers):
            if self._health[index] is not ServerHealth.QUARANTINED:
                continue
            dwell = policy.quarantine_ms * policy.quarantine_backoff ** min(
                self._relapses[index], policy.max_backoff_relapses
            )
            if now_ms - self._ejected_at[index] >= dwell:
                self._probe_credit[index] = policy.probes_per_eval
                self._healthy_streak[index] = 0
                # Probation starts from a clean window: quarantine-era
                # stragglers must not poison the probe verdict.
                self._since[index] = self.histograms[index].snapshot()
                self._score[index] = None
                transitions.append(
                    self._transition(
                        now_ms, index, ServerHealth.PROBATION, "probation"
                    )
                )

        # 5. Probation verdicts (on fresh probe windows only).
        for index in range(self.servers):
            if self._health[index] is not ServerHealth.PROBATION:
                continue
            self._probe_credit[index] = policy.probes_per_eval
            if (
                index not in fresh_indices
                or self._score[index] is None
                or median is None
            ):
                continue
            healthy_bound = max(
                median * policy.readmit_ratio, median + policy.min_gap_ms
            )
            if self._score[index] <= healthy_bound:
                self._healthy_streak[index] += 1
                if self._healthy_streak[index] >= policy.readmit_evals:
                    report.readmissions += 1
                    report.ejected_ms[index] = report.ejected_ms.get(
                        index, 0.0
                    ) + (now_ms - self._ejected_at[index])
                    self._healthy_streak[index] = 0
                    self._probe_credit[index] = 0
                    self._relapses[index] = 0
                    transitions.append(
                        self._transition(
                            now_ms, index, ServerHealth.ACTIVE, "readmitted"
                        )
                    )
            else:
                report.requarantines += 1
                # Relapse: bank the elapsed out-of-rotation time and
                # restart the (longer) quarantine dwell from now.
                report.ejected_ms[index] = report.ejected_ms.get(
                    index, 0.0
                ) + (now_ms - self._ejected_at[index])
                self._ejected_at[index] = now_ms
                self._relapses[index] += 1
                self._healthy_streak[index] = 0
                self._probe_credit[index] = 0
                transitions.append(
                    self._transition(
                        now_ms, index, ServerHealth.QUARANTINED,
                        "requarantined",
                    )
                )
        return transitions

    def finalize(self, end_ms: float) -> FailSlowReport:
        """Close open ejection intervals and fill the end-of-run summary."""
        report = self.report
        for index in range(self.servers):
            if self._health[index] is not ServerHealth.ACTIVE:
                report.ejected_ms[index] = report.ejected_ms.get(
                    index, 0.0
                ) + (end_ms - self._ejected_at[index])
            report.final_health[index] = self._health[index].value
            if self._score[index] is not None:
                report.final_score_ms[index] = self._score[index]
        return report
