"""Stochastic fault injection for the discrete-event simulator.

Each registered component alternates between *up* periods drawn from an
exponential MTBF and *down* periods drawn from an exponential MTTR, all
from one seeded RNG so a run's entire fault schedule is a deterministic
function of the seed.  Draws happen lazily, in event order, which the
event loop's FIFO tie-breaking makes reproducible.

Correlated failures -- the cost of the paper's ensemble sharing -- are
expressed with :class:`FailureDomain`: one shared component (a memory
blade, an enclosure fan or PSU) whose fault degrades every attached
member at once, and whose repair restores them together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.faults.model import ComponentType, FaultProfile

if TYPE_CHECKING:  # type-only: keeps repro.faults import-light so the
    # costmodel can use fault profiles without dragging in the simulator
    from repro.simulator.engine import Simulation
    from repro.simulator.telemetry import AvailabilityTracker

Action = Callable[[], None]


@dataclass
class FaultEvent:
    """One injected state transition, for reports and tests."""

    time_ms: float
    component: str
    kind: str  # "fail" | "repair"


class FaultComponent:
    """One injectable component instance."""

    def __init__(
        self,
        name: str,
        ctype: ComponentType,
        on_fail: Optional[Action],
        on_repair: Optional[Action],
    ):
        self.name = name
        self.ctype = ctype
        self.up = True
        self.failures = 0
        self._on_fail = on_fail
        self._on_repair = on_repair


class FailureDomain:
    """A shared component's blast radius: members degraded together.

    ``attach`` registers a (degrade, restore) callback pair for one
    member.  When the domain's component fails every member's degrade
    callback runs, in attach order; repair restores them the same way.
    """

    def __init__(self, name: str):
        self.name = name
        self.degraded = False
        self._members: List[Tuple[Action, Action]] = []

    def attach(self, on_degrade: Action, on_restore: Action) -> None:
        self._members.append((on_degrade, on_restore))
        if self.degraded:
            on_degrade()

    def degrade_all(self) -> None:
        self.degraded = True
        for on_degrade, _ in self._members:
            on_degrade()

    def restore_all(self) -> None:
        self.degraded = False
        for _, on_restore in self._members:
            on_restore()


class FaultInjector:
    """Drives per-component exponential fail/repair processes.

    Components registered against a profile with no spec for their class
    simply never fail.  All randomness comes from one ``random.Random``
    seeded at construction, independent of the workload RNG, so enabling
    faults never perturbs request sampling.
    """

    def __init__(
        self,
        sim: "Simulation",
        profile: FaultProfile,
        seed: int = 1,
        tracker: Optional["AvailabilityTracker"] = None,
    ):
        self._sim = sim
        self._profile = profile
        self._rng = random.Random(seed)
        self.tracker = tracker
        self.components: List[FaultComponent] = []
        self.events: List[FaultEvent] = []
        self.failure_counts: Dict[ComponentType, int] = {}

    def register(
        self,
        name: str,
        ctype: ComponentType,
        on_fail: Optional[Action] = None,
        on_repair: Optional[Action] = None,
    ) -> FaultComponent:
        """Add a component and schedule its first failure (if it can fail)."""
        component = FaultComponent(name, ctype, on_fail, on_repair)
        self.components.append(component)
        if self.tracker is not None:
            self.tracker.observe(name, self._sim.now, up=True)
        spec = self._profile.spec(ctype)
        if spec is not None:
            self._schedule_failure(component, spec.mtbf_ms, spec.mttr_ms)
        return component

    def register_domain(
        self, name: str, ctype: ComponentType
    ) -> FailureDomain:
        """Register a shared component and return its failure domain."""
        domain = FailureDomain(name)
        self.register(
            name, ctype, on_fail=domain.degrade_all, on_repair=domain.restore_all
        )
        return domain

    def _schedule_failure(
        self, component: FaultComponent, mtbf_ms: float, mttr_ms: float
    ) -> None:
        delay = self._rng.expovariate(1.0 / mtbf_ms)

        def fail() -> None:
            component.up = False
            component.failures += 1
            self.failure_counts[component.ctype] = (
                self.failure_counts.get(component.ctype, 0) + 1
            )
            self.events.append(FaultEvent(self._sim.now, component.name, "fail"))
            if self.tracker is not None:
                self.tracker.observe(component.name, self._sim.now, up=False)
            if component._on_fail is not None:
                component._on_fail()
            repair_delay = self._rng.expovariate(1.0 / mttr_ms)
            self._sim.schedule(repair_delay, repair)

        def repair() -> None:
            component.up = True
            self.events.append(FaultEvent(self._sim.now, component.name, "repair"))
            if self.tracker is not None:
                self.tracker.observe(component.name, self._sim.now, up=True)
            if component._on_repair is not None:
                component._on_repair()
            self._schedule_failure(component, mtbf_ms, mttr_ms)

        self._sim.schedule(delay, fail)

    @property
    def total_failures(self) -> int:
        return sum(self.failure_counts.values())


def schedule_maintenance(
    sim: "Simulation",
    windows,
    on_drain: Callable[[int], None],
    on_restore: Callable[[int], None],
    events: Optional[List[FaultEvent]] = None,
) -> List[FailureDomain]:
    """Script maintenance drains through correlated failure domains.

    ``windows`` is an iterable of
    :class:`repro.faults.recovery.MaintenanceWindow`-shaped objects
    (``server``/``start_ms``/``duration_ms``); each becomes its own
    :class:`FailureDomain` whose degrade/restore pair fires at the
    scripted times -- the same blast-radius mechanism stochastic shared
    faults use, but with zero RNG consumed, so a maintenance plan
    (e.g. a rolling upgrade) never perturbs the request stream's seeded
    draws.  ``events``, when given, receives ``"drain"``/``"restore"``
    :class:`FaultEvent` records alongside the injector's own.
    """
    domains: List[FailureDomain] = []
    for window in windows:
        domain = FailureDomain(f"maintenance/server{window.server}")
        domain.attach(
            lambda i=window.server: on_drain(i),
            lambda i=window.server: on_restore(i),
        )

        def drain(domain=domain, window=window) -> None:
            domain.degrade_all()
            if events is not None:
                events.append(FaultEvent(sim.now, domain.name, "drain"))

        def restore(domain=domain, window=window) -> None:
            domain.restore_all()
            if events is not None:
                events.append(FaultEvent(sim.now, domain.name, "restore"))

        sim.schedule_at(window.start_ms, drain)
        sim.schedule_at(window.end_ms, restore)
        domains.append(domain)
    return domains
