"""Component fault characteristics: MTBF/MTTR profiles.

Hamilton's "Architecture for Modular Data Centers" (see PAPERS.md)
argues warehouse-scale systems must be designed around large numbers of
low-cost, *low-reliability* commodity components -- exactly the CPU and
disk substitutions the paper's sections 3.2 and 3.5 make.  This module
gives every component class a failure model: an exponential
time-to-failure (MTBF) and an exponential time-to-repair (MTTR), the
standard memoryless model for hardware fault processes.

Two consumers share these profiles:

- :class:`repro.faults.injector.FaultInjector` draws concrete fault
  events from them inside the discrete-event simulator (usually through
  an *accelerated* copy, since real MTBFs of months would never fire in
  a seconds-long simulated window), and
- :class:`repro.costmodel.availability.RepairCostModel` prices the
  expected repair labour and downtime over the three-year depreciation
  cycle from the *unaccelerated* figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Iterable, Mapping, Optional

#: Milliseconds per hour (fault specs are quoted in hours, simulated in ms).
MS_PER_HOUR = 3_600_000.0

#: Hours in the paper's three-year depreciation cycle.
DEPRECIATION_CYCLE_HOURS = 3 * 8760.0


class ComponentType(enum.Enum):
    """A failure-domain component class."""

    SERVER = "server"
    DISK = "disk"
    NIC = "nic"
    MEMORY_BLADE = "memory-blade"
    FLASH_CACHE = "flash-cache"
    ENCLOSURE_FAN = "enclosure-fan"
    ENCLOSURE_PSU = "enclosure-psu"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """Exponential failure/repair process for one component class."""

    mtbf_hours: float
    mttr_hours: float

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0:
            raise ValueError("MTBF must be positive")
        if self.mttr_hours <= 0:
            raise ValueError("MTTR must be positive")

    @property
    def mtbf_ms(self) -> float:
        return self.mtbf_hours * MS_PER_HOUR

    @property
    def mttr_ms(self) -> float:
        return self.mttr_hours * MS_PER_HOUR

    @property
    def availability(self) -> float:
        """Steady-state fraction of time up: MTBF / (MTBF + MTTR)."""
        return self.mtbf_hours / (self.mtbf_hours + self.mttr_hours)

    def incidents_per_cycle(
        self, cycle_hours: float = DEPRECIATION_CYCLE_HOURS
    ) -> float:
        """Expected failure count over a depreciation cycle."""
        if cycle_hours < 0:
            raise ValueError("cycle must be >= 0")
        return cycle_hours / self.mtbf_hours

    def scaled(self, acceleration: float) -> "FaultSpec":
        """Shrink both time constants by ``acceleration`` (for simulation)."""
        if acceleration <= 0:
            raise ValueError("acceleration must be positive")
        return FaultSpec(
            mtbf_hours=self.mtbf_hours / acceleration,
            mttr_hours=self.mttr_hours / acceleration,
        )


@dataclass(frozen=True)
class FaultProfile:
    """Per-component-class fault specs for one deployment."""

    name: str
    specs: Mapping[ComponentType, FaultSpec]

    def __post_init__(self) -> None:
        # Freeze the mapping so profiles are safely shareable defaults.
        object.__setattr__(self, "specs", MappingProxyType(dict(self.specs)))

    def spec(self, component: ComponentType) -> Optional[FaultSpec]:
        """The spec for one component class (None = never fails)."""
        return self.specs.get(component)

    def availability(self, component: ComponentType) -> float:
        spec = self.spec(component)
        return spec.availability if spec is not None else 1.0

    def serial_availability(self, components: Iterable[ComponentType]) -> float:
        """Availability of a chain that needs every listed component up.

        Independent components in series: the product of their
        steady-state availabilities (the classic RBD series formula).
        An *empty* chain is the multiplicative identity, 1.0 -- a path
        that crosses no fallible component is always up -- and a
        component with no spec contributes 1.0 the same way.  A zero or
        negative MTTR cannot appear here: :class:`FaultSpec` rejects it
        at construction, so every factor is strictly in (0, 1).
        """
        product = 1.0
        for component in components:
            product *= self.availability(component)
        return product

    def accelerated(self, factor: float) -> "FaultProfile":
        """A copy with every MTBF/MTTR divided by ``factor``.

        Real component MTBFs are months to decades; simulated measurement
        windows are seconds.  Accelerating the whole profile preserves
        the *ratio* of repair time to uptime (and hence availability)
        while making faults observable inside a run.
        """
        return FaultProfile(
            name=f"{self.name}/x{factor:g}",
            specs={c: s.scaled(factor) for c, s in self.specs.items()},
        )

    def replace(self, **overrides: FaultSpec) -> "FaultProfile":
        """A copy with named component specs replaced.

        Keys are :class:`ComponentType` value strings with ``-`` replaced
        by ``_`` (e.g. ``memory_blade=FaultSpec(...)``).
        """
        by_key: Dict[str, ComponentType] = {
            c.value.replace("-", "_"): c for c in ComponentType
        }
        specs = dict(self.specs)
        for key, spec in overrides.items():
            try:
                specs[by_key[key]] = spec
            except KeyError as exc:
                raise KeyError(
                    f"unknown component {key!r}; known: {sorted(by_key)}"
                ) from exc
        return FaultProfile(name=self.name, specs=specs)


#: Default commodity-hardware fault profile (unaccelerated, real hours).
#:
#: MTBFs follow the coarse public figures for 2008-era commodity parts:
#: whole-server software/hardware crashes a few times a decade (but
#: repaired fast by automated restart), disks at a ~4% annualized failure
#: rate, NICs and flash modules rarely, shared parts (memory blade,
#: enclosure fans and power supplies) at datasheet-class rates.  MTTRs
#: model a staffed warehouse: automated restarts in minutes-to-hours,
#: human part swaps within a shift.
DEFAULT_FAULT_PROFILE = FaultProfile(
    name="commodity-2008",
    specs={
        ComponentType.SERVER: FaultSpec(mtbf_hours=17_520.0, mttr_hours=1.0),
        ComponentType.DISK: FaultSpec(mtbf_hours=219_000.0, mttr_hours=8.0),
        ComponentType.NIC: FaultSpec(mtbf_hours=876_000.0, mttr_hours=2.0),
        ComponentType.MEMORY_BLADE: FaultSpec(mtbf_hours=100_000.0, mttr_hours=4.0),
        ComponentType.FLASH_CACHE: FaultSpec(mtbf_hours=500_000.0, mttr_hours=1.0),
        ComponentType.ENCLOSURE_FAN: FaultSpec(mtbf_hours=100_000.0, mttr_hours=2.0),
        ComponentType.ENCLOSURE_PSU: FaultSpec(mtbf_hours=150_000.0, mttr_hours=4.0),
    },
)
