"""Storage device models, including Table 3(a)'s flash and disk parameters.

Table 3(a) of the paper lists four devices::

                 Flash     Laptop disk  Laptop-2 disk  Desktop disk
    Bandwidth    50 MB/s   20 MB/s      20 MB/s        70 MB/s
    Access time  20us rd / 15 ms avg    15 ms avg      4 ms avg
                 200us wr /
                 1.2ms erase
    Locality     (on-board) (remote)    (remote)       (local)
    Capacity     1 GB      200 GB       200 GB         500 GB
    Power (W)    0.5       2            2              10
    Price        $14       $80          $40            $120

``SERVER_DISK_15K`` models srvr1's 15k-RPM enterprise disk (not in Table 3
but implied by the Table 2 description).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StorageKind(enum.Enum):
    DISK = "disk"
    FLASH = "flash"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class StorageLocation(enum.Enum):
    """Whether the device is local to the server or reached over a SAN."""

    LOCAL = "local"
    REMOTE = "remote"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StorageDevice:
    """One storage device with the paper's Table 3(a) parameters.

    ``read_latency_ms``/``write_latency_ms`` are average per-access times
    (seek + rotation for disks; array access for flash).  Flash has an
    additional erase penalty and a finite per-block write endurance
    (the paper cites ~100,000 writes for contemporary NAND).
    """

    name: str
    kind: StorageKind
    bandwidth_mb_s: float
    read_latency_ms: float
    write_latency_ms: float
    capacity_gb: float
    power_w: float
    price_usd: float
    location: StorageLocation = StorageLocation.LOCAL
    erase_latency_ms: float = 0.0
    write_endurance: int = 0  # writes per block; 0 means effectively unlimited

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.read_latency_ms < 0 or self.write_latency_ms < 0:
            raise ValueError("latencies must be >= 0")
        if self.capacity_gb <= 0:
            raise ValueError("capacity must be positive")
        if self.power_w < 0 or self.price_usd < 0:
            raise ValueError("power and price must be >= 0")

    @property
    def is_flash(self) -> bool:
        return self.kind is StorageKind.FLASH

    @property
    def is_remote(self) -> bool:
        return self.location is StorageLocation.REMOTE

    def access_time_ms(self, bytes_transferred: float, write: bool = False) -> float:
        """Average service time for one access of the given size."""
        if bytes_transferred < 0:
            raise ValueError("transfer size must be >= 0")
        latency = self.write_latency_ms if write else self.read_latency_ms
        transfer_ms = bytes_transferred / (self.bandwidth_mb_s * 1000.0)
        return latency + transfer_ms

    def relocated(
        self, location: StorageLocation, extra_latency_ms: float = 0.0
    ) -> "StorageDevice":
        """Return a copy moved to a SAN (adds network round-trip latency)."""
        return StorageDevice(
            name=self.name,
            kind=self.kind,
            bandwidth_mb_s=self.bandwidth_mb_s,
            read_latency_ms=self.read_latency_ms + extra_latency_ms,
            write_latency_ms=self.write_latency_ms + extra_latency_ms,
            capacity_gb=self.capacity_gb,
            power_w=self.power_w,
            price_usd=self.price_usd,
            location=location,
            erase_latency_ms=self.erase_latency_ms,
            write_endurance=self.write_endurance,
        )


#: Table 3(a): local desktop-class 7.2k RPM disk (the baseline in §3.5).
DESKTOP_DISK = StorageDevice(
    name="desktop-disk",
    kind=StorageKind.DISK,
    bandwidth_mb_s=70.0,
    read_latency_ms=4.0,
    write_latency_ms=4.0,
    capacity_gb=500.0,
    power_w=10.0,
    price_usd=120.0,
)

#: Table 3(a): low-power laptop disk on a remote SAN.
LAPTOP_DISK = StorageDevice(
    name="laptop-disk",
    kind=StorageKind.DISK,
    bandwidth_mb_s=20.0,
    read_latency_ms=15.0,
    write_latency_ms=15.0,
    capacity_gb=200.0,
    power_w=2.0,
    price_usd=80.0,
    location=StorageLocation.REMOTE,
)

#: Table 3(a): hypothetical cheaper laptop disk ("laptop-2", $40).
LAPTOP2_DISK = StorageDevice(
    name="laptop-2-disk",
    kind=StorageKind.DISK,
    bandwidth_mb_s=20.0,
    read_latency_ms=15.0,
    write_latency_ms=15.0,
    capacity_gb=200.0,
    power_w=2.0,
    price_usd=40.0,
    location=StorageLocation.REMOTE,
)

#: Table 3(a): 1 GB on-board NAND flash used as a disk cache.
FLASH_1GB = StorageDevice(
    name="flash-1gb",
    kind=StorageKind.FLASH,
    bandwidth_mb_s=50.0,
    read_latency_ms=0.020,
    write_latency_ms=0.200,
    capacity_gb=1.0,
    power_w=0.5,
    price_usd=14.0,
    erase_latency_ms=1.2,
    write_endurance=100_000,
)

#: srvr1's enterprise 15k RPM disk (Table 2: "15k RPM disk").
SERVER_DISK_15K = StorageDevice(
    name="server-disk-15k",
    kind=StorageKind.DISK,
    bandwidth_mb_s=90.0,
    read_latency_ms=3.0,
    write_latency_ms=3.0,
    capacity_gb=300.0,
    power_w=15.0,
    price_usd=275.0,
)
