"""The six-platform catalog (paper Table 2).

===== ===================== ============================================ ==== =====
Name  Similar to            Features                                     Watt Inf-$
===== ===================== ============================================ ==== =====
srvr1 Xeon MP / Opteron MP  2p x 4 cores, 2.6 GHz, OoO, 64K/8MB L1/L2    340  3,294
srvr2 Xeon / Opteron        1p x 4 cores, 2.6 GHz, OoO, 64K/8MB L1/L2    215  1,689
desk  Core 2 / Athlon 64    1p x 2 cores, 2.2 GHz, OoO, 32K/2MB L1/L2    135    849
mobl  Core 2 Mobile/Turion  1p x 2 cores, 2.0 GHz, OoO, 32K/2MB L1/L2     78    989
emb1  PA Semi / emb. Athlon 1p x 2 cores, 1.2 GHz, OoO, 32K/1MB L1/L2     52    499
emb2  AMD Geode / VIA Eden  1p x 1 core, 600 MHz, in-order, 32K/128K      35    379
===== ===================== ============================================ ==== =====

All systems carry 4 GB of memory (FB-DIMM, DDR2, or DDR1).  srvr1 has a
15k RPM disk and a 10 GbE NIC; all others a 7.2k RPM desktop disk and
1 GbE.  Channel counts reflect typical 2008-era platforms: two FB-DIMM
channels per server socket, dual-channel DDR2 on desktop/mobile, single
channel on the embedded boards.
"""

from __future__ import annotations

from typing import Dict, List

from repro.platforms.cpu import CpuModel, Microarchitecture
from repro.platforms.memory import MemoryConfig, MemoryTechnology
from repro.platforms.nic import GIGABIT, TEN_GIGABIT
from repro.platforms.platform import Platform
from repro.platforms.storage import DESKTOP_DISK, SERVER_DISK_15K

_OOO = Microarchitecture.OUT_OF_ORDER
_INO = Microarchitecture.IN_ORDER


PLATFORMS: Dict[str, Platform] = {
    "srvr1": Platform(
        name="srvr1",
        cpu=CpuModel("srvr1-cpu", sockets=2, cores_per_socket=4,
                     frequency_ghz=2.6, microarchitecture=_OOO,
                     l1_kb=64, l2_kb=8192),
        memory=MemoryConfig(
            4.0, MemoryTechnology.FBDIMM, channels=4, numa_efficiency=0.75
        ),
        disk=SERVER_DISK_15K,
        nic=TEN_GIGABIT,
    ),
    "srvr2": Platform(
        name="srvr2",
        cpu=CpuModel("srvr2-cpu", sockets=1, cores_per_socket=4,
                     frequency_ghz=2.6, microarchitecture=_OOO,
                     l1_kb=64, l2_kb=8192),
        memory=MemoryConfig(4.0, MemoryTechnology.FBDIMM, channels=2),
        disk=DESKTOP_DISK,
        nic=GIGABIT,
    ),
    "desk": Platform(
        name="desk",
        cpu=CpuModel("desk-cpu", sockets=1, cores_per_socket=2,
                     frequency_ghz=2.2, microarchitecture=_OOO,
                     l1_kb=32, l2_kb=2048),
        memory=MemoryConfig(4.0, MemoryTechnology.DDR2, channels=2),
        disk=DESKTOP_DISK,
        nic=GIGABIT,
    ),
    "mobl": Platform(
        name="mobl",
        cpu=CpuModel("mobl-cpu", sockets=1, cores_per_socket=2,
                     frequency_ghz=2.0, microarchitecture=_OOO,
                     l1_kb=32, l2_kb=2048),
        memory=MemoryConfig(4.0, MemoryTechnology.DDR2, channels=2),
        disk=DESKTOP_DISK,
        nic=GIGABIT,
    ),
    "emb1": Platform(
        name="emb1",
        cpu=CpuModel("emb1-cpu", sockets=1, cores_per_socket=2,
                     frequency_ghz=1.2, microarchitecture=_OOO,
                     l1_kb=32, l2_kb=1024),
        memory=MemoryConfig(4.0, MemoryTechnology.DDR2, channels=1),
        disk=DESKTOP_DISK,
        nic=GIGABIT,
    ),
    "emb2": Platform(
        name="emb2",
        cpu=CpuModel("emb2-cpu", sockets=1, cores_per_socket=1,
                     frequency_ghz=0.6, microarchitecture=_INO,
                     l1_kb=32, l2_kb=128),
        memory=MemoryConfig(4.0, MemoryTechnology.DDR1, channels=1),
        disk=DESKTOP_DISK,
        nic=GIGABIT,
    ),
}


def platform(name: str) -> Platform:
    """Look up a catalog platform by system name."""
    try:
        return PLATFORMS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown platform {name!r}; known platforms: {sorted(PLATFORMS)}"
        ) from exc


def platform_names() -> List[str]:
    """Catalog platforms in the paper's Table 2 order."""
    return ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"]
