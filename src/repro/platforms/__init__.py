"""Platform (device-level) models for the six systems of Table 2.

A :class:`~repro.platforms.platform.Platform` composes a CPU model, a
memory configuration, a storage device, and a NIC.  The catalog module
instantiates the paper's six systems (srvr1, srvr2, desk, mobl, emb1,
emb2); the calibration module holds the performance-scaling constants the
simulator uses to turn microarchitectural parameters into throughput.
"""

from repro.platforms.cpu import CpuModel, Microarchitecture
from repro.platforms.memory import MemoryConfig, MemoryTechnology
from repro.platforms.storage import (
    StorageDevice,
    DESKTOP_DISK,
    LAPTOP_DISK,
    LAPTOP2_DISK,
    FLASH_1GB,
    SERVER_DISK_15K,
)
from repro.platforms.nic import Nic, GIGABIT, TEN_GIGABIT
from repro.platforms.platform import Platform
from repro.platforms.catalog import PLATFORMS, platform, platform_names
from repro.platforms.calibration import CalibrationConstants, DEFAULT_CALIBRATION

__all__ = [
    "CpuModel",
    "Microarchitecture",
    "MemoryConfig",
    "MemoryTechnology",
    "StorageDevice",
    "DESKTOP_DISK",
    "LAPTOP_DISK",
    "LAPTOP2_DISK",
    "FLASH_1GB",
    "SERVER_DISK_15K",
    "Nic",
    "GIGABIT",
    "TEN_GIGABIT",
    "Platform",
    "PLATFORMS",
    "platform",
    "platform_names",
    "CalibrationConstants",
    "DEFAULT_CALIBRATION",
]
