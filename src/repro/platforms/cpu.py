"""CPU models mirroring the paper's Table 2 microarchitecture column.

Each system is described by socket count, cores per socket, frequency,
issue style (out-of-order vs in-order) and L1/L2 cache sizes, e.g.
srvr1 = "2p x 4 cores, 2.6 GHz, OoO, 64K/8MB L1/L2".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Microarchitecture(enum.Enum):
    """Issue style; in-order cores sustain a lower IPC on server code."""

    OUT_OF_ORDER = "OoO"
    IN_ORDER = "in-order"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CpuModel:
    """One CPU configuration from Table 2."""

    name: str
    sockets: int
    cores_per_socket: int
    frequency_ghz: float
    microarchitecture: Microarchitecture
    l1_kb: int
    l2_kb: int

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("sockets and cores_per_socket must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.l1_kb <= 0 or self.l2_kb <= 0:
            raise ValueError("cache sizes must be positive")

    @property
    def total_cores(self) -> int:
        """Total hardware cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def l2_mb(self) -> float:
        return self.l2_kb / 1024.0

    @property
    def is_out_of_order(self) -> bool:
        return self.microarchitecture is Microarchitecture.OUT_OF_ORDER

    def summary(self) -> str:
        """Table 2-style one-line description."""
        l2 = f"{self.l2_kb // 1024}MB" if self.l2_kb >= 1024 else f"{self.l2_kb}K"
        freq = (
            f"{self.frequency_ghz:.1f} GHz"
            if self.frequency_ghz >= 1
            else f"{self.frequency_ghz * 1000:.0f}MHz"
        )
        return (
            f"{self.sockets}p x {self.cores_per_socket} cores, {freq}, "
            f"{self.microarchitecture}, {self.l1_kb}K/{l2} L1/L2"
        )
