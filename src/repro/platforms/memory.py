"""Memory-technology models: FB-DIMM, DDR2, DDR1, and low-power modes.

All six Table 2 systems carry 4 GB of memory, in the technology specific
to the platform (FB-DIMM for srvr1/srvr2, DDR2 for desk/mobl/emb1, DDR1
for emb2).  The memory-blade design of section 3.4 additionally exploits
DDR2's *active power-down* mode, which reduces device power by more than
90% at a 6-DRAM-cycle wake latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryTechnology(enum.Enum):
    """DRAM technology generations used across the Table 2 systems."""

    FBDIMM = "FB-DIMM"
    DDR2 = "DDR2"
    DDR1 = "DDR1"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def bandwidth_factor(self) -> float:
        """Sustained per-channel bandwidth relative to FB-DIMM.

        FB-DIMM's buffered channels sustain higher bandwidth than the raw
        DDR2 devices they carry; DDR1 is roughly half of DDR2.
        """
        return {_T.FBDIMM: 1.0, _T.DDR2: 0.8, _T.DDR1: 0.4}[self]

    @property
    def active_powerdown_savings(self) -> float:
        """Fraction of device power saved in active power-down mode.

        The paper cites "more than 90% in DDR2" from the Micron power
        calculator; FB-DIMM's advanced memory buffer limits savings.
        """
        return {_T.FBDIMM: 0.55, _T.DDR2: 0.90, _T.DDR1: 0.85}[self]

    @property
    def powerdown_wake_cycles(self) -> int:
        """DRAM cycles to exit active power-down (paper: 6 cycles)."""
        return 6


_T = MemoryTechnology


@dataclass(frozen=True)
class MemoryConfig:
    """A server's memory subsystem: capacity, technology, channel count.

    ``numa_efficiency`` discounts per-channel throughput on multi-socket
    systems where cross-socket traffic and interleaving overheads keep the
    channels from being fully utilized (srvr1 uses 0.75).
    """

    capacity_gb: float
    technology: MemoryTechnology
    channels: int = 1
    numa_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("memory capacity must be positive")
        if self.channels <= 0:
            raise ValueError("channel count must be positive")
        if not 0.0 < self.numa_efficiency <= 1.0:
            raise ValueError("numa_efficiency must be in (0, 1]")

    @property
    def channel_bandwidth_factor(self) -> float:
        """Effective per-channel bandwidth relative to one FB-DIMM channel."""
        return self.technology.bandwidth_factor * self.numa_efficiency

    @property
    def total_bandwidth_factor(self) -> float:
        """Aggregate bandwidth relative to one FB-DIMM channel."""
        return self.channels * self.channel_bandwidth_factor

    def resized(self, capacity_gb: float) -> "MemoryConfig":
        """Return a copy with a different capacity (used by memory blades)."""
        return MemoryConfig(
            capacity_gb, self.technology, self.channels, self.numa_efficiency
        )
