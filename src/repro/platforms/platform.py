"""Platform composition: CPU + memory + storage + NIC.

A :class:`Platform` is the performance-relevant description of one Table 2
system.  The cost-relevant description is the matching
:class:`repro.costmodel.components.ServerBill`; the two are linked by name
through the catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.platforms.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.platforms.cpu import CpuModel
from repro.platforms.memory import MemoryConfig
from repro.platforms.nic import Nic
from repro.platforms.storage import StorageDevice


@dataclass(frozen=True)
class Platform:
    """One complete system configuration from Table 2."""

    name: str
    cpu: CpuModel
    memory: MemoryConfig
    disk: StorageDevice
    nic: Nic
    calibration: CalibrationConstants = DEFAULT_CALIBRATION

    def core_speed(
        self, cache_sensitivity: float, inorder_ipc_factor: float | None = None
    ) -> float:
        """Effective per-core speed in reference-GHz units.

        ``cache_sensitivity`` is the workload's exponent on L2 size (0 for
        cache-insensitive streaming workloads, larger for workloads with
        big instruction/data footprints such as websearch and webmail).
        ``inorder_ipc_factor`` optionally overrides the calibration's
        default in-order IPC penalty with a workload-specific one (in-order
        cores lose more on branchy pointer-chasing code than on streaming
        copies).  The reference core is srvr1's: 2.6 GHz, out-of-order,
        8 MB L2.
        """
        cal = self.calibration
        if self.cpu.is_out_of_order:
            ipc = cal.ipc_out_of_order
        else:
            ipc = inorder_ipc_factor if inorder_ipc_factor is not None else cal.ipc_in_order
        cache_factor = min(
            1.0, (self.cpu.l2_mb / cal.reference_l2_mb) ** max(0.0, cache_sensitivity)
        )
        return self.cpu.frequency_ghz * ipc * cache_factor

    def cpu_time_ms(
        self,
        cpu_ms_ref: float,
        cache_sensitivity: float,
        inorder_ipc_factor: float | None = None,
        stall_fraction: float = 0.0,
    ) -> float:
        """Per-request CPU service time on one of this platform's cores.

        ``cpu_ms_ref`` is the request's CPU demand expressed as
        milliseconds on the reference core.  ``stall_fraction`` is the
        share of that time spent in fixed-latency memory stalls, which
        does not shrink (or grow) with core speed -- slower cores lose
        proportionally fewer cycles to DRAM latency.
        """
        if not 0.0 <= stall_fraction < 1.0:
            raise ValueError("stall fraction must be in [0, 1)")
        speed = self.core_speed(cache_sensitivity, inorder_ipc_factor)
        scaling = self.calibration.reference_core_speed / speed
        return cpu_ms_ref * (stall_fraction + (1.0 - stall_fraction) * scaling)

    def memory_channel_time_ms(self, mem_ms_ref: float) -> float:
        """Per-request service time on one memory channel.

        ``mem_ms_ref`` is the request's memory-bus demand expressed as
        milliseconds on one reference (FB-DIMM) channel.
        """
        return mem_ms_ref / self.memory.channel_bandwidth_factor

    def disk_time_ms(self, ios: float, bytes_transferred: float, write: bool = False) -> float:
        """Per-request disk service time: ``ios`` seeks plus the transfer."""
        if ios < 0:
            raise ValueError("I/O count must be >= 0")
        latency = (
            self.disk.write_latency_ms if write else self.disk.read_latency_ms
        )
        return ios * latency + bytes_transferred / (self.disk.bandwidth_mb_s * 1000.0)

    def net_time_ms(self, num_bytes: float) -> float:
        """Per-request NIC service time."""
        return self.nic.transfer_time_ms(num_bytes)

    def with_disk(self, disk: StorageDevice) -> "Platform":
        """Return a copy using a different storage device (section 3.5)."""
        return _dc_replace(self, disk=disk)

    def with_memory(self, memory: MemoryConfig) -> "Platform":
        """Return a copy using a different memory config (section 3.4)."""
        return _dc_replace(self, memory=memory)
