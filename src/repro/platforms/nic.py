"""Network interface models.

Table 2: srvr1 carries a 10-gigabit NIC; every other system a 1-gigabit
NIC.  Service times in the simulator are dominated by wire transfer time,
so the model is bandwidth plus a small fixed per-transfer overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Nic:
    """One network interface: line rate and per-transfer overhead."""

    name: str
    bandwidth_gbps: float
    per_transfer_overhead_ms: float = 0.01

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.per_transfer_overhead_ms < 0:
            raise ValueError("overhead must be >= 0")

    @property
    def bandwidth_mb_s(self) -> float:
        """Usable bandwidth in megabytes/second (8 bits/byte, no headroom)."""
        return self.bandwidth_gbps * 1000.0 / 8.0

    def transfer_time_ms(self, num_bytes: float) -> float:
        """Wire time for one transfer of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("transfer size must be >= 0")
        return self.per_transfer_overhead_ms + num_bytes / (self.bandwidth_mb_s * 1000.0)


#: 1 GbE NIC used by every system except srvr1.
GIGABIT = Nic(name="1GbE", bandwidth_gbps=1.0)

#: 10 GbE NIC used by srvr1.
TEN_GIGABIT = Nic(name="10GbE", bandwidth_gbps=10.0)
