"""Performance-calibration constants for the platform model.

The paper measures performance with a full-system simulator (COTSon); we
replace it with a request-level model whose platform-scaling constants are
collected here so that every assumption is explicit and testable.

The constants map Table 2 microarchitecture parameters onto effective
per-core speed:

- out-of-order cores are the reference (IPC factor 1.0); in-order cores
  (emb2's Geode/Eden-N class) sustain a substantially lower IPC on branchy
  server code,
- effective speed scales linearly with frequency and with an L2-size
  factor ``(l2_mb / 8) ** cache_sensitivity`` where the sensitivity
  exponent is a workload property (0 for streaming workloads).

The reference core is srvr1's 2.6 GHz out-of-order core with 8 MB L2;
workload CPU demands are expressed in milliseconds on that core.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationConstants:
    """Platform-model scaling constants (shared across workloads)."""

    #: IPC factor of out-of-order cores (reference).
    ipc_out_of_order: float = 1.0
    #: IPC factor of single-issue in-order cores on server code.
    ipc_in_order: float = 0.45
    #: L2 size of the reference core, MB.
    reference_l2_mb: float = 8.0
    #: Effective speed of the reference core (GHz x IPC factor).
    reference_core_speed: float = 2.6

    def __post_init__(self) -> None:
        if not 0 < self.ipc_in_order <= self.ipc_out_of_order:
            raise ValueError("need 0 < ipc_in_order <= ipc_out_of_order")
        if self.reference_l2_mb <= 0 or self.reference_core_speed <= 0:
            raise ValueError("reference parameters must be positive")


#: Default calibration used by the platform catalog.
DEFAULT_CALIBRATION = CalibrationConstants()
