"""Request-level discrete-event server simulator and analytic model.

This package replaces the paper's COTSon full-system simulation and
Perl client driver:

- :mod:`~repro.simulator.engine` -- event-driven simulation core.
- :mod:`~repro.simulator.resources` -- multi-server FCFS resources
  (CPU cores, memory channels, disk, NIC).
- :mod:`~repro.simulator.server_sim` -- a closed-loop server simulation:
  N clients with think time issuing workload requests against platform
  resources, measuring throughput and tail latency.
- :mod:`~repro.simulator.sweep` -- the adaptive client driver: finds the
  highest throughput that still meets the workload's QoS.
- :mod:`~repro.simulator.analytic` -- approximate mean-value analysis of
  the same closed queueing network, used for fast exploration and
  cross-validation of the DES.
- :mod:`~repro.simulator.performance` -- the top-level entry point that
  scores one (platform, workload) pair the way Figure 2(c) does.
"""

from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.simulator.server_sim import ServerSimulator, SimConfig, SimResult
from repro.simulator.openloop import OpenLoopSimulator
from repro.simulator.telemetry import (
    AvailabilityTracker,
    EntityAvailability,
    LatencyHistogram,
    TimeSeries,
)
from repro.simulator.queueing import (
    mm1k_blocking_probability,
    mm1k_mean_number,
    mm1k_mean_wait,
)
from repro.simulator.sweep import QosSweep, SweepResult
from repro.simulator.analytic import AnalyticServerModel, mva_throughput
from repro.simulator.performance import (
    PerformanceResult,
    measure_performance,
    relative_performance_matrix,
)

__all__ = [
    "Simulation",
    "Resource",
    "ServerSimulator",
    "SimConfig",
    "SimResult",
    "OpenLoopSimulator",
    "AvailabilityTracker",
    "EntityAvailability",
    "LatencyHistogram",
    "TimeSeries",
    "mm1k_blocking_probability",
    "mm1k_mean_number",
    "mm1k_mean_wait",
    "QosSweep",
    "SweepResult",
    "AnalyticServerModel",
    "mva_throughput",
    "PerformanceResult",
    "measure_performance",
    "relative_performance_matrix",
]
