"""Approximate mean-value analysis (MVA) of the server queueing network.

The closed-loop server simulation of :mod:`repro.simulator.server_sim` is
a product-form-ish closed queueing network: N clients with think time Z
cycling through four stations (CPU cores, memory channels, disk, NIC).
This module solves the same network analytically with classic exact MVA
plus the Seidmann approximation for multi-server stations (an m-server
station becomes a single queueing station with demand D/m plus a pure
delay of D*(m-1)/m).

The analytic model is used for fast design-space exploration, as the
initial guess for the QoS sweep, and as a cross-check on the DES in the
test suite (the two agree within a few percent at saturation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.platforms.platform import Platform
from repro.workloads.base import Workload


def mva_throughput(
    stations: Sequence[Tuple[float, int]],
    population: int,
    think_ms: float = 0.0,
) -> float:
    """Closed-network throughput (requests/ms) by approximate MVA.

    ``stations`` is a sequence of ``(service_demand_ms, servers)`` pairs;
    ``population`` is the number of circulating clients; ``think_ms`` is
    the pure think-time delay.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    if think_ms < 0:
        raise ValueError("think time must be >= 0")
    queue_demands: List[float] = []
    delay = think_ms
    for demand, servers in stations:
        if demand < 0 or servers <= 0:
            raise ValueError("invalid station parameters")
        if demand == 0:
            continue
        queue_demands.append(demand / servers)
        delay += demand * (servers - 1) / servers
    if not queue_demands:
        return float("inf") if delay == 0 else population / delay

    queue_lengths = [0.0] * len(queue_demands)
    throughput = 0.0
    for n in range(1, population + 1):
        residence = [d * (1.0 + q) for d, q in zip(queue_demands, queue_lengths)]
        total = sum(residence) + delay
        throughput = n / total
        queue_lengths = [throughput * r for r in residence]
    return throughput


@dataclass(frozen=True)
class AnalyticServerModel:
    """MVA model of one (platform, workload) pair.

    ``disk_service_ms`` overrides the platform disk's mean service time
    (used for the SAN/flash-cache configurations of section 3.5);
    ``cpu_multiplier`` models uniform CPU slowdowns such as the 2%
    remote-memory paging overhead of section 3.4.
    """

    platform: Platform
    workload: Workload
    disk_service_ms: Optional[float] = None
    cpu_multiplier: float = 1.0

    def service_demands(self) -> List[Tuple[float, int]]:
        """Per-request mean service demands as ``(ms, servers)`` stations."""
        platform = self.platform
        profile = self.workload.profile
        demand = self.workload.mean_demand()
        disk_ms = (
            self.disk_service_ms
            if self.disk_service_ms is not None
            else platform.disk_time_ms(
                demand.disk_ios, demand.disk_bytes, write=demand.disk_write
            )
        )
        return [
            (
                platform.cpu_time_ms(
                    demand.cpu_ms_ref,
                    profile.cache_sensitivity,
                    profile.inorder_ipc_factor,
                    profile.stall_fraction,
                )
                * self.cpu_multiplier,
                platform.cpu.total_cores,
            ),
            (
                platform.memory_channel_time_ms(demand.mem_ms_ref),
                platform.memory.channels,
            ),
            (disk_ms, 1),
            (platform.net_time_ms(demand.net_bytes), 1),
        ]

    def throughput_rps(self, population: Optional[int] = None) -> float:
        """Closed-loop throughput in requests/second."""
        profile = self.workload.profile
        n = (
            population
            if population is not None
            else profile.population.population(self.platform.cpu.total_cores)
        )
        per_ms = mva_throughput(self.service_demands(), n, profile.think_time_ms)
        return per_ms * 1000.0

    def saturation_rps(self) -> float:
        """Asymptotic bound: min over stations of capacity/demand."""
        best = float("inf")
        for demand, servers in self.service_demands():
            if demand > 0:
                best = min(best, servers / demand)
        return best * 1000.0

    def bottleneck(self) -> str:
        """Name of the station with the highest per-server demand."""
        names = ["cpu", "mem", "disk", "nic"]
        demands = self.service_demands()
        per_server = [d / s for d, s in demands]
        return names[per_server.index(max(per_server))]
