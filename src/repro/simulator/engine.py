"""Discrete-event simulation core.

A minimal, fast event loop: callbacks scheduled at absolute simulated
times (milliseconds), executed in time order with FIFO tie-breaking.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class Simulation:
    """An event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def schedule(self, delay_ms: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0:
            raise ValueError(f"cannot schedule in the past (delay {delay_ms})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay_ms, self._seq, callback))

    def schedule_at(self, time_ms: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``."""
        self.schedule(time_ms - self._now, callback)

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    def run(self, until_ms: Optional[float] = None) -> None:
        """Process events until the queue drains, ``stop()`` is called, or
        the clock would pass ``until_ms``."""
        self._stopped = False
        while self._heap and not self._stopped:
            time, _, callback = self._heap[0]
            if until_ms is not None and time > until_ms:
                self._now = until_ms
                return
            heapq.heappop(self._heap)
            self._now = time
            callback()

    @property
    def pending_events(self) -> int:
        return len(self._heap)
