"""Discrete-event simulation core.

A minimal, fast event loop: callbacks scheduled at absolute simulated
times (milliseconds), executed in time order with FIFO tie-breaking.

The implementation is tuned for the per-event overhead that dominates
DES-backed experiments (``PERF.md`` in ``docs/performance.md``):

- heap entries are plain ``(time, seq, callback)`` tuples so ordering
  uses CPython's C tuple comparison (``seq`` is unique, so callbacks are
  never compared);
- the dispatch loop binds ``heappop`` and the heap list to locals and is
  split into with/without-``until_ms`` variants so the common path pays
  no per-event ``is not None`` test;
- timers can be *lazily cancelled*: :meth:`cancel` marks the entry dead
  in O(1) and the loop skips it when popped; once dead entries outnumber
  half the heap, one in-place sweep-and-heapify reclaims them, so a
  request path that schedules a timeout per attempt (the cluster
  balancer) does not drag thousands of dead timers through every heap
  operation;
- :meth:`schedule_batch` bulk-loads events with a single ``heapify``
  when the queue is empty (initial client populations, benchmarks), and
  under *mixed* load -- a live heap plus a large incoming batch -- it
  appends and re-heapifies in one O(n + k) pass instead of k pushes,
  which is what restored ``engine_batch`` parity with the legacy engine
  (k pushes cost O(k log n) with a far larger constant per push);
- the dispatch loop unpacks each entry once (``time, seq, cb = pop()``)
  instead of indexing it three times, and checks ``stop()`` *after* the
  callback: ``run()`` resets ``_stopped`` on entry and only a callback
  can set it, so the pre-callback check was a branch that could never
  fire on the first iteration and paid per event forever after.

:class:`CohortSimulation` extends the loop with *event cohorts*:
same-timestamp, same-kind event batches (arrivals, timer pops, service
completions) scheduled as one heap entry carrying an opaque payload and
drained through a single handler call, so vectorized kernels
(:mod:`repro.perf.kernels`) replace per-event Python dispatch.

Tiny *negative* delays produced by float round-off (an absolute target
computed as ``t - now`` landing one ulp in the past) are clamped to zero
instead of raising; genuinely past targets still raise ``ValueError``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Iterable, List, Optional, Set, Tuple

Callback = Callable[[], None]

#: Negative delays no larger than this absolute slack -- plus a relative
#: term scaled by the current clock, since float error grows with the
#: magnitude of ``now`` -- are treated as round-off and clamped to 0.
PAST_EPSILON_MS = 1e-9
PAST_RELATIVE_EPSILON = 1e-12


class Simulation:
    """An event-driven simulation clock and scheduler."""

    __slots__ = ("_heap", "_now", "_seq", "_stopped", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        #: Sequence numbers of scheduled-but-cancelled timers (lazy).
        self._cancelled: Set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def _clamped(self, delay_ms: float) -> float:
        """Clamp round-off negatives to 0; raise for the genuinely past."""
        if delay_ms >= -(PAST_EPSILON_MS + PAST_RELATIVE_EPSILON * self._now):
            return 0.0
        raise ValueError(f"cannot schedule in the past (delay {delay_ms})")

    def schedule(self, delay_ms: float, callback: Callback, _push=heappush) -> None:
        """Run ``callback`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0.0:
            delay_ms = self._clamped(delay_ms)
        self._seq = seq = self._seq + 1
        _push(self._heap, (self._now + delay_ms, seq, callback))

    def schedule_at(self, time_ms: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``."""
        self.schedule(time_ms - self._now, callback)

    def schedule_timer(self, delay_ms: float, callback: Callback, _push=heappush) -> int:
        """Like :meth:`schedule`, returning a handle for :meth:`cancel`."""
        if delay_ms < 0.0:
            delay_ms = self._clamped(delay_ms)
        self._seq = seq = self._seq + 1
        _push(self._heap, (self._now + delay_ms, seq, callback))
        return seq

    def cancel(self, timer: int) -> None:
        """Cancel a timer returned by :meth:`schedule_timer`.

        O(1): the entry is only marked dead; the dispatch loop discards
        it when popped.  When dead entries outnumber half the queue, one
        in-place sweep rebuilds the heap without them, keeping heap
        operations logarithmic in the number of *live* events.  Calling
        this for a timer that already fired is a harmless no-op (the
        stale mark is dropped at the next sweep).
        """
        cancelled = self._cancelled
        cancelled.add(timer)
        heap = self._heap
        if len(cancelled) * 2 > len(heap):
            heap[:] = [entry for entry in heap if entry[1] not in cancelled]
            heapify(heap)
            cancelled.clear()

    def schedule_batch(self, events: Iterable[Tuple[float, Callback]]) -> None:
        """Schedule many ``(delay_ms, callback)`` pairs at once.

        FIFO tie-breaking follows iteration order, exactly as repeated
        :meth:`schedule` calls would.  The batch is staged into a plain
        list first; it is then merged with a single ``heapify`` whenever
        that is the cheaper move -- always for an empty queue, and under
        mixed load whenever the batch is not tiny relative to the live
        heap (``heapify`` is O(n + k) with a small constant, k pushes
        are O(k log n) with a large one).  Only a genuinely small batch
        against a big heap falls back to individual pushes.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        staged: List[Tuple[float, int, Callback]] = []
        append = staged.append
        for delay_ms, callback in events:
            if delay_ms < 0.0:
                delay_ms = self._clamped(delay_ms)
            seq += 1
            append((now + delay_ms, seq, callback))
        self._seq = seq
        if not staged:
            return
        if len(staged) * 8 >= len(heap):
            heap.extend(staged)
            heapify(heap)
        else:
            push = heappush
            for entry in staged:
                push(heap, entry)

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    def run(self, until_ms: Optional[float] = None) -> None:
        """Process events until the queue drains, ``stop()`` is called, or
        the clock would pass ``until_ms``.

        ``_stopped`` is reset on entry and only a callback can set it,
        so the loop checks it *after* dispatching -- semantically
        identical to a pre-pop check, one branch cheaper per event.
        """
        self._stopped = False
        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        if until_ms is None:
            while heap:
                time, seq, callback = pop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self._now = time
                callback()
                if self._stopped:
                    return
        else:
            while heap:
                time = heap[0][0]
                if time > until_ms:
                    self._now = until_ms
                    return
                _, seq, callback = pop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self._now = time
                callback()
                if self._stopped:
                    return

    @property
    def pending_events(self) -> int:
        """Queued entries, including cancelled timers not yet reclaimed."""
        return len(self._heap)


#: Cohort handler: ``(kind, payloads)`` where ``payloads`` lists every
#: same-time, same-kind payload drained together (schedule order).
CohortHandler = Callable[[str, List[object]], None]


class CohortSimulation(Simulation):
    """A :class:`Simulation` that can drain *event cohorts*.

    A cohort is a batch of same-kind work -- an arrival wave, a block of
    timer pops, a window's service completions -- scheduled as ONE heap
    entry ``(time, seq, kind, payload)`` and dispatched through a single
    handler call instead of per-event Python callbacks.  Consecutive
    cohort entries at the *same timestamp with the same kind* are merged
    into one handler invocation, so a shard that schedules per-server
    sub-batches at a window boundary still pays one dispatch.

    Cohort entries interleave safely with ordinary events: ``seq`` is
    unique, so tuple comparison never reaches the kind/payload slots,
    and ordering between a cohort and a plain event follows the usual
    (time, seq) FIFO rule.  Everything else -- :meth:`cancel`,
    :meth:`schedule_batch`, ``until_ms`` semantics -- is inherited.
    """

    __slots__ = ("_handler",)

    def __init__(self) -> None:
        super().__init__()
        self._handler: Optional[CohortHandler] = None

    def set_cohort_handler(self, handler: CohortHandler) -> None:
        """Install the single dispatch target for all cohort kinds."""
        self._handler = handler

    def schedule_cohort(
        self, delay_ms: float, kind: str, payload: object, _push=heappush
    ) -> int:
        """Schedule a cohort of ``kind`` after ``delay_ms``; returns a
        handle usable with :meth:`cancel` like any timer."""
        if delay_ms < 0.0:
            delay_ms = self._clamped(delay_ms)
        self._seq = seq = self._seq + 1
        _push(self._heap, (self._now + delay_ms, seq, kind, payload))
        return seq

    def run(self, until_ms: Optional[float] = None) -> None:
        """Cohort-aware dispatch loop (see :meth:`Simulation.run`)."""
        self._stopped = False
        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        while heap:
            time = heap[0][0]
            if until_ms is not None and time > until_ms:
                self._now = until_ms
                return
            entry = pop(heap)
            seq = entry[1]
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            if len(entry) == 4:
                kind = entry[2]
                payloads = [entry[3]]
                while heap:
                    head = heap[0]
                    if head[0] != time or len(head) != 4 or head[2] != kind:
                        break
                    pop(heap)
                    hseq = head[1]
                    if cancelled and hseq in cancelled:
                        cancelled.discard(hseq)
                        continue
                    payloads.append(head[3])
                handler = self._handler
                if handler is None:
                    raise RuntimeError(
                        "cohort scheduled without a handler: call "
                        "set_cohort_handler() before run()"
                    )
                handler(kind, payloads)
            else:
                entry[2]()
            if self._stopped:
                return
