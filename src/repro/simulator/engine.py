"""Discrete-event simulation core.

A minimal, fast event loop: callbacks scheduled at absolute simulated
times (milliseconds), executed in time order with FIFO tie-breaking.

The implementation is tuned for the per-event overhead that dominates
DES-backed experiments (``PERF.md`` in ``docs/performance.md``):

- heap entries are plain ``(time, seq, callback)`` tuples so ordering
  uses CPython's C tuple comparison (``seq`` is unique, so callbacks are
  never compared);
- the dispatch loop binds ``heappop`` and the heap list to locals and is
  split into with/without-``until_ms`` variants so the common path pays
  no per-event ``is not None`` test;
- timers can be *lazily cancelled*: :meth:`cancel` marks the entry dead
  in O(1) and the loop skips it when popped; once dead entries outnumber
  half the heap, one in-place sweep-and-heapify reclaims them, so a
  request path that schedules a timeout per attempt (the cluster
  balancer) does not drag thousands of dead timers through every heap
  operation;
- :meth:`schedule_batch` bulk-loads events with a single ``heapify``
  when the queue is empty (initial client populations, benchmarks).

Tiny *negative* delays produced by float round-off (an absolute target
computed as ``t - now`` landing one ulp in the past) are clamped to zero
instead of raising; genuinely past targets still raise ``ValueError``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Iterable, List, Optional, Set, Tuple

Callback = Callable[[], None]

#: Negative delays no larger than this absolute slack -- plus a relative
#: term scaled by the current clock, since float error grows with the
#: magnitude of ``now`` -- are treated as round-off and clamped to 0.
PAST_EPSILON_MS = 1e-9
PAST_RELATIVE_EPSILON = 1e-12


class Simulation:
    """An event-driven simulation clock and scheduler."""

    __slots__ = ("_heap", "_now", "_seq", "_stopped", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        #: Sequence numbers of scheduled-but-cancelled timers (lazy).
        self._cancelled: Set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def _clamped(self, delay_ms: float) -> float:
        """Clamp round-off negatives to 0; raise for the genuinely past."""
        if delay_ms >= -(PAST_EPSILON_MS + PAST_RELATIVE_EPSILON * self._now):
            return 0.0
        raise ValueError(f"cannot schedule in the past (delay {delay_ms})")

    def schedule(self, delay_ms: float, callback: Callback, _push=heappush) -> None:
        """Run ``callback`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0.0:
            delay_ms = self._clamped(delay_ms)
        self._seq = seq = self._seq + 1
        _push(self._heap, (self._now + delay_ms, seq, callback))

    def schedule_at(self, time_ms: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``."""
        self.schedule(time_ms - self._now, callback)

    def schedule_timer(self, delay_ms: float, callback: Callback, _push=heappush) -> int:
        """Like :meth:`schedule`, returning a handle for :meth:`cancel`."""
        if delay_ms < 0.0:
            delay_ms = self._clamped(delay_ms)
        self._seq = seq = self._seq + 1
        _push(self._heap, (self._now + delay_ms, seq, callback))
        return seq

    def cancel(self, timer: int) -> None:
        """Cancel a timer returned by :meth:`schedule_timer`.

        O(1): the entry is only marked dead; the dispatch loop discards
        it when popped.  When dead entries outnumber half the queue, one
        in-place sweep rebuilds the heap without them, keeping heap
        operations logarithmic in the number of *live* events.  Calling
        this for a timer that already fired is a harmless no-op (the
        stale mark is dropped at the next sweep).
        """
        cancelled = self._cancelled
        cancelled.add(timer)
        heap = self._heap
        if len(cancelled) * 2 > len(heap):
            heap[:] = [entry for entry in heap if entry[1] not in cancelled]
            heapify(heap)
            cancelled.clear()

    def schedule_batch(self, events: Iterable[Tuple[float, Callback]]) -> None:
        """Schedule many ``(delay_ms, callback)`` pairs at once.

        FIFO tie-breaking follows iteration order, exactly as repeated
        :meth:`schedule` calls would; with an empty queue the batch is
        loaded with a single ``heapify`` instead of n pushes.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        bulk = not heap
        for delay_ms, callback in events:
            if delay_ms < 0.0:
                delay_ms = self._clamped(delay_ms)
            seq += 1
            entry = (now + delay_ms, seq, callback)
            if bulk:
                heap.append(entry)
            else:
                heappush(heap, entry)
        self._seq = seq
        if bulk:
            heapify(heap)

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    def run(self, until_ms: Optional[float] = None) -> None:
        """Process events until the queue drains, ``stop()`` is called, or
        the clock would pass ``until_ms``."""
        self._stopped = False
        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        if until_ms is None:
            while heap:
                if self._stopped:
                    return
                entry = pop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self._now = entry[0]
                entry[2]()
        else:
            while heap:
                if self._stopped:
                    return
                entry = heap[0]
                time = entry[0]
                if time > until_ms:
                    self._now = until_ms
                    return
                pop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self._now = time
                entry[2]()

    @property
    def pending_events(self) -> int:
        """Queued entries, including cancelled timers not yet reclaimed."""
        return len(self._heap)
