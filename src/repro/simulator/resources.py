"""Multi-server FCFS resources for the server simulator.

Each server resource (CPU core pool, memory channels, disk, NIC) is a
:class:`Resource`: ``servers`` identical service stations fed by one FCFS
queue.  Jobs are (service-time, completion-callback) pairs; the resource
tracks busy time and completions for utilization reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.simulator.engine import Simulation


@dataclass
class ResourceStats:
    """Aggregate counters for one resource."""

    busy_time_ms: float = 0.0
    completions: int = 0
    peak_queue: int = 0
    #: Jobs cancelled by their ``on_start`` gate before any service.
    cancelled: int = 0


class Resource:
    """``servers`` parallel stations behind one FCFS queue."""

    def __init__(self, sim: Simulation, name: str, servers: int):
        if servers <= 0:
            raise ValueError("server count must be positive")
        self._sim = sim
        self.name = name
        self.servers = servers
        self._busy = 0
        self._queue: Deque[
            Tuple[float, Callable[[], None], Optional[Callable[[], bool]]]
        ] = deque()
        self.stats = ResourceStats()

    def acquire(
        self,
        service_ms: float,
        done: Callable[[], None],
        on_start: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Request ``service_ms`` of service; ``done`` fires on completion.

        ``on_start``, if given, is called at the instant a station would
        begin serving the job (after any queueing).  Returning ``False``
        cancels the job without consuming service -- the station serves
        the next queued job instead and ``done`` never fires.  This is
        the hook deadline-based load shedding uses to drop stale work at
        dequeue rather than serving it uselessly.
        """
        if service_ms < 0:
            raise ValueError("service time must be >= 0")
        if self._busy < self.servers:
            self._start(service_ms, done, on_start)
        else:
            self._queue.append((service_ms, done, on_start))
            if len(self._queue) > self.stats.peak_queue:
                self.stats.peak_queue = len(self._queue)

    def _start(
        self,
        service_ms: float,
        done: Callable[[], None],
        on_start: Optional[Callable[[], bool]] = None,
    ) -> None:
        while on_start is not None and not on_start():
            # Cancelled at the head of the queue: shed it and pull the
            # next waiting job into the free station instead.
            self.stats.cancelled += 1
            if not self._queue:
                return
            service_ms, done, on_start = self._queue.popleft()
        self._busy += 1
        self.stats.busy_time_ms += service_ms

        def finish() -> None:
            self._busy -= 1
            if self._queue:
                self._start(*self._queue.popleft())
            self.stats.completions += 1
            done()

        self._sim.schedule(service_ms, finish)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return self._busy

    def utilization(self, elapsed_ms: float) -> float:
        """Mean fraction of stations busy over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ms / (self.servers * elapsed_ms))
