"""Multi-server FCFS resources for the server simulator.

Each server resource (CPU core pool, memory channels, disk, NIC) is a
:class:`Resource`: ``servers`` identical service stations fed by one FCFS
queue.  Jobs are (service-time, completion-callback) pairs; the resource
tracks busy time and completions for utilization reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Tuple

from repro.simulator.engine import Simulation


@dataclass
class ResourceStats:
    """Aggregate counters for one resource."""

    busy_time_ms: float = 0.0
    completions: int = 0
    peak_queue: int = 0


class Resource:
    """``servers`` parallel stations behind one FCFS queue."""

    def __init__(self, sim: Simulation, name: str, servers: int):
        if servers <= 0:
            raise ValueError("server count must be positive")
        self._sim = sim
        self.name = name
        self.servers = servers
        self._busy = 0
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self.stats = ResourceStats()

    def acquire(self, service_ms: float, done: Callable[[], None]) -> None:
        """Request ``service_ms`` of service; ``done`` fires on completion."""
        if service_ms < 0:
            raise ValueError("service time must be >= 0")
        if self._busy < self.servers:
            self._start(service_ms, done)
        else:
            self._queue.append((service_ms, done))
            if len(self._queue) > self.stats.peak_queue:
                self.stats.peak_queue = len(self._queue)

    def _start(self, service_ms: float, done: Callable[[], None]) -> None:
        self._busy += 1
        self.stats.busy_time_ms += service_ms

        def finish() -> None:
            self._busy -= 1
            if self._queue:
                next_service, next_done = self._queue.popleft()
                self._start(next_service, next_done)
            self.stats.completions += 1
            done()

        self._sim.schedule(service_ms, finish)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return self._busy

    def utilization(self, elapsed_ms: float) -> float:
        """Mean fraction of stations busy over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ms / (self.servers * elapsed_ms))
