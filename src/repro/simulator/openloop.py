"""Open-loop (Poisson-arrival) server simulation.

The closed-loop simulator answers "what is the peak?"; this one answers
"what is the latency at a given load?" -- requests arrive in a Poisson
stream at ``arrival_rate_rps`` regardless of completions, the operating
regime of a production service below its saturation point.

Used for latency-vs-load curves (why QoS caps utilization well below the
bottleneck bound) and, with deterministic single-station workloads, for
validating the DES against the exact M/D/1 waiting-time formula and the
M/M/1/K blocking probability (``tests/simulator/test_openloop.py``).

With ``queue_cap`` set, the server holds at most that many requests (in
service + waiting); excess arrivals are *dropped* and accounted in
``SimResult.dropped_requests`` / ``drop_rate`` -- the loss-system regime
overload protection creates on purpose.  Without a cap, an offered load
beyond capacity grows the queue without bound and the run fails loudly;
with a cap the run always completes, so a ``RuntimeWarning`` is emitted
instead when more than half the measured arrivals were dropped (the
latency numbers then describe only the admitted minority).
"""

from __future__ import annotations

import random
import warnings
from typing import Optional

from repro.perf.variates import exponential_sampler
from repro.platforms.platform import Platform
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.simulator.server_sim import (
    DiskModel,
    PlatformDiskModel,
    SimConfig,
    SimResult,
)
from repro.workloads.base import Workload
from repro.workloads.qos import QosTracker


class OpenLoopSimulator:
    """Poisson arrivals at a fixed rate against one simulated server."""

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        arrival_rate_rps: float,
        config: SimConfig = SimConfig(),
        disk_model: Optional[DiskModel] = None,
        memory_slowdown: float = 1.0,
        queue_cap: Optional[int] = None,
    ):
        if arrival_rate_rps <= 0:
            raise ValueError("arrival rate must be positive")
        if memory_slowdown < 1.0:
            raise ValueError("memory_slowdown is a multiplier >= 1.0")
        if queue_cap is not None and queue_cap < 1:
            raise ValueError("queue_cap must be positive (or None)")
        self._platform = platform
        self._workload = workload
        self._profile = workload.profile
        self._rate_per_ms = arrival_rate_rps / 1000.0
        self._config = config
        self._disk_model = disk_model or PlatformDiskModel(platform)
        self._memory_slowdown = memory_slowdown
        self._queue_cap = queue_cap

    def analytic_sojourn_ms(self, quantile: float = 0.5) -> float:
        """Closed-form sojourn percentile for this station's configuration.

        The M/M/1 (or, with ``queue_cap``, M/M/1/K) closed form evaluated
        at this simulator's offered load and measured mean service
        demand -- the same mapping the calibrated hybrid fast path
        (:mod:`repro.perf.sharded`) uses to skip event-stepping steady
        windows.  ``tests/simulator/test_queueing.py`` validates these
        forms against the DES; this hook exposes the per-instance
        prediction so callers can compare a run against its own theory.
        """
        from repro.simulator.queueing import (
            mm1_sojourn_percentile_ms,
            mm1k_sojourn_percentile_ms,
        )
        from repro.simulator.server_sim import mean_service_demand_ms

        service_ms = mean_service_demand_ms(
            self._platform,
            self._workload,
            seed=self._config.seed,
            disk_model=self._disk_model,
            memory_slowdown=self._memory_slowdown,
        )
        rho = self._rate_per_ms * service_ms
        if self._queue_cap is not None:
            return mm1k_sojourn_percentile_ms(
                service_ms, rho, self._queue_cap, quantile
            )
        return mm1_sojourn_percentile_ms(service_ms, rho, quantile)

    def run(self) -> SimResult:
        """Generate arrivals until the measurement window completes."""
        sim = Simulation()
        rng = random.Random(self._config.seed)
        # Stream-identical fast path for rng.expovariate: the arrival
        # stream shares the generator with workload sampling, so draws
        # must consume exactly the same uniforms as the naive code.
        sample_exp = exponential_sampler(rng)
        platform = self._platform
        profile = self._profile

        cpu = Resource(sim, "cpu", platform.cpu.total_cores)
        mem = Resource(sim, "mem", platform.memory.channels)
        disk = Resource(sim, "disk", 1)
        nic = Resource(sim, "nic", 1)

        warmup = self._config.warmup_requests
        measure = self._config.measure_requests
        total_needed = warmup + measure
        #: In-flight bound: queues past this mean the offered load exceeds
        #: capacity and latencies are meaningless -- fail loudly instead.
        overload_threshold = max(2000, total_needed // 4)
        qos = QosTracker(profile.qos) if profile.qos else None
        responses: list = []
        busy_at_start = {r.name: 0.0 for r in (cpu, mem, disk, nic)}
        state = {"completions": 0, "arrivals": 0, "dropped": 0,
                 "win_arrivals": 0, "win_dropped": 0, "t0": 0.0, "t1": 0.0,
                 "done": False, "overloaded": False}

        def schedule_arrival() -> None:
            if state["done"]:
                return
            delay = sample_exp(self._rate_per_ms)
            sim.schedule(delay, arrive)

        def arrive() -> None:
            if state["done"]:
                return
            state["arrivals"] += 1
            measuring = state["completions"] >= warmup
            if measuring:
                state["win_arrivals"] += 1
            in_flight = (
                state["arrivals"] - state["completions"] - state["dropped"] - 1
            )
            if self._queue_cap is not None and in_flight >= self._queue_cap:
                # Finite system: the arrival is rejected, not queued.
                state["dropped"] += 1
                if measuring:
                    state["win_dropped"] += 1
                schedule_arrival()
                return
            admitted_in_flight = (
                state["arrivals"] - state["dropped"] - state["completions"]
            )
            if admitted_in_flight > overload_threshold:
                state["overloaded"] = True
                state["done"] = True
                sim.stop()
                return
            schedule_arrival()
            request = self._workload.sample(rng)
            demand = request.demand
            start = sim.now

            cpu_ms = (
                platform.cpu_time_ms(
                    demand.cpu_ms_ref,
                    profile.cache_sensitivity,
                    profile.inorder_ipc_factor,
                    profile.stall_fraction,
                )
                * self._memory_slowdown
            )
            mem_ms = platform.memory_channel_time_ms(demand.mem_ms_ref)
            disk_ms = self._disk_model.service_ms(demand, rng)
            net_ms = platform.net_time_ms(demand.net_bytes)

            def complete() -> None:
                state["completions"] += 1
                if state["completions"] == warmup:
                    state["t0"] = sim.now
                    for resource in (cpu, mem, disk, nic):
                        busy_at_start[resource.name] = resource.stats.busy_time_ms
                elif state["completions"] > warmup and not state["done"]:
                    response = sim.now - start
                    responses.append(response)
                    if qos is not None:
                        qos.record(response)
                    if state["completions"] >= total_needed:
                        state["done"] = True
                        state["t1"] = sim.now
                        sim.stop()

            def after_disk() -> None:
                nic.acquire(net_ms, complete)

            def after_mem() -> None:
                disk.acquire(disk_ms, after_disk)

            def after_cpu() -> None:
                mem.acquire(mem_ms, after_mem)

            slices = max(1, min(platform.cpu.total_cores, demand.cpu_parallelism))
            if slices == 1:
                cpu.acquire(cpu_ms, after_cpu)
            else:
                join = {"left": slices}

                def slice_done() -> None:
                    join["left"] -= 1
                    if join["left"] == 0:
                        after_cpu()

                for _ in range(slices):
                    cpu.acquire(cpu_ms / slices, slice_done)

        schedule_arrival()
        sim.run()

        if state["overloaded"] or not state["done"]:
            raise RuntimeError(
                "the server cannot sustain the offered load of "
                f"{self._rate_per_ms * 1000:.1f} req/s "
                "(in-flight requests grew without bound)"
            )
        window = max(state["t1"] - state["t0"], 1e-9)
        throughput = len(responses) / (window / 1000.0)
        mean_response = sum(responses) / len(responses)
        percentile = qos.percentile_ms() if qos and qos.count else mean_response
        drop_rate = (
            state["win_dropped"] / state["win_arrivals"]
            if state["win_arrivals"]
            else 0.0
        )
        if drop_rate > 0.5:
            warnings.warn(
                f"offered load of {self._rate_per_ms * 1000:.1f} req/s is "
                f"unsustainable: the queue cap of {self._queue_cap} dropped "
                f"{drop_rate:.0%} of arrivals; latency figures describe only "
                "the admitted requests",
                RuntimeWarning,
                stacklevel=2,
            )
        return SimResult(
            throughput_rps=throughput,
            mean_response_ms=mean_response,
            qos_percentile_ms=percentile,
            qos_met=qos.satisfied() if qos else True,
            utilization={
                r.name: min(
                    1.0,
                    (r.stats.busy_time_ms - busy_at_start[r.name])
                    / (r.servers * window),
                )
                for r in (cpu, mem, disk, nic)
            },
            population=0,
            measured_requests=len(responses),
            dropped_requests=state["win_dropped"],
            drop_rate=drop_rate,
        )
