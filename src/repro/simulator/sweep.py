"""Adaptive client driver: maximum throughput under QoS.

The paper's Perl-based client driver "can adapt the number of simultaneous
clients according to recently observed QoS results, to achieve the highest
level of throughput without overloading the servers."  This module
reproduces that control loop on top of the DES:

1. Start from an analytic estimate of the saturating population.
2. Grow the population geometrically while QoS holds and throughput still
   improves.
3. Binary-search the boundary between the last passing and first failing
   population.

If QoS cannot be met even with a single client (e.g. emb2 running
webmail, where one request's service time already exceeds the latency
budget), the driver reports the single-client throughput with
``qos_met=False`` -- the platform runs in a degraded mode, matching the
paper's observation that emb2 "consistently underperforms".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.platforms.platform import Platform
from repro.simulator.analytic import AnalyticServerModel
from repro.simulator.server_sim import DiskModel, ServerSimulator, SimConfig, SimResult
from repro.workloads.base import Workload

#: Stop growing the population when throughput improves less than this.
_MIN_GAIN = 0.02
#: Hard cap on client population explored by the driver.
_MAX_POPULATION = 4096

#: Cross-instance memo of simulated operating points.  The experiments
#: re-sweep the same (platform, workload) pairs -- table2, figure2,
#: table3, figure5, and validation all re-evaluate srvr1 -- and every
#: operating point is a pure function of (platform, workload profile,
#: population, measurement config, memory slowdown), so re-running the
#: DES for a key already simulated in this process reproduces the same
#: ``SimResult`` bit for bit.  Runs with a custom disk model (stateful:
#: flash caches fail and recover) or unhashable parameters bypass the
#: memo.  Values must be treated as read-only, which every caller does.
_SIM_MEMO: Dict[tuple, SimResult] = {}

#: Analytic warm-start estimates, memoized per (platform, profile).
_ESTIMATE_MEMO: Dict[tuple, int] = {}


def clear_sweep_memo() -> None:
    """Drop all memoized sweep results (for tests and benchmarks)."""
    _SIM_MEMO.clear()
    _ESTIMATE_MEMO.clear()


@dataclass
class SweepResult:
    """Best operating point found by the adaptive driver."""

    best: SimResult
    population: int
    evaluations: int

    @property
    def throughput_rps(self) -> float:
        return self.best.throughput_rps

    @property
    def qos_met(self) -> bool:
        return self.best.qos_met


class QosSweep:
    """Finds the peak-QoS operating point for one (platform, workload)."""

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        config: SimConfig = SimConfig(),
        disk_model: Optional[DiskModel] = None,
        memory_slowdown: float = 1.0,
    ):
        self._platform = platform
        self._workload = workload
        self._config = config
        self._disk_model = disk_model
        self._memory_slowdown = memory_slowdown
        self._cache: Dict[int, SimResult] = {}

    def explored(self) -> Dict[int, SimResult]:
        """All operating points simulated so far (population -> result)."""
        return dict(self._cache)

    def _memo_key(self, population: int) -> Optional[tuple]:
        """Process-wide memo key, or None when memoization is unsafe."""
        if self._disk_model is not None:
            # Disk models can carry state across requests (flash caches
            # fail/recover) and are not part of a hashable key.
            return None
        key = (
            self._platform,
            self._workload.profile,
            population,
            self._config,
            self._memory_slowdown,
        )
        try:
            hash(key)
        except TypeError:  # pragma: no cover - defensive
            return None
        return key

    def _simulate(self, population: int) -> SimResult:
        if population not in self._cache:
            key = self._memo_key(population)
            result = _SIM_MEMO.get(key) if key is not None else None
            if result is None:
                result = ServerSimulator(
                    self._platform,
                    self._workload,
                    population=population,
                    config=self._config,
                    disk_model=self._disk_model,
                    memory_slowdown=self._memory_slowdown,
                ).run()
                if key is not None:
                    _SIM_MEMO[key] = result
            self._cache[population] = result
        return self._cache[population]

    def _max_population(self) -> int:
        cap = self._workload.profile.max_population
        return min(cap, _MAX_POPULATION) if cap is not None else _MAX_POPULATION

    def _initial_population(self) -> int:
        """Analytic warm start: population that saturates the bottleneck.

        Memoized per (platform, profile): sweeps over the same pair --
        or over same-family platform variants sharing the cap -- reuse
        the estimate instead of rebuilding the analytic model.
        """
        try:
            key: Optional[tuple] = (self._platform, self._workload.profile)
            hash(key)
        except TypeError:  # pragma: no cover - defensive
            key = None
        if key is not None and key in _ESTIMATE_MEMO:
            return _ESTIMATE_MEMO[key]
        model = AnalyticServerModel(self._platform, self._workload)
        saturation = model.saturation_rps() / 1000.0  # per ms
        demands = sum(d for d, _ in model.service_demands())
        think = self._workload.profile.think_time_ms
        estimate = int(saturation * (think + demands)) or 1
        initial = max(2, min(estimate, self._max_population()))
        if key is not None:
            _ESTIMATE_MEMO[key] = initial
        return initial

    def find_peak(self) -> SweepResult:
        """Run the adaptive search and return the best operating point."""
        population = self._initial_population()
        result = self._simulate(population)

        if not result.qos_met:
            # Shrink until QoS holds (or we bottom out at one client).
            low_pop, low = population, result
            while low_pop > 1 and not low.qos_met:
                low_pop = max(1, low_pop // 2)
                low = self._simulate(low_pop)
            if not low.qos_met:
                return SweepResult(best=low, population=low_pop,
                                   evaluations=len(self._cache))
            best_pop, best = low_pop, low
            fail_pop = low_pop * 2
        else:
            # Grow while QoS holds and throughput still improves.
            best_pop, best = population, result
            fail_pop = None
            max_pop = self._max_population()
            while best_pop < max_pop:
                nxt = min(best_pop * 2, max_pop)
                candidate = self._simulate(nxt)
                if not candidate.qos_met:
                    fail_pop = nxt
                    break
                gain = (candidate.throughput_rps - best.throughput_rps) / max(
                    best.throughput_rps, 1e-9
                )
                best_pop, best = nxt, candidate
                if gain < _MIN_GAIN:
                    return SweepResult(best=best, population=best_pop,
                                       evaluations=len(self._cache))

        # Binary-search the QoS boundary.
        if fail_pop is not None:
            lo, hi = best_pop, fail_pop
            while hi - lo > max(1, lo // 8):
                mid = (lo + hi) // 2
                candidate = self._simulate(mid)
                if candidate.qos_met:
                    lo = mid
                    if candidate.throughput_rps > best.throughput_rps:
                        best_pop, best = mid, candidate
                else:
                    hi = mid
        return SweepResult(best=best, population=best_pop,
                           evaluations=len(self._cache))
