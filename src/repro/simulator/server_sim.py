"""Closed-loop server simulation.

``population`` clients each loop: think (exponential), issue one request,
wait for its response, repeat.  A request visits the server's resources in
order -- CPU cores, memory channels, disk, NIC -- with service times
derived from the request's platform-independent demand through the
:class:`~repro.platforms.platform.Platform` model.

Measurement uses a completion-count protocol: the first
``warmup_requests`` completions are discarded, the next
``measure_requests`` completions define the measurement window, and
throughput is completions divided by window duration.  Response times of
requests completing inside the window feed the QoS tracker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.obs.span import SpanKind
from repro.obs.tracer import record_stage, record_stage_parts
from repro.perf.variates import exponential_sampler
from repro.platforms.platform import Platform
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.workloads.base import ResourceDemand, Workload
from repro.workloads.qos import QosTracker


class DiskModel(Protocol):
    """Strategy for turning a request's disk demand into service time.

    The default uses the platform's disk device directly; the flash-cache
    experiments (paper section 3.5) substitute a model that consults the
    flash cache first.
    """

    def service_ms(self, demand: ResourceDemand, rng: random.Random) -> float:
        """Disk service time for one request."""
        ...  # pragma: no cover - protocol


class PlatformDiskModel:
    """Default disk model: every I/O goes to the platform's disk."""

    def __init__(self, platform: Platform):
        self._platform = platform

    def service_ms(self, demand: ResourceDemand, rng: random.Random) -> float:
        return self._platform.disk_time_ms(
            demand.disk_ios, demand.disk_bytes, write=demand.disk_write
        )

    def service_components(self, demand: ResourceDemand, rng: random.Random):
        """Typed breakdown of :meth:`service_ms` (identical RNG draws)."""
        return [("disk", "disk", self.service_ms(demand, rng))]


@dataclass(frozen=True)
class SimConfig:
    """Measurement-protocol parameters."""

    warmup_requests: int = 300
    measure_requests: int = 2500
    seed: int = 1

    def __post_init__(self) -> None:
        if self.warmup_requests < 0 or self.measure_requests <= 0:
            raise ValueError("invalid request counts")


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    throughput_rps: float
    mean_response_ms: float
    qos_percentile_ms: float
    qos_met: bool
    utilization: Dict[str, float]
    population: int
    measured_requests: int
    #: Arrivals rejected by a finite queue cap during the measurement
    #: window (open-loop runs with ``queue_cap`` only).
    dropped_requests: int = 0
    #: Fraction of measurement-window arrivals rejected by the cap.
    drop_rate: float = 0.0

    def describe(self) -> str:
        flags = "" if self.qos_met else " [QoS violated]"
        return (
            f"{self.throughput_rps:.2f} req/s, mean {self.mean_response_ms:.1f} ms,"
            f" p95 {self.qos_percentile_ms:.1f} ms{flags}"
        )


def mean_service_demand_ms(
    platform: Platform,
    workload: Workload,
    samples: int = 2000,
    seed: int = 1,
    disk_model: Optional[DiskModel] = None,
    memory_slowdown: float = 1.0,
) -> float:
    """Mean uncontended single-request service time, in ms.

    Monte-Carlo estimate over ``samples`` workload draws of the same
    cpu+mem+disk+net composition :class:`ServerSimulator` charges each
    request -- i.e. the service rate ``mu`` the queueing closed forms
    and the sharded rack model (:mod:`repro.perf.sharded`) need, derived
    from the *same* demand distributions the DES runs, not re-modeled.
    Uses a dedicated RNG, so it never perturbs a simulation stream.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    rng = random.Random(seed)
    model = disk_model or PlatformDiskModel(platform)
    profile = workload.profile
    total = 0.0
    for _ in range(samples):
        demand = workload.sample(rng).demand
        cpu_ms = (
            platform.cpu_time_ms(
                demand.cpu_ms_ref,
                profile.cache_sensitivity,
                profile.inorder_ipc_factor,
                profile.stall_fraction,
            )
            * memory_slowdown
        )
        mem_ms = platform.memory_channel_time_ms(demand.mem_ms_ref)
        disk_ms = model.service_ms(demand, rng)
        net_ms = platform.net_time_ms(demand.net_bytes)
        total += cpu_ms + mem_ms + disk_ms + net_ms
    return total / samples


class ServerSimulator:
    """Simulates one server of ``platform`` running ``workload``."""

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        population: Optional[int] = None,
        config: SimConfig = SimConfig(),
        disk_model: Optional[DiskModel] = None,
        memory_slowdown: float = 1.0,
        tracer=None,
        metrics=None,
    ):
        if population is not None and population <= 0:
            raise ValueError("population must be positive")
        if memory_slowdown < 1.0:
            raise ValueError("memory_slowdown is a multiplier >= 1.0")
        self._platform = platform
        self._workload = workload
        self._profile = workload.profile
        self._population = (
            population
            if population is not None
            else self._profile.population.population(platform.cpu.total_cores)
        )
        self._config = config
        self._disk_model = disk_model or PlatformDiskModel(platform)
        #: Uniform CPU-time multiplier modelling remote-memory paging
        #: overhead (paper section 3.4's "2% slowdown" style adjustments).
        self._memory_slowdown = memory_slowdown
        #: Optional :class:`repro.obs.Tracer`; sampling decisions are a
        #: pure hash of the request sequence number, so traced runs
        #: consume the same RNG stream as untraced ones.
        self._tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry` for labeled
        #: counters/histograms alongside the scalar ``SimResult``.
        self._metrics = metrics

    @property
    def population(self) -> int:
        return self._population

    def run(self) -> SimResult:
        """Execute the closed-loop simulation and return measurements."""
        sim = Simulation()
        rng = random.Random(self._config.seed)
        # Stream-identical fast path for rng.expovariate (same values,
        # same generator state, no per-draw method dispatch).
        sample_exp = exponential_sampler(rng)
        platform = self._platform
        profile = self._profile
        tracer = self._tracer
        metrics = self._metrics
        # Request sequence number: the tracer's sampling key.  Only
        # maintained when tracing -- the untraced path is untouched.
        rid = [0]

        cpu = Resource(sim, "cpu", platform.cpu.total_cores)
        mem = Resource(sim, "mem", platform.memory.channels)
        disk = Resource(sim, "disk", 1)
        nic = Resource(sim, "nic", 1)

        warmup = self._config.warmup_requests
        measure = self._config.measure_requests
        state = _MeasureState(warmup=warmup, target=measure)
        qos = QosTracker(profile.qos) if profile.qos else None
        responses: list = []
        busy_at_start: Dict[str, float] = {r.name: 0.0 for r in (cpu, mem, disk, nic)}

        def client_loop() -> None:
            if state.done:
                return
            think = (
                sample_exp(1.0 / profile.think_time_ms)
                if profile.think_time_ms > 0
                else 0.0
            )
            sim.schedule(think, issue_request)

        def issue_request() -> None:
            if state.done:
                return
            request = self._workload.sample(rng)
            demand = request.demand
            start = sim.now
            if tracer is not None:
                trace = tracer.begin(rid[0], start)
                rid[0] += 1
            else:
                trace = None

            cpu_ms = (
                platform.cpu_time_ms(
                    demand.cpu_ms_ref,
                    profile.cache_sensitivity,
                    profile.inorder_ipc_factor,
                    profile.stall_fraction,
                )
                * self._memory_slowdown
            )
            mem_ms = platform.memory_channel_time_ms(demand.mem_ms_ref)
            # The typed breakdown and the plain total consume identical
            # RNG draws (service_ms delegates to service_components), so
            # asking for components only on traced requests changes
            # nothing downstream.
            disk_parts = None
            if trace is not None:
                parts_fn = getattr(self._disk_model, "service_components", None)
                if parts_fn is not None:
                    disk_parts = parts_fn(demand, rng)
                    disk_ms = sum(part[2] for part in disk_parts)
                else:
                    disk_ms = self._disk_model.service_ms(demand, rng)
            else:
                disk_ms = self._disk_model.service_ms(demand, rng)
            net_ms = platform.net_time_ms(demand.net_bytes)
            # Service-start times are recovered retroactively at each
            # stage-completion callback (service is contiguous on these
            # FCFS resources), so tracing adds no events to the heap.
            cursor = [start] if trace is not None else None
            root = trace.root if trace is not None else None

            def after_net() -> None:
                if trace is not None:
                    record_stage(
                        trace, root, cursor[0], sim.now, SpanKind.NET, net_ms
                    )
                    trace.close(sim.now)
                _complete(start)

            def after_disk() -> None:
                if trace is not None:
                    if disk_parts is not None:
                        record_stage_parts(
                            trace, root, cursor[0], sim.now, disk_parts, disk_ms
                        )
                    else:
                        record_stage(
                            trace, root, cursor[0], sim.now, SpanKind.DISK,
                            disk_ms,
                        )
                    cursor[0] = sim.now
                nic.acquire(net_ms, after_net)

            def after_mem() -> None:
                if trace is not None:
                    record_stage(
                        trace, root, cursor[0], sim.now, SpanKind.MEM, mem_ms
                    )
                    cursor[0] = sim.now
                disk.acquire(disk_ms, after_disk)

            # Fork/join: requests with software parallelism split their
            # CPU work into concurrent slices across cores (total work
            # unchanged; latency shrinks when cores are free).
            slices = max(1, min(platform.cpu.total_cores, demand.cpu_parallelism))

            def after_cpu() -> None:
                if trace is not None:
                    # With one slice the contiguous-service interval is
                    # exact; sliced requests report the last slice's
                    # share and annotate the fan-out.
                    span = record_stage(
                        trace, root, cursor[0], sim.now, SpanKind.CPU,
                        cpu_ms / slices,
                    )
                    if slices > 1:
                        span.annotate(slices=slices)
                    cursor[0] = sim.now
                mem.acquire(mem_ms, after_mem)

            if slices == 1:
                cpu.acquire(cpu_ms, after_cpu)
            else:
                join = {"remaining": slices}

                def after_slice() -> None:
                    join["remaining"] -= 1
                    if join["remaining"] == 0:
                        after_cpu()

                for _ in range(slices):
                    cpu.acquire(cpu_ms / slices, after_slice)

        def _complete(start_ms: float) -> None:
            state.completions += 1
            if state.completions == warmup:
                state.window_start = sim.now
                for resource in (cpu, mem, disk, nic):
                    busy_at_start[resource.name] = resource.stats.busy_time_ms
            elif state.completions > warmup and not state.done:
                response = sim.now - start_ms
                responses.append(response)
                if qos is not None:
                    qos.record(response)
                if metrics is not None:
                    metrics.counter("server.requests").inc()
                    metrics.histogram("server.response_ms").record(response)
                if state.completions >= warmup + measure:
                    state.done = True
                    state.window_end = sim.now
                    sim.stop()
                    return
            client_loop()

        for _ in range(self._population):
            client_loop()
        sim.run()

        if not state.done:
            raise RuntimeError(
                "simulation drained its event queue before the measurement "
                "window completed; increase population or request counts"
            )

        if tracer is not None:
            tracer.finalize(sim.now)

        window = max(state.window_end - state.window_start, 1e-9)
        throughput = len(responses) / (window / 1000.0)
        mean_response = sum(responses) / len(responses)
        percentile = qos.percentile_ms() if qos and qos.count else mean_response
        qos_met = qos.satisfied() if qos else True

        if metrics is not None:
            metrics.gauge("server.throughput_rps").set(throughput)
            for resource in (cpu, mem, disk, nic):
                utilization = min(
                    1.0,
                    (resource.stats.busy_time_ms - busy_at_start[resource.name])
                    / (resource.servers * window),
                )
                metrics.gauge(
                    "server.utilization", resource=resource.name
                ).set(utilization)

        return SimResult(
            throughput_rps=throughput,
            mean_response_ms=mean_response,
            qos_percentile_ms=percentile,
            qos_met=qos_met,
            utilization={
                r.name: min(
                    1.0,
                    (r.stats.busy_time_ms - busy_at_start[r.name])
                    / (r.servers * window),
                )
                for r in (cpu, mem, disk, nic)
            },
            population=self._population,
            measured_requests=len(responses),
        )


class _MeasureState:
    """Mutable counters shared by the simulation callbacks (slotted)."""

    __slots__ = ("warmup", "target", "completions", "window_start",
                 "window_end", "done")

    def __init__(self, warmup: int, target: int):
        self.warmup = warmup
        self.target = target
        self.completions = 0
        self.window_start = 0.0
        self.window_end = 0.0
        self.done = False
