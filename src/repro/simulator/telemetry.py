"""Latency histograms, time-bucketed series, and availability tracking.

Lightweight telemetry for inspecting simulation runs: a logarithmic
latency histogram (constant relative resolution, like HdrHistogram's
coarse mode), a bucketed time series for utilization/throughput
timelines, and an up/down interval tracker that turns fault-injection
events into downtime and availability numbers.  All are pure
accumulators, usable inside or outside the simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Tuple


class HistogramSnapshot(NamedTuple):
    """Frozen bucket state of a :class:`LatencyHistogram` at one instant.

    Taken with :meth:`LatencyHistogram.snapshot` and consumed by
    :meth:`LatencyHistogram.since` to answer windowed queries ("p95 of
    the samples recorded since the last evaluation") off one cumulative
    histogram -- the pattern the fail-slow peer-comparison detector uses
    so per-server latency state lives in exactly one accumulator.  A
    NamedTuple rather than a frozen dataclass: snapshots are taken on
    the detector's evaluation path, and frozen-dataclass construction
    pays an ``object.__setattr__`` per field.
    """

    counts: Tuple[int, ...]
    total: int
    sum_ms: float


class LatencyHistogram:
    """Log-bucketed histogram with percentile queries.

    Buckets grow geometrically by ``growth`` per step starting at
    ``min_value_ms``; each recorded value lands in one bucket, so
    percentile answers carry at most one bucket of relative error.
    """

    def __init__(
        self,
        min_value_ms: float = 0.01,
        max_value_ms: float = 600_000.0,
        growth: float = 1.15,
    ):
        if min_value_ms <= 0 or max_value_ms <= min_value_ms:
            raise ValueError("need 0 < min < max")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self._min = min_value_ms
        self._log_growth = math.log(growth)
        self._bucket_count = (
            int(math.log(max_value_ms / min_value_ms) / self._log_growth) + 2
        )
        self._counts = [0] * self._bucket_count
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        # Highest populated bucket index (-1 when empty): lets windowed
        # percentile queries walk down from the occupied top instead of
        # up through the whole bucket range.
        self._hi = -1

    def _bucket(self, value_ms: float) -> int:
        if value_ms <= self._min:
            return 0
        index = int(math.log(value_ms / self._min) / self._log_growth) + 1
        return min(index, self._bucket_count - 1)

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """(low, high) bounds of one bucket, ms."""
        if not 0 <= index < self._bucket_count:
            raise IndexError(f"bucket {index} out of range")
        if index == 0:
            return (0.0, self._min)
        low = self._min * math.exp(self._log_growth * (index - 1))
        return (low, low * math.exp(self._log_growth))

    def record(self, value_ms: float) -> None:
        # The per-sample hot path (every traced attempt and every
        # fail-slow observation lands here): ``_bucket`` is inlined and
        # the branches replace ``min``/``max`` calls.
        if value_ms < 0:
            raise ValueError("latency must be >= 0")
        if value_ms <= self._min:
            index = 0
        else:
            index = int(math.log(value_ms / self._min) / self._log_growth) + 1
            last = self._bucket_count - 1
            if index > last:
                index = last
        self._counts[index] += 1
        if index > self._hi:
            self._hi = index
        self._total += 1
        self._sum += value_ms
        if value_ms > self._max:
            self._max = value_ms

    def record_many(self, values_ms) -> None:
        """Record a whole array of latencies in one vectorized pass.

        The cohort engines (:mod:`repro.perf.sharded`) produce a
        window's responses as a numpy array; bucketing them one
        ``record`` call at a time would hand back much of the kernel
        speedup.  Bucket indices are computed with ``numpy.log`` --
        identical to :meth:`record` except for values landing exactly
        on a bucket edge (measure-zero for continuous latencies); the
        count/max accumulators are exact, and the running sum is
        accumulated left-to-right (not ``numpy.sum``'s pairwise
        association) so a batched flush leaves the histogram
        bit-identical to per-sample :meth:`record` calls.
        """
        import numpy as np

        values = np.asarray(values_ms, dtype=np.float64)
        if values.size == 0:
            return
        if values.min() < 0:
            raise ValueError("latency must be >= 0")
        index = np.zeros(values.shape, dtype=np.intp)
        big = values > self._min
        if big.any():
            index[big] = (
                np.log(values[big] / self._min) / self._log_growth
            ).astype(np.intp) + 1
            np.clip(index, 0, self._bucket_count - 1, out=index)
        counts = np.bincount(index, minlength=self._bucket_count)
        own = self._counts
        for i in np.nonzero(counts)[0]:
            own[i] += int(counts[i])
        hi = int(index.max())
        if hi > self._hi:
            self._hi = hi
        self._total += int(values.size)
        s = self._sum
        for v in values.tolist():
            s += v
        self._sum = s
        peak = float(values.max())
        if peak > self._max:
            self._max = peak

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean_ms(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def max_ms(self) -> float:
        return self._max

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram, losslessly (returns self).

        Merging is exact only when both histograms share one bucket
        layout, so a mismatched ``min_value_ms``/``max_value_ms``/
        ``growth`` configuration raises instead of silently rebinning.
        Used by the parallel runner and the metrics registry to combine
        per-worker / per-server accumulators.
        """
        if not isinstance(other, LatencyHistogram):
            raise TypeError("can only merge another LatencyHistogram")
        if (
            self._min != other._min
            or self._log_growth != other._log_growth
            or self._bucket_count != other._bucket_count
        ):
            raise ValueError(
                "cannot merge histograms with different bucket configurations"
            )
        for index, count in enumerate(other._counts):
            if count:
                self._counts[index] += count
        self._total += other._total
        self._sum += other._sum
        self._max = max(self._max, other._max)
        self._hi = max(self._hi, other._hi)
        return self

    def snapshot(self) -> HistogramSnapshot:
        """Frozen copy of the current bucket state (for :meth:`since`)."""
        return HistogramSnapshot(
            counts=tuple(self._counts), total=self._total, sum_ms=self._sum
        )

    def since(self, snapshot: HistogramSnapshot) -> "LatencyHistogram":
        """The window of samples recorded after ``snapshot`` was taken.

        Returns a new histogram holding exactly the per-bucket count
        difference, so windowed percentiles come from one cumulative
        accumulator instead of a second reset-on-read copy.  The window's
        ``max_ms`` is inherited from the cumulative histogram (an upper
        bound -- the true window maximum is not recoverable from bucket
        counts), which only matters for the overflow bucket's percentile
        clamp.  Raises when ``snapshot`` came from a histogram with a
        different bucket layout or a later state than ``self``.
        """
        if len(snapshot.counts) != self._bucket_count:
            raise ValueError("snapshot has a different bucket layout")
        window = LatencyHistogram.__new__(LatencyHistogram)
        window._min = self._min
        window._log_growth = self._log_growth
        window._bucket_count = self._bucket_count
        deltas = [0] * self._bucket_count
        for index, (now, then) in enumerate(zip(self._counts, snapshot.counts)):
            delta = now - then
            if delta < 0:
                raise ValueError("snapshot is newer than the histogram")
            deltas[index] = delta
        window._counts = deltas
        window._total = self._total - snapshot.total
        window._sum = self._sum - snapshot.sum_ms
        window._max = self._max
        window._hi = self._hi
        return window

    def percentile_since(
        self, snapshot: HistogramSnapshot, percentile: float
    ) -> float:
        """``since(snapshot).percentile_ms(percentile)``, allocation-free.

        The fail-slow detector scores every server's fresh window once
        per evaluation interval; materialising a full delta histogram
        per server per tick dominated its overhead budget.  This walks
        bucket-count deltas *downward from the highest populated
        bucket*, so a high percentile is found within the few occupied
        top buckets instead of a pass over the whole bucket range.
        Same empty-window and layout-mismatch errors, and the same
        inherited-``max_ms`` clamp, as the two-step spelling.
        """
        if not 0 < percentile <= 1:
            raise ValueError("percentile must be in (0, 1]")
        if len(snapshot.counts) != self._bucket_count:
            raise ValueError("snapshot has a different bucket layout")
        total = self._total - snapshot.total
        if total < 0:
            raise ValueError("snapshot is newer than the histogram")
        if total == 0:
            raise ValueError("histogram is empty")
        # Bucket B holds the percentile sample iff cum(0..B-1) < target
        # <= cum(0..B); equivalently B is the highest bucket whose
        # suffix sum reaches total - target + 1, which the descending
        # walk finds first.
        target = math.ceil(percentile * total)
        need = total - target + 1
        counts = self._counts
        then = snapshot.counts
        seen = 0
        for index in range(self._hi, -1, -1):
            seen += counts[index] - then[index]
            if seen >= need:
                if index == self._bucket_count - 1:
                    return self._max
                return min(self.bucket_bounds(index)[1], self._max)
        return self._max  # pragma: no cover - defensive

    _NO_DEFAULT = object()

    def percentile_ms(self, percentile: float, default=_NO_DEFAULT) -> float:
        """Upper bound of the bucket holding the percentile sample.

        An empty histogram raises ``ValueError`` unless ``default`` is
        given, in which case it is returned instead -- the escape hatch
        report generators use so an idle measurement window (no samples)
        renders as "n/a" rather than crashing the whole report.
        """
        if not 0 < percentile <= 1:
            raise ValueError("percentile must be in (0, 1]")
        if self._total == 0:
            if default is not LatencyHistogram._NO_DEFAULT:
                return default
            raise ValueError("histogram is empty")
        target = math.ceil(percentile * self._total)
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                if index == self._bucket_count - 1:
                    # Overflow bucket: its nominal bound can sit below the
                    # clamped samples; the observed max is the honest answer.
                    return self._max
                return min(self.bucket_bounds(index)[1], self._max)
        return self._max  # pragma: no cover - defensive

    def nonzero_buckets(self) -> List[Tuple[float, float, int]]:
        """(low, high, count) for every populated bucket."""
        return [
            (*self.bucket_bounds(i), count)
            for i, count in enumerate(self._counts)
            if count
        ]


class TimeSeries:
    """Fixed-width time buckets accumulating a value (e.g. completions).

    A slotted plain class (not a dataclass): :meth:`record` sits on the
    cluster simulator's per-completion hot path, and slots keep the
    instance small and its attribute loads cheap.  Equality compares
    content (width and buckets), which the old field-only dataclass
    ``__eq__`` did not.
    """

    __slots__ = ("bucket_ms", "_buckets")

    def __init__(self, bucket_ms: float):
        if bucket_ms <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_ms = bucket_ms
        self._buckets: Dict[int, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries(bucket_ms={self.bucket_ms!r}, buckets={len(self._buckets)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.bucket_ms == other.bucket_ms and self._buckets == other._buckets
        )

    def record(self, time_ms: float, value: float = 1.0) -> None:
        if time_ms < 0:
            raise ValueError("time must be >= 0")
        index = int(time_ms / self.bucket_ms)
        self._buckets[index] = self._buckets.get(index, 0.0) + value

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Fold ``other`` into this series, losslessly (returns self).

        Both series must share the same bucket width; merging across
        widths would rebin and is refused.
        """
        if not isinstance(other, TimeSeries):
            raise TypeError("can only merge another TimeSeries")
        if self.bucket_ms != other.bucket_ms:
            raise ValueError(
                "cannot merge series with different bucket widths "
                f"({self.bucket_ms} vs {other.bucket_ms})"
            )
        buckets = self._buckets
        for index, value in other._buckets.items():
            buckets[index] = buckets.get(index, 0.0) + value
        return self

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start ms, accumulated value), gaps filled with zero."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        return [
            (i * self.bucket_ms, self._buckets.get(i, 0.0))
            for i in range(last + 1)
        ]

    def rate_per_second(self) -> List[Tuple[float, float]]:
        """(bucket start ms, value per second within the bucket)."""
        scale = 1000.0 / self.bucket_ms
        return [(t, v * scale) for t, v in self.series()]

    def window_sum(self, start_ms: float, end_ms: float) -> float:
        """Total accumulated value in buckets starting in [start, end)."""
        if end_ms < start_ms:
            raise ValueError("window must be ordered")
        first = int(start_ms / self.bucket_ms)
        last = int(end_ms / self.bucket_ms)
        return sum(
            value
            for index, value in self._buckets.items()
            if first <= index < last
        )

    def window_mean_rate_per_s(self, start_ms: float, end_ms: float) -> float:
        """Mean per-second rate over [start, end) (0 for an empty window)."""
        span_ms = end_ms - start_ms
        if span_ms <= 0:
            return 0.0
        return self.window_sum(start_ms, end_ms) / (span_ms / 1000.0)


@dataclass
class EntityAvailability:
    """Summarized up/down history of one tracked entity."""

    name: str
    downtime_ms: float
    incidents: int
    observed_ms: float

    @property
    def availability(self) -> float:
        """Fraction of observed time spent up (1.0 if never observed)."""
        if self.observed_ms <= 0:
            return 1.0
        return 1.0 - min(self.downtime_ms / self.observed_ms, 1.0)


class AvailabilityTracker:
    """Accumulates up/down transitions into downtime and availability.

    Entities (servers, blades, caches...) report state changes through
    :meth:`observe`; unterminated intervals are closed by
    :meth:`finalize` at the end of the observation window.  Repeated
    observations of the same state are idempotent, so callers can report
    every health evaluation rather than only edges.
    """

    def __init__(self) -> None:
        #: entity -> (currently up, time of last transition)
        self._state: Dict[str, Tuple[bool, float]] = {}
        self._start: Dict[str, float] = {}
        self._downtime: Dict[str, float] = {}
        self._incidents: Dict[str, int] = {}
        self._end: Dict[str, float] = {}

    def observe(self, name: str, time_ms: float, up: bool) -> None:
        """Record that ``name`` is up/down as of ``time_ms``."""
        if time_ms < 0:
            raise ValueError("time must be >= 0")
        if name not in self._state:
            self._state[name] = (up, time_ms)
            self._start[name] = time_ms
            self._downtime[name] = 0.0
            self._incidents[name] = 0 if up else 1
            return
        was_up, since = self._state[name]
        if time_ms < since:
            raise ValueError("observations must be time-ordered per entity")
        if up == was_up:
            return
        if not was_up:
            self._downtime[name] += time_ms - since
        else:
            self._incidents[name] += 1
        self._state[name] = (up, time_ms)

    def finalize(self, end_ms: float) -> None:
        """Close every open interval at ``end_ms``."""
        for name, (up, since) in list(self._state.items()):
            if end_ms < since:
                raise ValueError("end time precedes a recorded transition")
            if not up:
                self._downtime[name] += end_ms - since
                self._state[name] = (up, end_ms)
            self._end[name] = end_ms

    def entity(self, name: str) -> EntityAvailability:
        """Summary for one entity (KeyError if never observed)."""
        end = self._end.get(name, self._state[name][1])
        return EntityAvailability(
            name=name,
            downtime_ms=self._downtime[name],
            incidents=self._incidents[name],
            observed_ms=max(end - self._start[name], 0.0),
        )

    def entities(self) -> List[EntityAvailability]:
        return [self.entity(name) for name in self._state]

    def mean_availability(self, prefix: str = "") -> float:
        """Mean availability across entities whose name has ``prefix``."""
        summaries = [
            self.entity(name) for name in self._state if name.startswith(prefix)
        ]
        if not summaries:
            return 1.0
        return sum(s.availability for s in summaries) / len(summaries)
