"""Closed-form queueing references used to validate the simulator.

Exact textbook results for the stations the DES is built from:

- M/M/1 and M/M/m (Erlang C) waiting times,
- M/D/1 (deterministic service) waiting time,
- M/G/1 (Pollaczek-Khinchine) mean waiting time,
- M/M/1/K (finite queue) blocking probability and mean waits -- the
  loss-system regime a bounded server queue creates under overload,
- the interactive response-time law for closed networks.

``tests/simulator/test_queueing.py`` drives the DES with the matching
arrival/service processes and checks it against these formulas -- the
strongest correctness evidence a home-grown simulator can offer.
"""

from __future__ import annotations

import math


def _check_utilization(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")


def mm1_mean_wait(service_ms: float, rho: float) -> float:
    """M/M/1 mean queueing delay (excluding service)."""
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    _check_utilization(rho)
    return rho * service_ms / (1.0 - rho)


def md1_mean_wait(service_ms: float, rho: float) -> float:
    """M/D/1 mean queueing delay: half the M/M/1 value."""
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    _check_utilization(rho)
    return rho * service_ms / (2.0 * (1.0 - rho))


def mg1_mean_wait(service_ms: float, rho: float, service_cv2: float) -> float:
    """M/G/1 (Pollaczek-Khinchine) mean queueing delay.

    ``service_cv2`` is the squared coefficient of variation of the
    service time (0 = deterministic, 1 = exponential).
    """
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    if service_cv2 < 0:
        raise ValueError("squared CV must be >= 0")
    _check_utilization(rho)
    return rho * service_ms * (1.0 + service_cv2) / (2.0 * (1.0 - rho))


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: probability an arrival must queue in M/M/m.

    ``offered_load`` is a = lambda * service (erlangs); requires
    ``a < servers`` for stability.
    """
    if servers <= 0:
        raise ValueError("server count must be positive")
    if offered_load < 0:
        raise ValueError("offered load must be >= 0")
    if offered_load >= servers:
        raise ValueError("offered load must be below the server count")
    # Numerically stable iterative form of the Erlang B recursion.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mmm_mean_wait(servers: int, service_ms: float, offered_load: float) -> float:
    """M/M/m mean queueing delay via Erlang C."""
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    pw = erlang_c(servers, offered_load)
    rho = offered_load / servers
    return pw * service_ms / (servers * (1.0 - rho))


def _check_mm1k(service_ms: float, rho: float, capacity: int) -> None:
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    if rho < 0:
        raise ValueError("utilization must be >= 0")
    if capacity < 1:
        raise ValueError("capacity must hold at least one request")


def mm1k_blocking_probability(rho: float, capacity: int) -> float:
    """M/M/1/K probability an arrival finds the system full (is dropped).

    ``capacity`` is K, the total number of requests the system holds
    (one in service plus K-1 waiting).  Unlike the infinite-queue
    formulas, ``rho`` may be >= 1: the finite system stays stable and
    simply drops more.  P_K = (1-rho) rho^K / (1 - rho^(K+1)), with the
    rho -> 1 limit 1/(K+1).
    """
    _check_mm1k(1.0, rho, capacity)
    if math.isclose(rho, 1.0):
        return 1.0 / (capacity + 1)
    return (1.0 - rho) * rho**capacity / (1.0 - rho ** (capacity + 1))


def mm1k_mean_number(rho: float, capacity: int) -> float:
    """M/M/1/K mean number of requests in the system (L)."""
    _check_mm1k(1.0, rho, capacity)
    k = capacity
    if math.isclose(rho, 1.0):
        return k / 2.0
    return rho / (1.0 - rho) - (k + 1) * rho ** (k + 1) / (1.0 - rho ** (k + 1))


def mm1k_mean_wait(service_ms: float, rho: float, capacity: int) -> float:
    """M/M/1/K mean queueing delay (excluding service) of *admitted* work.

    Little's law over the effective (non-dropped) arrival rate:
    W = L / lambda_eff - service, with lambda_eff = lambda (1 - P_K).
    """
    _check_mm1k(service_ms, rho, capacity)
    p_block = mm1k_blocking_probability(rho, capacity)
    lam_per_ms = rho / service_ms
    lam_eff = lam_per_ms * (1.0 - p_block)
    if lam_eff <= 0:
        return 0.0
    return mm1k_mean_number(rho, capacity) / lam_eff - service_ms


def mm1_sojourn_percentile_ms(service_ms: float, rho: float, quantile: float) -> float:
    """Exact M/M/1 FCFS sojourn-time percentile.

    The stationary response time (wait + service) of an M/M/1 FCFS
    queue is exponential with rate ``mu (1 - rho)``, so every quantile
    has a closed form: ``-mean_sojourn * ln(1 - q)``.  This is what the
    hybrid fast path (:mod:`repro.perf.sharded`) uses to synthesize
    p50/p99 for steady-state windows it never event-steps.
    """
    if service_ms <= 0:
        raise ValueError("service time must be positive")
    _check_utilization(rho)
    if not 0.0 <= quantile < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {quantile}")
    mean_sojourn = service_ms / (1.0 - rho)
    return -mean_sojourn * math.log(1.0 - quantile)


def mm1k_sojourn_percentile_ms(
    service_ms: float, rho: float, capacity: int, quantile: float
) -> float:
    """M/M/1/K sojourn percentile under an exponential approximation.

    The admitted-work sojourn of a finite queue is a phase mixture (an
    Erlang ladder weighted by the truncated queue-length distribution),
    not exponential; matching its *mean* with an exponential tail is the
    documented approximation the hybrid path calibrates against full DES
    (the calibration window records the residual error in telemetry).
    For ``capacity`` large enough that blocking vanishes it converges to
    the exact :func:`mm1_sojourn_percentile_ms`.
    """
    _check_mm1k(service_ms, rho, capacity)
    if not 0.0 <= quantile < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {quantile}")
    mean_sojourn = mm1k_mean_wait(service_ms, rho, capacity) + service_ms
    return -mean_sojourn * math.log(1.0 - quantile)


def interactive_response_law(
    population: int, throughput_per_ms: float, think_ms: float
) -> float:
    """Closed-network response-time law: R = N/X - Z."""
    if population <= 0:
        raise ValueError("population must be positive")
    if throughput_per_ms <= 0:
        raise ValueError("throughput must be positive")
    if think_ms < 0:
        raise ValueError("think time must be >= 0")
    return population / throughput_per_ms - think_ms
