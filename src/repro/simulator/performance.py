"""Top-level performance scoring, the way the paper reports it.

- Interactive benchmarks (websearch, webmail, ytube): requests/second at
  the QoS-constrained peak found by the adaptive driver.
- Batch benchmarks (mapred-wc, mapred-wr): job execution time with the
  fixed thread population; the *score* used in ratios is the reciprocal
  of execution time, matching the paper's harmonic-mean treatment
  ("throughput and reciprocal of execution times").

``relative_performance_matrix`` reproduces the "Perf" block of Figure
2(c): every (benchmark, system) cell as a fraction of srvr1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.platforms.catalog import platform as _platform
from repro.platforms.platform import Platform
from repro.simulator.analytic import AnalyticServerModel
from repro.simulator.server_sim import DiskModel, ServerSimulator, SimConfig
from repro.simulator.sweep import QosSweep
from repro.workloads.base import MetricKind, Workload
from repro.workloads.suite import make_workload


@dataclass(frozen=True)
class PerformanceResult:
    """Score of one (platform, workload) pair."""

    platform: str
    workload: str
    metric_kind: MetricKind
    #: requests/second for interactive benchmarks; tasks/second for batch.
    throughput_rps: float
    #: job execution time in seconds (batch benchmarks only).
    execution_time_s: Optional[float]
    qos_met: bool

    @property
    def score(self) -> float:
        """Scalar used in performance ratios and harmonic means."""
        if self.metric_kind is MetricKind.EXECUTION_TIME:
            assert self.execution_time_s is not None
            return 1.0 / self.execution_time_s
        return self.throughput_rps


def measure_performance(
    platform: Platform,
    workload: Workload,
    config: SimConfig = SimConfig(),
    disk_model: Optional[DiskModel] = None,
    memory_slowdown: float = 1.0,
    method: str = "sim",
) -> PerformanceResult:
    """Score one (platform, workload) pair.

    ``method='sim'`` runs the DES (with the adaptive QoS driver for
    interactive benchmarks); ``method='analytic'`` uses the MVA model
    (no QoS constraint -- useful for fast exploration).
    """
    profile = workload.profile
    if method not in ("sim", "analytic"):
        raise ValueError(f"unknown method {method!r}")

    if method == "analytic":
        disk_service = None
        if disk_model is not None:
            mean_service = getattr(disk_model, "mean_service_ms", None)
            if mean_service is None:
                raise ValueError(
                    "analytic method needs a disk model with mean_service_ms"
                )
            disk_service = mean_service(workload.mean_demand())
        model = AnalyticServerModel(
            platform,
            workload,
            disk_service_ms=disk_service,
            cpu_multiplier=memory_slowdown,
        )
        rps = model.throughput_rps()
        qos_met = True
    elif profile.metric_kind is MetricKind.EXECUTION_TIME:
        result = ServerSimulator(
            platform,
            workload,
            config=config,
            disk_model=disk_model,
            memory_slowdown=memory_slowdown,
        ).run()
        rps = result.throughput_rps
        qos_met = True
    else:
        sweep = QosSweep(
            platform,
            workload,
            config=config,
            disk_model=disk_model,
            memory_slowdown=memory_slowdown,
        ).find_peak()
        rps = sweep.throughput_rps
        qos_met = sweep.qos_met

    execution_time = None
    if profile.metric_kind is MetricKind.EXECUTION_TIME:
        execution_time = profile.total_work_units / max(rps, 1e-12)

    return PerformanceResult(
        platform=platform.name,
        workload=workload.name,
        metric_kind=profile.metric_kind,
        throughput_rps=rps,
        execution_time_s=execution_time,
        qos_met=qos_met,
    )


def relative_performance_matrix(
    system_names: Iterable[str],
    benchmark_names: Iterable[str],
    baseline: str = "srvr1",
    method: str = "sim",
    config: SimConfig = SimConfig(),
) -> Dict[str, Dict[str, float]]:
    """Figure 2(c) "Perf" block: scores relative to ``baseline``.

    Returns ``{benchmark: {system: fraction_of_baseline}}``.
    """
    systems = list(system_names)
    if baseline not in systems:
        systems = [baseline] + systems
    matrix: Dict[str, Dict[str, float]] = {}
    for bench in benchmark_names:
        workload = make_workload(bench)
        scores = {
            name: measure_performance(
                _platform(name), workload, config=config, method=method
            ).score
            for name in systems
        }
        base = scores[baseline]
        matrix[bench] = {name: scores[name] / base for name in systems}
    return matrix
