"""Websearch: unstructured data processing (paper Table 1, row 1).

Models the paper's Nutch-0.9/Tomcat/Apache benchmark: a 20 GB dataset with
a 1.3 GB index of 1.3 million documents, 25% of index terms cached in
memory.  Query keywords follow a Zipf distribution of indexed-word
frequency (after Xie and O'Hallaron) and the keyword count per query
follows observed real-world patterns.  QoS requires >95% of queries to
complete within 0.5 seconds.

Structure of one query:

1. Draw the keyword count (1-4 keywords, skewed toward 1-2).
2. For each keyword, draw a term rank from the Zipf sampler.  Popular
   terms have longer posting lists (more CPU and memory work) but are more
   likely to be among the 25% of cached index terms (no disk I/O).
3. CPU/memory demand accumulates per keyword; disk demand accumulates per
   *uncached* keyword; the response page adds network bytes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads._calibrate import calibrated_sampler
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec
from repro.workloads.zipf import ZipfSampler, discrete_sample

#: Calibrated mean per-query demand (see DESIGN.md, performance calibration).
MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=40.0,
    mem_ms_ref=30.0,
    disk_ios=1.5,
    disk_bytes=300_000.0,
    net_bytes=100_000.0,
)

#: Keyword-count distribution: (count, probability).  Real query logs are
#: dominated by one- and two-keyword queries.
KEYWORD_COUNT_DIST: List[Tuple[int, float]] = [(1, 0.35), (2, 0.35), (3, 0.20), (4, 0.10)]

#: Index model: distinct indexed terms and popularity skew.
INDEX_TERMS = 100_000
ZIPF_ALPHA = 0.9
#: Fraction of index terms cached in memory (paper: 25%).
CACHED_TERM_FRACTION = 0.25

#: Paper QoS: >95% of queries take < 0.5 seconds.
QOS = QosSpec(limit_ms=500.0, percentile=0.95)

#: Mean client think time between queries.
THINK_TIME_MS = 1000.0

#: Starting client population for the adaptive driver.
DEFAULT_POPULATION = 96

#: Cache-size sensitivity and in-order IPC for search code (branchy,
#: pointer-chasing inverted-index traversal).
CACHE_SENSITIVITY = 0.10
INORDER_IPC = 0.45
#: Pointer-chasing index traversal stalls on DRAM latency ~30% of the time.
STALL_FRACTION = 0.30


class _QueryModel:
    """Structural (pre-calibration) query sampler."""

    def __init__(self) -> None:
        self._zipf = ZipfSampler(INDEX_TERMS, ZIPF_ALPHA)
        self._cached_terms = int(CACHED_TERM_FRACTION * INDEX_TERMS)
        self._kw_weights = [p for _, p in KEYWORD_COUNT_DIST]
        self._kw_counts = [k for k, _ in KEYWORD_COUNT_DIST]

    def __call__(self, rng: random.Random) -> Request:
        keywords = self._kw_counts[discrete_sample(self._kw_weights, rng)]
        cpu = 0.0
        mem = 0.0
        ios = 0.0
        dbytes = 0.0
        for _ in range(keywords):
            rank = self._zipf.sample(rng)
            # Posting-list length shrinks with rank; popular terms cost
            # more CPU/memory to merge but are more likely cached.
            posting_weight = 1.0 / ((rank + 1) ** 0.35)
            work = posting_weight * rng.lognormvariate(0.0, 0.35)
            cpu += work
            mem += work
            if rank >= self._cached_terms:
                # Uncached index term: posting list fetched from disk.
                ios += 1.0 + rng.random()
                dbytes += posting_weight * rng.lognormvariate(0.0, 0.3)
        # Result scoring/rendering plus the response page.
        cpu += 0.25 * rng.expovariate(1.0)
        net = 0.5 + 0.5 * rng.expovariate(1.0)
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=cpu,
                mem_ms_ref=mem,
                disk_ios=ios,
                disk_bytes=dbytes,
                net_bytes=net,
                cpu_parallelism=keywords,
            ),
            kind=f"query-{keywords}kw",
        )


def make_websearch() -> Workload:
    """Build the websearch benchmark with calibrated mean demands."""
    profile = WorkloadProfile(
        name="websearch",
        description=(
            "Open source Nutch-0.9, Tomcat 6 with clustering, and Apache2. "
            "1.3GB index of 1.3 million documents, 25% of index terms "
            "cached in memory. 2GB Java heap."
        ),
        emphasizes="the role of unstructured data",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=MEAN_DEMAND,
        population=PopulationPolicy(fixed=DEFAULT_POPULATION),
        qos=QOS,
        think_time_ms=THINK_TIME_MS,
        cache_sensitivity=CACHE_SENSITIVITY,
        inorder_ipc_factor=INORDER_IPC,
        stall_fraction=STALL_FRACTION,
    )
    return Workload(profile, calibrated_sampler(_QueryModel(), MEAN_DEMAND))
