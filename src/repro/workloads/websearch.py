"""Websearch: unstructured data processing (paper Table 1, row 1).

Models the paper's Nutch-0.9/Tomcat/Apache benchmark: a 20 GB dataset with
a 1.3 GB index of 1.3 million documents, 25% of index terms cached in
memory.  Query keywords follow a Zipf distribution of indexed-word
frequency (after Xie and O'Hallaron) and the keyword count per query
follows observed real-world patterns.  QoS requires >95% of queries to
complete within 0.5 seconds.

Structure of one query:

1. Draw the keyword count (1-4 keywords, skewed toward 1-2).
2. For each keyword, draw a term rank from the Zipf sampler.  Popular
   terms have longer posting lists (more CPU and memory work) but are more
   likely to be among the 25% of cached index terms (no disk I/O).
3. CPU/memory demand accumulates per keyword; disk demand accumulates per
   *uncached* keyword; the response page adds network bytes.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from math import exp, log, sqrt
from typing import Callable, List, Tuple

from repro.workloads._calibrate import calibrated_sampler, calibration_factors
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec
from repro.workloads.zipf import ZipfSampler, discrete_sample

#: Calibrated mean per-query demand (see DESIGN.md, performance calibration).
MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=40.0,
    mem_ms_ref=30.0,
    disk_ios=1.5,
    disk_bytes=300_000.0,
    net_bytes=100_000.0,
)

#: Keyword-count distribution: (count, probability).  Real query logs are
#: dominated by one- and two-keyword queries.
KEYWORD_COUNT_DIST: List[Tuple[int, float]] = [(1, 0.35), (2, 0.35), (3, 0.20), (4, 0.10)]

#: Index model: distinct indexed terms and popularity skew.
INDEX_TERMS = 100_000
ZIPF_ALPHA = 0.9
#: Fraction of index terms cached in memory (paper: 25%).
CACHED_TERM_FRACTION = 0.25

#: Paper QoS: >95% of queries take < 0.5 seconds.
QOS = QosSpec(limit_ms=500.0, percentile=0.95)

#: Mean client think time between queries.
THINK_TIME_MS = 1000.0

#: Starting client population for the adaptive driver.
DEFAULT_POPULATION = 96

#: Cache-size sensitivity and in-order IPC for search code (branchy,
#: pointer-chasing inverted-index traversal).
CACHE_SENSITIVITY = 0.10
INORDER_IPC = 0.45
#: Pointer-chasing index traversal stalls on DRAM latency ~30% of the time.
STALL_FRACTION = 0.30


class _QueryModel:
    """Structural (pre-calibration) query sampler."""

    def __init__(self) -> None:
        self._zipf = ZipfSampler(INDEX_TERMS, ZIPF_ALPHA)
        self._cached_terms = int(CACHED_TERM_FRACTION * INDEX_TERMS)
        self._kw_weights = [p for _, p in KEYWORD_COUNT_DIST]
        self._kw_counts = [k for k, _ in KEYWORD_COUNT_DIST]

    def __call__(self, rng: random.Random) -> Request:
        keywords = self._kw_counts[discrete_sample(self._kw_weights, rng)]
        cpu = 0.0
        mem = 0.0
        ios = 0.0
        dbytes = 0.0
        for _ in range(keywords):
            rank = self._zipf.sample(rng)
            # Posting-list length shrinks with rank; popular terms cost
            # more CPU/memory to merge but are more likely cached.
            posting_weight = 1.0 / ((rank + 1) ** 0.35)
            work = posting_weight * rng.lognormvariate(0.0, 0.35)
            cpu += work
            mem += work
            if rank >= self._cached_terms:
                # Uncached index term: posting list fetched from disk.
                ios += 1.0 + rng.random()
                dbytes += posting_weight * rng.lognormvariate(0.0, 0.3)
        # Result scoring/rendering plus the response page.
        cpu += 0.25 * rng.expovariate(1.0)
        net = 0.5 + 0.5 * rng.expovariate(1.0)
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=cpu,
                mem_ms_ref=mem,
                disk_ios=ios,
                disk_bytes=dbytes,
                net_bytes=net,
                cpu_parallelism=keywords,
            ),
            kind=f"query-{keywords}kw",
        )


#: Kinderman-Monahan constant from CPython's ``random.normalvariate``.
_NV_MAGICCONST = 4 * exp(-0.5) / sqrt(2.0)

#: Process-wide posting-weight table ``1.0 / ((rank + 1) ** 0.35)`` for
#: the fast sampler: the weight is a pure function of the rank, so the
#: float pow is paid once per process instead of per keyword draw.  The
#: table entries are computed with exactly the expression used by
#: :meth:`_QueryModel.__call__`, hence bitwise-identical.
_PW_TABLE: List[float] = []


def _posting_weights(n: int) -> List[float]:
    if len(_PW_TABLE) < n:
        _PW_TABLE.extend(
            1.0 / ((rank + 1) ** 0.35) for rank in range(len(_PW_TABLE), n)
        )
    return _PW_TABLE


def _fast_demand_sampler(
    model: _QueryModel, factors: List[float]
) -> Callable[[random.Random], tuple]:
    """Tuple-returning query demand path for the cohort cluster engine.

    Replicates :meth:`_QueryModel.__call__` plus the calibration wrapper
    with every ``random.Random`` method inlined -- the same uniforms, in
    the same order, producing bitwise-identical component values -- but
    returns a plain tuple instead of building Request/ResourceDemand
    objects.  The inlined ``lognormvariate`` is CPython's
    Kinderman-Monahan rejection loop verbatim (``tests/workloads``
    asserts value- and state-equality against ``random.Random``).
    """
    cdf = model._zipf._cdf
    top_rank = model._zipf.n - 1
    cached_terms = model._cached_terms
    pw_table = _posting_weights(model._zipf.n)
    # Jump table over the uniform draw: bucket j brackets the bisect of
    # any u in [j/B, (j+1)/B), shrinking the search from the full 100k
    # CDF to a handful of entries.  The bounded bisect_left returns the
    # exact same index as the unbounded one, so sampled ranks (and the
    # RNG stream) are unchanged.
    _B = 4096
    _lo = [0] * _B
    _hi = [0] * _B
    for j in range(_B):
        _lo[j] = bisect_left(cdf, j / _B)
        _hi[j] = bisect_left(cdf, (j + 1) / _B)
    kw_weights = model._kw_weights
    kw_total = sum(kw_weights)
    acc = 0.0
    kw_edges = []
    for w in kw_weights:
        acc += w
        kw_edges.append(acc)
    edge1, edge2, edge3 = kw_edges[0], kw_edges[1], kw_edges[2]
    f_cpu, f_mem, f_ios, f_dbytes, f_net = factors
    nv = _NV_MAGICCONST
    _bisect = bisect_left
    _exp = exp
    _log = log

    def sample(rng: random.Random) -> tuple:
        r = rng.random
        u = r() * kw_total
        if u < edge1:
            keywords = 1
        elif u < edge2:
            keywords = 2
        elif u < edge3:
            keywords = 3
        else:
            keywords = 4
        cpu = 0.0
        mem = 0.0
        ios = 0.0
        dbytes = 0.0
        for _ in range(keywords):
            u = r()
            # int(u * 4096.0) is exact (power-of-two scale), so the
            # bracketed bisect returns the unbounded bisect's index.
            j = int(u * 4096.0)
            rank = _bisect(cdf, u, _lo[j], _hi[j])
            if rank > top_rank:
                rank = top_rank
            posting_weight = pw_table[rank]
            while True:  # normalvariate(0, 1) rejection loop
                u1 = r()
                u2 = 1.0 - r()
                z = nv * (u1 - 0.5) / u2
                if z * z / 4.0 <= -_log(u2):
                    break
            work = posting_weight * _exp(z * 0.35)
            cpu += work
            mem += work
            if rank >= cached_terms:
                ios += 1.0 + r()
                while True:
                    u1 = r()
                    u2 = 1.0 - r()
                    z = nv * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                dbytes += posting_weight * _exp(z * 0.3)
        cpu += 0.25 * -_log(1.0 - r())
        net = 0.5 + 0.5 * -_log(1.0 - r())
        return (
            cpu * f_cpu,
            mem * f_mem,
            ios * f_ios,
            dbytes * f_dbytes,
            net * f_net,
            False,
            keywords,
        )

    return sample


def make_websearch() -> Workload:
    """Build the websearch benchmark with calibrated mean demands."""
    profile = WorkloadProfile(
        name="websearch",
        description=(
            "Open source Nutch-0.9, Tomcat 6 with clustering, and Apache2. "
            "1.3GB index of 1.3 million documents, 25% of index terms "
            "cached in memory. 2GB Java heap."
        ),
        emphasizes="the role of unstructured data",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=MEAN_DEMAND,
        population=PopulationPolicy(fixed=DEFAULT_POPULATION),
        qos=QOS,
        think_time_ms=THINK_TIME_MS,
        cache_sensitivity=CACHE_SENSITIVITY,
        inorder_ipc_factor=INORDER_IPC,
        stall_fraction=STALL_FRACTION,
    )
    model = _QueryModel()
    factors = calibration_factors(model, MEAN_DEMAND)
    workload = Workload(profile, calibrated_sampler(model, MEAN_DEMAND, factors))
    workload.fast_demand = _fast_demand_sampler(model, factors)
    return workload
