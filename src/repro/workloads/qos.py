"""Quality-of-service specifications and tracking.

The paper measures interactive workloads as requests-per-second *for
comparable QoS guarantees*: websearch requires >95% of queries under 0.5
seconds, webmail >95% of requests under 0.8 seconds, and ytube extends the
QoS requirement to model streaming behaviour (similar violation rates
across runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class QosSpec:
    """A tail-latency QoS target: ``percentile`` of requests under ``limit_ms``."""

    limit_ms: float
    percentile: float = 0.95

    def __post_init__(self) -> None:
        if self.limit_ms <= 0:
            raise ValueError("QoS limit must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")

    def describe(self) -> str:
        return (
            f">{self.percentile * 100:.0f}% of requests take "
            f"<{self.limit_ms / 1000:g} seconds"
        )


class QosTracker:
    """Collects response times and evaluates a :class:`QosSpec`.

    Uses exact order statistics over the collected samples (the simulated
    measurement windows are small enough that a full sort is cheap).
    """

    def __init__(self, spec: QosSpec):
        self.spec = spec
        self._samples: List[float] = []

    def record(self, response_ms: float) -> None:
        if response_ms < 0:
            raise ValueError("response time must be >= 0")
        self._samples.append(response_ms)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile_ms(self, percentile: float | None = None) -> float:
        """Response time at the given percentile (defaults to the spec's)."""
        if not self._samples:
            raise ValueError("no samples recorded")
        p = self.spec.percentile if percentile is None else percentile
        ordered = sorted(self._samples)
        # Nearest-rank percentile: smallest value with CDF >= p.
        rank = max(0, math.ceil(p * len(ordered)) - 1)
        return ordered[rank]

    def within_limit_count(self) -> int:
        """Samples meeting the QoS limit (the goodput numerator)."""
        return sum(1 for s in self._samples if s <= self.spec.limit_ms)

    def violation_rate(self) -> float:
        """Fraction of samples exceeding the QoS limit."""
        if not self._samples:
            return 0.0
        over = sum(1 for s in self._samples if s > self.spec.limit_ms)
        return over / len(self._samples)

    def satisfied(self) -> bool:
        """True if the configured percentile meets the limit."""
        if not self._samples:
            return True
        return self.percentile_ms() <= self.spec.limit_ms
