"""Ytube: rich media serving (paper Table 1, row 3).

Models the paper's heavily modified SPECweb2005 Support workload driven
with YouTube edge-traffic characteristics (after Gill et al.): video
popularity follows a Zipf distribution, file and download sizes follow the
heavy-tailed distributions observed at the edge, and the QoS requirement
is extended to model streaming behaviour.

The key serving dynamics:

- Streams are *paced* at the video bitrate, so a serving connection lives
  for tens of seconds regardless of server speed.  We model this as a
  large per-request think time (the pacing interval) with a fixed
  connection population -- which makes peak RPS nearly platform-
  independent until a platform's CPU can no longer sustain the per-stream
  work, exactly the paper's observed behaviour (every system from srvr2
  to emb1 lands within ~10% of srvr1; emb2 collapses).
- Popular videos live in the page cache; only the Zipf tail reaches disk.
- Many views are partial (viewers abandon), shrinking transferred bytes.
"""

from __future__ import annotations

import random

from repro.workloads._calibrate import calibrated_sampler
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec
from repro.workloads.zipf import ZipfSampler

#: Calibrated mean per-stream demand (see DESIGN.md).
MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=45.0,
    mem_ms_ref=12.0,
    disk_ios=3.0,
    disk_bytes=350_000.0,
    net_bytes=1_500_000.0,
)

#: Streaming QoS: startup latency must stay interactive.
QOS = QosSpec(limit_ms=2000.0, percentile=0.95)

#: Mean stream pacing interval: a connection occupies its slot this long.
THINK_TIME_MS = 15_000.0

#: Concurrent connection budget (limited by per-connection memory state,
#: which is identical across the 4 GB systems).
DEFAULT_POPULATION = 300

#: Streaming code: low cache sensitivity, mild in-order penalty
#: (sequential buffer copies, not pointer chasing).
CACHE_SENSITIVITY = 0.02
INORDER_IPC = 0.8
#: Streaming copies overlap well; modest stall share.
STALL_FRACTION = 0.20

#: Video catalog model.
CATALOG_SIZE = 10_000
ZIPF_ALPHA = 0.8
#: Hottest videos that fit in the page cache (served without disk I/O).
CACHED_VIDEOS = 400


class _StreamModel:
    """Structural (pre-calibration) stream sampler."""

    def __init__(self) -> None:
        self._zipf = ZipfSampler(CATALOG_SIZE, ZIPF_ALPHA)

    def __call__(self, rng: random.Random) -> Request:
        rank = self._zipf.sample(rng)
        # Heavy-tailed video size (lognormal; most videos a few MB).
        size = rng.lognormvariate(0.0, 0.8)
        # Partial views: fraction of the video actually transferred.
        watched = min(1.0, 0.25 + rng.expovariate(1.0 / 0.45))
        transferred = size * watched
        cached = rank < CACHED_VIDEOS
        if cached:
            ios, dbytes = 0.0, 0.0
        else:
            # Chunked reads from disk for the cold tail.
            ios = 1.0 + 3.0 * transferred
            dbytes = transferred
        # Per-stream CPU: connection handling + buffer copies scale with
        # bytes moved.
        cpu = (0.3 + transferred) * rng.lognormvariate(0.0, 0.3)
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=cpu,
                mem_ms_ref=transferred,
                disk_ios=ios,
                disk_bytes=dbytes,
                net_bytes=transferred,
            ),
            kind="stream-cached" if cached else "stream-disk",
        )


def make_ytube() -> Workload:
    """Build the ytube benchmark with calibrated mean demands."""
    profile = WorkloadProfile(
        name="ytube",
        description=(
            "Modified SPECweb2005 Support workload with YouTube traffic "
            "characteristics (Gill et al. edge traces); Apache2/Tomcat6 "
            "with Rock httpd; Zipf video popularity, streaming QoS."
        ),
        emphasizes="the use of rich media",
        metric_kind=MetricKind.RPS_STREAM,
        mean_demand=MEAN_DEMAND,
        population=PopulationPolicy(fixed=DEFAULT_POPULATION),
        qos=QOS,
        think_time_ms=THINK_TIME_MS,
        cache_sensitivity=CACHE_SENSITIVITY,
        inorder_ipc_factor=INORDER_IPC,
        stall_fraction=STALL_FRACTION,
        max_population=DEFAULT_POPULATION,
    )
    return Workload(profile, calibrated_sampler(_StreamModel(), MEAN_DEMAND))
