"""Bounded Zipf sampling.

The paper's workloads lean on Zipf distributions twice: websearch query
keywords follow a Zipf distribution of indexed-word frequency (after Xie
and O'Hallaron), and ytube video popularity follows a Zipf distribution
(after Gill et al.'s YouTube edge traces).

:class:`ZipfSampler` draws ranks from a bounded Zipf distribution with
O(1) sampling using the cumulative-inverse method on a precomputed CDF.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence

import numpy as np


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Unnormalized Zipf weights ``1 / rank**alpha`` for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]


class ZipfSampler:
    """Samples 0-based ranks from a bounded Zipf(alpha) distribution.

    Rank 0 is the most popular item.  ``alpha`` around 0.8-1.0 matches
    observed search-keyword and video-popularity skew.
    """

    def __init__(self, n: int, alpha: float):
        weights = zipf_weights(n, alpha)
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        # Guard against floating-point shortfall at the tail: the final
        # cumulative value must be exactly 1.0 so no draw falls past it.
        self._cdf[-1] = 1.0
        self._cdf_array = np.asarray(self._cdf, dtype=np.float64)
        self.n = n
        self.alpha = alpha

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``[0, n)``."""
        # Intermediate cumulative values can exceed later ones' float
        # round-off; clamp so a draw just under 1.0 can never land at n.
        return min(bisect.bisect_left(self._cdf, rng.random()), self.n - 1)

    def sample_many(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` ranks at once (``np.searchsorted`` on the CDF).

        Takes a :class:`numpy.random.Generator` (the scalar path keeps
        ``random.Random``); for a fixed uniform draw the rank matches
        :meth:`sample` exactly -- same CDF array, same left-bisection.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        ranks = np.searchsorted(self._cdf_array, rng.random(size), side="left")
        return np.minimum(ranks, self.n - 1).astype(np.int64)

    def probability(self, rank: int) -> float:
        """Probability mass of a 0-based rank."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range [0, {self.n})")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - lo

    def head_mass(self, k: int) -> float:
        """Total probability of the ``k`` most popular items.

        Used for cache-hit-rate modelling: if the ``k`` hottest objects fit
        in a cache, ``head_mass(k)`` is the expected hit rate under
        independent-reference assumptions.
        """
        if k <= 0:
            return 0.0
        return self._cdf[min(k, self.n) - 1]


def discrete_sample(weights: Sequence[float], rng: random.Random) -> int:
    """Sample an index proportional to ``weights`` (linear scan; small n)."""
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must have positive sum")
    u = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if u < acc:
            return i
    return len(weights) - 1
