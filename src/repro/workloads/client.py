"""The client driver, as the paper describes it (section 2.1).

"The servers are exercised by a Perl-based client driver, which generates
and dispatches requests (with user-defined think time), and reports
transaction rate and QoS results.  The client driver can also adapt the
number of simultaneous clients according to recently observed QoS
results, to achieve the highest level of throughput without overloading
the servers."

:class:`ClientDriver` is that artifact as a public API: configure a
platform, a workload, and optionally a think time; ``run()`` executes the
adaptive search over the discrete-event simulator and returns a
:class:`ClientDriverReport` with the transaction rate, QoS outcome, and
the operating points the driver explored along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.platforms.platform import Platform
from repro.simulator.server_sim import DiskModel, SimConfig
from repro.simulator.sweep import QosSweep
from repro.workloads.base import Workload


@dataclass(frozen=True)
class OperatingPoint:
    """One explored (population, throughput, tail latency) point."""

    clients: int
    transaction_rate_rps: float
    qos_percentile_ms: float
    qos_met: bool


@dataclass(frozen=True)
class ClientDriverReport:
    """What the paper's driver reports: transaction rate and QoS."""

    workload: str
    platform: str
    transaction_rate_rps: float
    clients: int
    qos_percentile_ms: float
    qos_met: bool
    explored: List[OperatingPoint]

    def describe(self) -> str:
        qos = "QoS met" if self.qos_met else "QoS VIOLATED (degraded mode)"
        return (
            f"{self.workload} on {self.platform}: "
            f"{self.transaction_rate_rps:.1f} transactions/s with "
            f"{self.clients} clients, p95 {self.qos_percentile_ms:.0f} ms "
            f"({qos}; {len(self.explored)} operating points explored)"
        )


class ClientDriver:
    """Adaptive closed-loop client driver over the server simulator."""

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        think_time_ms: Optional[float] = None,
        config: SimConfig = SimConfig(),
        disk_model: Optional[DiskModel] = None,
    ):
        if think_time_ms is not None:
            if think_time_ms < 0:
                raise ValueError("think time must be >= 0")
            profile = replace(workload.profile, think_time_ms=think_time_ms)
            workload = Workload(profile, workload.sample)
        self._platform = platform
        self._workload = workload
        self._config = config
        self._disk_model = disk_model

    def run(self) -> ClientDriverReport:
        """Find the peak-QoS operating point and report it."""
        sweep = QosSweep(
            self._platform,
            self._workload,
            config=self._config,
            disk_model=self._disk_model,
        )
        result = sweep.find_peak()
        explored = [
            OperatingPoint(
                clients=population,
                transaction_rate_rps=sim.throughput_rps,
                qos_percentile_ms=sim.qos_percentile_ms,
                qos_met=sim.qos_met,
            )
            for population, sim in sorted(sweep.explored().items())
        ]
        return ClientDriverReport(
            workload=self._workload.name,
            platform=self._platform.name,
            transaction_rate_rps=result.throughput_rps,
            clients=result.population,
            qos_percentile_ms=result.best.qos_percentile_ms,
            qos_met=result.qos_met,
            explored=explored,
        )
