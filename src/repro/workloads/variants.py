"""Workload variants (paper section 4: "a workload can have multiple
flavors based on the nature of the request").

The main factories reproduce the paper's single representative flavor of
each workload.  These parameterized variants let users explore the
flavor space the paper flags as future work:

- websearch with different index scales and cache coverage,
- webmail with a "light user" LoadSim-style profile,
- ytube with different popularity skews (viral vs long-tail catalogs),
- mapreduce with different CPU-per-byte intensities.

Every variant is produced by scaling the calibrated mean demands (the
distribution shapes are inherited), so the variants remain comparable to
the calibrated baselines.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable

from repro.workloads.base import Request, Workload
from repro.workloads.mapreduce import make_mapred_wc
from repro.workloads.webmail import make_webmail
from repro.workloads.websearch import make_websearch
from repro.workloads.ytube import make_ytube


def _scaled_workload(
    base: Workload,
    name: str,
    description: str,
    cpu: float = 1.0,
    mem: float = 1.0,
    disk: float = 1.0,
    net: float = 1.0,
    profile_updates: dict | None = None,
) -> Workload:
    """Derive a variant by scaling demand components of ``base``."""
    for factor in (cpu, mem, disk, net):
        if factor < 0:
            raise ValueError("scale factors must be >= 0")
    base_sampler: Callable[[random.Random], Request] = base.sample
    mean = base.mean_demand()
    new_mean = replace(
        mean,
        cpu_ms_ref=mean.cpu_ms_ref * cpu,
        mem_ms_ref=mean.mem_ms_ref * mem,
        disk_ios=mean.disk_ios * disk,
        disk_bytes=mean.disk_bytes * disk,
        net_bytes=mean.net_bytes * net,
    )
    profile = replace(
        base.profile,
        name=name,
        description=description,
        mean_demand=new_mean,
        **(profile_updates or {}),
    )

    def sampler(rng: random.Random) -> Request:
        request = base_sampler(rng)
        d = request.demand
        return Request(
            demand=replace(
                d,
                cpu_ms_ref=d.cpu_ms_ref * cpu,
                mem_ms_ref=d.mem_ms_ref * mem,
                disk_ios=d.disk_ios * disk,
                disk_bytes=d.disk_bytes * disk,
                net_bytes=d.net_bytes * net,
            ),
            kind=request.kind,
        )

    return Workload(profile, sampler)


def make_websearch_large_index(scale: float = 4.0) -> Workload:
    """Websearch over a ``scale``-x larger index: more CPU and memory per
    query, more uncached postings on disk."""
    if scale < 1.0:
        raise ValueError("index scale must be >= 1")
    return _scaled_workload(
        make_websearch(),
        name=f"websearch-x{scale:g}",
        description=f"websearch with a {scale:g}x larger index",
        cpu=scale**0.5,  # index lookup cost grows sublinearly (log-ish)
        mem=scale**0.5,
        disk=scale,      # uncached tail grows with index size
    )


def make_webmail_light_users() -> Workload:
    """LoadSim "light user" profile: smaller mailboxes, fewer
    attachments, shorter actions."""
    return _scaled_workload(
        make_webmail(),
        name="webmail-light",
        description="webmail with the LoadSim light-user profile",
        cpu=0.6,
        mem=0.6,
        disk=0.5,
        net=0.4,
    )


def make_ytube_viral(alpha_boost: float = 2.0) -> Workload:
    """A viral catalog: traffic concentrates on few clips, so the page
    cache absorbs nearly all disk traffic."""
    if alpha_boost < 1.0:
        raise ValueError("alpha boost must be >= 1")
    return _scaled_workload(
        make_ytube(),
        name="ytube-viral",
        description="ytube with viral (highly concentrated) popularity",
        disk=1.0 / alpha_boost,
    )


def make_mapred_compute_heavy(cpu_factor: float = 3.0) -> Workload:
    """A compute-bound mapreduce application (e.g. inverted-index build
    or ML feature extraction) on the same 5 GB corpus."""
    if cpu_factor <= 0:
        raise ValueError("cpu factor must be positive")
    return _scaled_workload(
        make_mapred_wc(),
        name="mapred-compute",
        description=f"mapreduce with {cpu_factor:g}x CPU work per byte",
        cpu=cpu_factor,
        mem=cpu_factor,
    )
