"""Webmail: interactive internet services (paper Table 1, row 2).

Models the paper's SquirrelMail/Apache/PHP4 benchmark with Courier-IMAP
and Exim backends: 1,000 virtual users with 7 GB of stored mail, sessions
modelled after the MS Exchange 2003 LoadSim "heavy user" profile.  Clients
interact in sessions of actions (login, read, reply/forward/delete/move,
compose, send).  QoS requires >95% of requests under 0.8 seconds.

Each *request* is one session action.  PHP interpretation makes every
action CPU-heavy (the paper observes webmail is the most CPU-sensitive
benchmark); reads and attachment downloads add backend IMAP traffic (our
network component), and mailbox access adds disk I/O.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.workloads._calibrate import calibrated_sampler
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec
from repro.workloads.zipf import discrete_sample

#: Calibrated mean per-action demand (see DESIGN.md).
MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=70.0,
    mem_ms_ref=30.0,
    disk_ios=2.0,
    disk_bytes=375_000.0,
    net_bytes=200_000.0,
)

#: Paper QoS: >95% of requests take < 0.8 seconds.
QOS = QosSpec(limit_ms=800.0, percentile=0.95)

THINK_TIME_MS = 2000.0
DEFAULT_POPULATION = 96

#: PHP/webmail code is the most cache- and CPU-sensitive in the suite.
CACHE_SENSITIVITY = 0.20
INORDER_IPC = 0.45
#: PHP interpretation: moderate fixed-latency stall share.
STALL_FRACTION = 0.25


@dataclass(frozen=True)
class MailAction:
    """One LoadSim-style action with relative (unitless) demand weights."""

    name: str
    weight: float  # relative frequency in the heavy-user profile
    cpu: float
    disk_ios: float
    disk_bytes: float
    net_bytes: float
    attachment_prob: float = 0.0


#: Heavy-user action mix, modeled after the Exchange 2003 LoadSim profile
#: the paper cites: reads dominate, with substantial compose/reply and
#: housekeeping (delete/move) traffic.
ACTION_MIX: List[MailAction] = [
    MailAction("login", weight=0.04, cpu=1.2, disk_ios=2.0, disk_bytes=0.3, net_bytes=0.3),
    MailAction("list-folder", weight=0.18, cpu=0.8, disk_ios=1.5, disk_bytes=0.6, net_bytes=0.5),
    MailAction("read-message", weight=0.34, cpu=1.0, disk_ios=1.0, disk_bytes=1.0,
               net_bytes=1.0, attachment_prob=0.25),
    MailAction("reply-forward", weight=0.12, cpu=1.4, disk_ios=1.2, disk_bytes=0.8, net_bytes=1.2),
    MailAction("compose-send", weight=0.10, cpu=1.5, disk_ios=1.5, disk_bytes=1.0,
               net_bytes=1.5, attachment_prob=0.15),
    MailAction("delete-move", weight=0.14, cpu=0.7, disk_ios=2.0, disk_bytes=0.4, net_bytes=0.2),
    MailAction("logout", weight=0.08, cpu=0.5, disk_ios=0.5, disk_bytes=0.1, net_bytes=0.1),
]

#: Attachment size multiplier relative to a plain message body.
ATTACHMENT_BYTES_FACTOR = 8.0


class SessionGenerator:
    """Generates coherent user sessions (login ... actions ... logout).

    The benchmark's clients "interact with the servers in sessions, each
    consisting of a sequence of actions".  The throughput model samples
    actions i.i.d. from the stationary mix (equivalent in steady state);
    this generator produces the *ordered* sequences -- useful for
    session-level analyses and for validating that the stationary mix
    matches the session structure.

    A session is ``login``, then a geometric number of body actions drawn
    from the body mix, then ``logout``.
    """

    def __init__(self, mean_body_actions: float = 11.0):
        if mean_body_actions < 1.0:
            raise ValueError("sessions have at least one body action")
        self._body_actions = [
            a for a in ACTION_MIX if a.name not in ("login", "logout")
        ]
        self._body_weights = [a.weight for a in self._body_actions]
        # Geometric with minimum 1: mean = 1 / (1 - p) = mean_body_actions.
        self._continue_prob = 1.0 - 1.0 / mean_body_actions

    def session(self, rng: random.Random) -> List[str]:
        """One ordered session as a list of action names."""
        actions = ["login"]
        while True:
            index = discrete_sample(self._body_weights, rng)
            actions.append(self._body_actions[index].name)
            if rng.random() >= self._continue_prob:
                break
        actions.append("logout")
        return actions


class _SessionModel:
    """Structural (pre-calibration) action sampler."""

    def __init__(self) -> None:
        self._weights = [a.weight for a in ACTION_MIX]

    def __call__(self, rng: random.Random) -> Request:
        action = ACTION_MIX[discrete_sample(self._weights, rng)]
        noise = rng.lognormvariate(0.0, 0.3)
        attachment = rng.random() < action.attachment_prob
        bytes_factor = ATTACHMENT_BYTES_FACTOR if attachment else 1.0
        cpu = action.cpu * noise
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=cpu,
                mem_ms_ref=cpu,  # PHP string churn: memory tracks CPU work
                disk_ios=action.disk_ios * (0.5 + rng.random()),
                disk_bytes=action.disk_bytes * bytes_factor * noise,
                net_bytes=action.net_bytes * bytes_factor * noise,
            ),
            kind=action.name,
        )


def make_webmail() -> Workload:
    """Build the webmail benchmark with calibrated mean demands."""
    profile = WorkloadProfile(
        name="webmail",
        description=(
            "Squirrelmail v1.4.9 with Apache2 and PHP4, Courier-IMAP v4.2 "
            "and Exim4.5. 1000 virtual users with 7GB of mail stored; "
            "usage patterns after MS Exchange 2003 LoadSim heavy users."
        ),
        emphasizes="interactive internet services",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=MEAN_DEMAND,
        population=PopulationPolicy(fixed=DEFAULT_POPULATION),
        qos=QOS,
        think_time_ms=THINK_TIME_MS,
        cache_sensitivity=CACHE_SENSITIVITY,
        inorder_ipc_factor=INORDER_IPC,
        stall_fraction=STALL_FRACTION,
    )
    return Workload(profile, calibrated_sampler(_SessionModel(), MEAN_DEMAND))
