"""Workload abstractions: resource demands, requests, profiles.

A workload is a statistical generator of :class:`Request` objects, each
carrying a platform-independent :class:`ResourceDemand`.  Demands are
expressed in reference units:

- ``cpu_ms_ref``: CPU milliseconds on the reference core (srvr1's 2.6 GHz
  out-of-order core with 8 MB L2),
- ``mem_ms_ref``: memory-channel milliseconds on one reference FB-DIMM
  channel,
- ``disk_ios`` / ``disk_bytes``: disk seeks and bytes transferred,
- ``net_bytes``: bytes moved over the NIC.

The simulator converts these into per-platform service times through
:class:`repro.platforms.platform.Platform`.  The mean demands of each
benchmark are calibrated so the relative-performance matrix across the six
Table 2 systems reproduces the shape of the paper's Figure 2(c); the
calibration procedure is documented in DESIGN.md.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Optional


class MetricKind(enum.Enum):
    """How a benchmark's performance is scored (Table 1 "Perf metric")."""

    #: Requests per second subject to a tail-latency QoS (websearch, webmail).
    RPS_QOS = "RPS w/ QoS"
    #: Requests per second with streaming QoS (ytube).
    RPS_STREAM = "RPS w/ streaming QoS"
    #: Inverse job execution time (mapreduce).
    EXECUTION_TIME = "execution time"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ResourceDemand:
    """Platform-independent resource demand of one request."""

    cpu_ms_ref: float = 0.0
    mem_ms_ref: float = 0.0
    disk_ios: float = 0.0
    disk_bytes: float = 0.0
    net_bytes: float = 0.0
    disk_write: bool = False
    #: Software threads available to process this request's CPU work in
    #: parallel (e.g. Nutch searches index segments concurrently).
    cpu_parallelism: int = 1

    def __post_init__(self) -> None:
        for name in ("cpu_ms_ref", "mem_ms_ref", "disk_ios", "disk_bytes", "net_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.cpu_parallelism < 1:
            raise ValueError("cpu_parallelism must be >= 1")

    def scaled(self, factor: float) -> "ResourceDemand":
        """Scale every demand component uniformly (used for scaled datasets)."""
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return ResourceDemand(
            cpu_ms_ref=self.cpu_ms_ref * factor,
            mem_ms_ref=self.mem_ms_ref * factor,
            disk_ios=self.disk_ios * factor,
            disk_bytes=self.disk_bytes * factor,
            net_bytes=self.net_bytes * factor,
            disk_write=self.disk_write,
            cpu_parallelism=self.cpu_parallelism,
        )


@dataclass(frozen=True)
class Request:
    """One unit of work: a query, a mail action, a video serve, or a task."""

    demand: ResourceDemand
    kind: str = "request"


@dataclass(frozen=True)
class PopulationPolicy:
    """How many concurrent clients/threads drive a server.

    Exactly one of ``fixed`` and ``per_core`` is set.  Interactive
    workloads use a fixed client population (the client driver then adapts
    it -- see :mod:`repro.simulator.sweep`); mapreduce uses the paper's
    "4 threads per CPU".
    """

    fixed: Optional[int] = None
    per_core: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.fixed is None) == (self.per_core is None):
            raise ValueError("exactly one of fixed/per_core must be set")
        value = self.fixed if self.fixed is not None else self.per_core
        if value is not None and value <= 0:
            raise ValueError("population must be positive")

    def population(self, cores: int) -> int:
        """Concurrency for a server with ``cores`` hardware cores."""
        if cores <= 0:
            raise ValueError("core count must be positive")
        if self.fixed is not None:
            return self.fixed
        assert self.per_core is not None
        return self.per_core * cores


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of a benchmark (one row of Table 1)."""

    name: str
    description: str
    emphasizes: str
    metric_kind: MetricKind
    mean_demand: ResourceDemand
    population: PopulationPolicy
    qos: Optional["QosSpec"] = None
    think_time_ms: float = 0.0
    #: Exponent on L2 size in the effective-core-speed model.
    cache_sensitivity: float = 0.0
    #: IPC factor of in-order cores on this workload's code mix
    #: (branchy pointer-chasing code suffers more than streaming code).
    inorder_ipc_factor: float = 0.45
    #: Fraction of reference CPU time that is fixed-latency memory stall
    #: (does not scale with core frequency).
    stall_fraction: float = 0.0
    #: For EXECUTION_TIME workloads: total work units in the job.
    total_work_units: int = 0
    #: Hard cap on concurrent clients (e.g. ytube's per-connection memory
    #: state limits simultaneous streams identically on every 4 GB system).
    max_population: Optional[int] = None


class Workload:
    """A benchmark: profile plus a seeded request sampler."""

    def __init__(
        self,
        profile: WorkloadProfile,
        sampler: Callable[[random.Random], Request],
    ):
        self.profile = profile
        self._sampler = sampler
        #: Optional fast demand path for the vectorized serving-tier
        #: engine (:mod:`repro.perf.cluster_kernels`): a callable
        #: ``fast_demand(rng) -> (cpu_ms_ref, mem_ms_ref, disk_ios,
        #: disk_bytes, net_bytes, disk_write, cpu_parallelism)`` that
        #: consumes *exactly* the same draws from ``rng``, in the same
        #: order, and returns *bitwise* the same component values as
        #: ``sample(rng).demand`` -- skipping the Request/ResourceDemand
        #: object construction that dominates sampling cost on the
        #: cluster hot path.  ``None`` means no fast path; consumers
        #: must fall back to :meth:`sample`.
        self.fast_demand: Optional[Callable[[random.Random], tuple]] = None

    @property
    def name(self) -> str:
        return self.profile.name

    def sample(self, rng: random.Random) -> Request:
        """Draw one request from the workload's distribution."""
        return self._sampler(rng)

    def mean_demand(self) -> ResourceDemand:
        """Calibrated mean per-request demand (used by the analytic model)."""
        return self.profile.mean_demand

    def estimate_mean_demand(self, samples: int = 4000, seed: int = 7) -> ResourceDemand:
        """Empirical mean demand from the sampler (used to verify samplers
        agree with the calibrated means)."""
        if samples <= 0:
            raise ValueError("sample count must be positive")
        rng = random.Random(seed)
        total = dict(cpu=0.0, mem=0.0, ios=0.0, dbytes=0.0, nbytes=0.0)
        for _ in range(samples):
            d = self.sample(rng).demand
            total["cpu"] += d.cpu_ms_ref
            total["mem"] += d.mem_ms_ref
            total["ios"] += d.disk_ios
            total["dbytes"] += d.disk_bytes
            total["nbytes"] += d.net_bytes
        return ResourceDemand(
            cpu_ms_ref=total["cpu"] / samples,
            mem_ms_ref=total["mem"] / samples,
            disk_ios=total["ios"] / samples,
            disk_bytes=total["dbytes"] / samples,
            net_bytes=total["nbytes"] / samples,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload({self.profile.name!r})"


# Imported late to avoid a cycle (qos has no dependencies on base).
from repro.workloads.qos import QosSpec  # noqa: E402  (re-export for typing)
