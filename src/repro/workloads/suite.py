"""The benchmark-suite registry (paper Table 1).

Maps benchmark names to factories.  The five measured benchmarks are the
four workloads of Table 1 with mapreduce split into its two applications,
matching the five rows of Figure 2(c).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import Workload
from repro.workloads.mapreduce import make_mapred_wc, make_mapred_wr
from repro.workloads.webmail import make_webmail
from repro.workloads.websearch import make_websearch
from repro.workloads.ytube import make_ytube

#: Benchmark factories in the paper's Figure 2(c) row order.
BENCHMARK_SUITE: Dict[str, Callable[[], Workload]] = {
    "websearch": make_websearch,
    "webmail": make_webmail,
    "ytube": make_ytube,
    "mapred-wc": make_mapred_wc,
    "mapred-wr": make_mapred_wr,
}


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's reporting order."""
    return list(BENCHMARK_SUITE)


def make_workload(name: str) -> Workload:
    """Instantiate a benchmark by name."""
    try:
        factory = BENCHMARK_SUITE[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {list(BENCHMARK_SUITE)}"
        ) from exc
    return factory()
