"""The warehouse-computing benchmark suite (paper Table 1).

Four workloads represent the different services in internet-sector
datacenters:

- :mod:`~repro.workloads.websearch` -- unstructured data processing
  (Nutch/Tomcat/Apache; Zipf keyword queries over a 1.3 GB index).
- :mod:`~repro.workloads.webmail` -- interactive internet services
  (SquirrelMail/IMAP; LoadSim heavy-usage session model).
- :mod:`~repro.workloads.ytube` -- rich media (SPECweb2005-Support driven
  with YouTube edge-traffic characteristics).
- :mod:`~repro.workloads.mapreduce` -- web as a platform (Hadoop word-count
  and distributed-write jobs).

Each workload is a :class:`~repro.workloads.base.Workload`: a statistical
request generator plus a performance metric and QoS definition.  Requests
carry platform-independent resource demands (CPU milliseconds on the
reference core, memory-channel milliseconds, disk I/Os and bytes, network
bytes) that :mod:`repro.simulator` converts into per-platform service
times.
"""

from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec, QosTracker
from repro.workloads.zipf import ZipfSampler, zipf_weights
from repro.workloads.websearch import make_websearch
from repro.workloads.webmail import make_webmail
from repro.workloads.ytube import make_ytube
from repro.workloads.mapreduce import make_mapred_wc, make_mapred_wr
from repro.workloads.suite import BENCHMARK_SUITE, benchmark_names, make_workload
from repro.workloads.client import ClientDriver, ClientDriverReport
from repro.workloads.variants import (
    make_mapred_compute_heavy,
    make_webmail_light_users,
    make_websearch_large_index,
    make_ytube_viral,
)

__all__ = [
    "MetricKind",
    "PopulationPolicy",
    "Request",
    "ResourceDemand",
    "Workload",
    "WorkloadProfile",
    "QosSpec",
    "QosTracker",
    "ZipfSampler",
    "zipf_weights",
    "make_websearch",
    "make_webmail",
    "make_ytube",
    "make_mapred_wc",
    "make_mapred_wr",
    "BENCHMARK_SUITE",
    "benchmark_names",
    "make_workload",
    "ClientDriver",
    "ClientDriverReport",
    "make_websearch_large_index",
    "make_webmail_light_users",
    "make_ytube_viral",
    "make_mapred_compute_heavy",
]
