"""Mapreduce: web as a platform (paper Table 1, row 4).

Models the paper's Hadoop v0.14 benchmark with 4 worker threads per CPU
core: a cluster node running offline batch jobs consisting of map and
reduce tasks over key/value pairs in a distributed file system.  Two
applications are studied:

- ``mapred-wc``: word count over a large corpus (5 GB) -- CPU work per
  input byte plus sequential HDFS reads.
- ``mapred-wr``: distributed file write populating the file system with
  randomly generated words -- write-bandwidth-bound with substantial CPU
  for word generation and serialization, plus replication traffic on the
  network.

Performance is measured as job execution time: ``total_work_units``
(HDFS-block-sized task units) divided by the simulated task throughput.
"""

from __future__ import annotations

import random

from repro.workloads._calibrate import calibrated_sampler
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)

#: The paper's Hadoop setting: 4 worker threads per CPU core.
THREADS_PER_CORE = 4

#: Calibrated mean per-task demand for word count (see DESIGN.md).
WC_MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=75.0,
    mem_ms_ref=13.0,
    disk_ios=1.0,
    disk_bytes=3_900_000.0,
    net_bytes=260_000.0,
)
#: 5 GB corpus in ~4 MB task units.
WC_WORK_UNITS = 1280

#: Calibrated mean per-task demand for distributed write.
WR_MEAN_DEMAND = ResourceDemand(
    cpu_ms_ref=325.0,
    mem_ms_ref=20.0,
    disk_ios=6.5,
    disk_bytes=14_300_000.0,
    net_bytes=650_000.0,
    disk_write=True,
)
WR_WORK_UNITS = 512

#: Fraction of tasks that are reduce/shuffle tasks (heavier on network).
REDUCE_FRACTION = 0.2

#: JVM bytecode with tight count loops: mild cache sensitivity; in-order
#: penalty between the branchy and streaming extremes.
WC_CACHE_SENSITIVITY = 0.05
WC_INORDER_IPC = 0.5
WC_STALL_FRACTION = 0.15
WR_CACHE_SENSITIVITY = 0.03
WR_INORDER_IPC = 0.6
WR_STALL_FRACTION = 0.10


class _TaskModel:
    """Structural (pre-calibration) task sampler shared by wc and wr."""

    def __init__(self, write: bool, reduce_net_factor: float):
        self._write = write
        self._reduce_net_factor = reduce_net_factor

    def __call__(self, rng: random.Random) -> Request:
        # Task input sizes are near-uniform HDFS blocks with small jitter.
        size = 0.85 + 0.3 * rng.random()
        is_reduce = rng.random() < REDUCE_FRACTION
        net_factor = self._reduce_net_factor if is_reduce else 1.0
        cpu = size * rng.lognormvariate(0.0, 0.25)
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=cpu,
                mem_ms_ref=cpu,
                disk_ios=size * (0.5 + rng.random()),
                disk_bytes=size,
                net_bytes=size * net_factor,
                disk_write=self._write,
            ),
            kind="reduce" if is_reduce else "map",
        )


def _make_mapred(
    name: str,
    mean: ResourceDemand,
    work_units: int,
    cache_sensitivity: float,
    inorder_ipc: float,
    stall_fraction: float,
    description: str,
) -> Workload:
    profile = WorkloadProfile(
        name=name,
        description=description,
        emphasizes="web as a platform",
        metric_kind=MetricKind.EXECUTION_TIME,
        mean_demand=mean,
        population=PopulationPolicy(per_core=THREADS_PER_CORE),
        qos=None,
        think_time_ms=0.0,
        cache_sensitivity=cache_sensitivity,
        inorder_ipc_factor=inorder_ipc,
        stall_fraction=stall_fraction,
        total_work_units=work_units,
    )
    sampler = calibrated_sampler(
        _TaskModel(write=mean.disk_write, reduce_net_factor=4.0), mean
    )
    return Workload(profile, sampler)


def make_mapred_wc() -> Workload:
    """Word count over a 5 GB corpus (Hadoop v0.14, 4 threads per core)."""
    return _make_mapred(
        "mapred-wc",
        WC_MEAN_DEMAND,
        WC_WORK_UNITS,
        WC_CACHE_SENSITIVITY,
        WC_INORDER_IPC,
        WC_STALL_FRACTION,
        "Hadoop v0.14 word count over a 5GB corpus; 4 threads per CPU, "
        "1.5GB Java heap.",
    )


def make_mapred_wr() -> Workload:
    """Distributed file write populating HDFS with random words."""
    return _make_mapred(
        "mapred-wr",
        WR_MEAN_DEMAND,
        WR_WORK_UNITS,
        WR_CACHE_SENSITIVITY,
        WR_INORDER_IPC,
        WR_STALL_FRACTION,
        "Hadoop v0.14 distributed file write of randomly-generated words; "
        "4 threads per CPU, 1.5GB Java heap.",
    )
