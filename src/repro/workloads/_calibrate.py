"""Internal helper: scale a structured sampler to calibrated mean demands.

Each workload module builds a *structural* request sampler from its domain
model (Zipf query terms, mail-session action mixes, video catalogs, task
DAGs).  The structural sampler fixes the *shape* of each demand
distribution; this helper then computes per-component scale factors with a
fixed probe seed so the sampler's mean demand matches the calibrated
targets recorded in the workload profile (see DESIGN.md section 3,
"Performance calibration").
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.workloads.base import Request, ResourceDemand

#: Probe draws used to estimate the structural sampler's raw means.
_PROBE_SAMPLES = 20_000
_PROBE_SEED = 20080315  # arbitrary fixed seed; ISCA 2008 vintage


def calibration_factors(
    raw_sampler: Callable[[random.Random], Request],
    target: ResourceDemand,
) -> List[float]:
    """Per-component scale factors making ``raw_sampler``'s mean ``target``.

    Components whose raw mean is zero stay zero (you cannot scale nothing
    into something); the workload must emit a structural value for every
    component it wants calibrated.  Exposed separately from
    :func:`calibrated_sampler` so a workload can share ONE probe run
    between its object-building sampler and a fast tuple-returning demand
    path (:attr:`repro.workloads.base.Workload.fast_demand`) that must
    apply bitwise-identical factors.
    """
    rng = random.Random(_PROBE_SEED)
    sums = [0.0] * 5
    for _ in range(_PROBE_SAMPLES):
        d = raw_sampler(rng).demand
        sums[0] += d.cpu_ms_ref
        sums[1] += d.mem_ms_ref
        sums[2] += d.disk_ios
        sums[3] += d.disk_bytes
        sums[4] += d.net_bytes
    means = [s / _PROBE_SAMPLES for s in sums]
    targets = [
        target.cpu_ms_ref,
        target.mem_ms_ref,
        target.disk_ios,
        target.disk_bytes,
        target.net_bytes,
    ]
    return [(t / m if m > 0 else 0.0) for t, m in zip(targets, means)]


def calibrated_sampler(
    raw_sampler: Callable[[random.Random], Request],
    target: ResourceDemand,
    factors: Optional[List[float]] = None,
) -> Callable[[random.Random], Request]:
    """Wrap ``raw_sampler`` so its mean demand equals ``target``.

    ``factors`` (from :func:`calibration_factors`) may be passed in to
    avoid re-running the probe when the caller also builds a fast demand
    path from the same factors.
    """
    if factors is None:
        factors = calibration_factors(raw_sampler, target)

    def sampler(sample_rng: random.Random) -> Request:
        raw = raw_sampler(sample_rng)
        d = raw.demand
        return Request(
            demand=ResourceDemand(
                cpu_ms_ref=d.cpu_ms_ref * factors[0],
                mem_ms_ref=d.mem_ms_ref * factors[1],
                disk_ios=d.disk_ios * factors[2],
                disk_bytes=d.disk_bytes * factors[3],
                net_bytes=d.net_bytes * factors[4],
                disk_write=d.disk_write,
                cpu_parallelism=d.cpu_parallelism,
            ),
            kind=raw.kind,
        )

    return sampler
