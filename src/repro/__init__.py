"""Reproduction of Lim et al., "Understanding and Designing New Server
Architectures for Emerging Warehouse-Computing Environments" (ISCA 2008).

The package is organized by subsystem, mirroring the paper's structure:

- :mod:`repro.costmodel` -- component/server/rack cost and power models and
  the burdened power-and-cooling (Patel-Shah) model (paper section 2.2).
- :mod:`repro.platforms` -- CPU, memory, storage, and NIC device models and
  the six-system catalog of Table 2.
- :mod:`repro.workloads` -- the four-benchmark warehouse-computing suite of
  Table 1 (websearch, webmail, ytube, mapreduce).
- :mod:`repro.simulator` -- discrete-event server simulator and the
  closed-loop max-RPS-under-QoS sweep (the paper's COTSon + client driver
  substitute).
- :mod:`repro.memsim` -- trace-driven two-level memory-sharing simulator and
  the memory-blade provisioning analysis (section 3.4).
- :mod:`repro.flashcache` -- flash-based disk caching with low-power disks
  (section 3.5).
- :mod:`repro.cooling` -- packaging/cooling models: dual-entry enclosures
  and aggregated microblade cooling (section 3.3).
- :mod:`repro.core` -- metrics (Perf/W, Perf/Inf-$, Perf/TCO-$), efficiency
  analysis, and the unified N1/N2 designs (section 3.6).
- :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core.metrics import (
    EfficiencyMetrics,
    harmonic_mean,
    relative_efficiency,
)
from repro.core.designs import (
    BaselineDesign,
    UnifiedDesign,
    n1_design,
    n2_design,
)

__version__ = "1.0.0"

__all__ = [
    "EfficiencyMetrics",
    "harmonic_mean",
    "relative_efficiency",
    "BaselineDesign",
    "UnifiedDesign",
    "n1_design",
    "n2_design",
    "__version__",
]
