"""The paper's published evaluation numbers, as structured data.

Transcribed from Lim et al., ISCA 2008.  All relative values are
fractions of the srvr1 baseline (the paper prints percentages).  Where
the paper gives only a chart (Figure 5), values are the chart's labeled
gridline readings and the text's stated ranges.
"""

from __future__ import annotations

from typing import Dict

#: Figure 1(a): cost-model totals, dollars.
PAPER_FIGURE1: Dict[str, Dict[str, float]] = {
    "srvr1": {
        "per_server_cost": 3225.0,
        "power_w": 340.0,
        "power_cooling_3yr": 2464.0,
        "total": 5758.0,
    },
    "srvr2": {
        "per_server_cost": 1620.0,
        "power_w": 215.0,
        "power_cooling_3yr": 1561.0,
        "total": 3249.0,
    },
}

#: Table 2: (max operational watts, infrastructure dollars incl. switch).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "srvr1": {"watt": 340, "inf_usd": 3294},
    "srvr2": {"watt": 215, "inf_usd": 1689},
    "desk": {"watt": 135, "inf_usd": 849},
    "mobl": {"watt": 78, "inf_usd": 989},
    "emb1": {"watt": 52, "inf_usd": 499},
    "emb2": {"watt": 35, "inf_usd": 379},
}

#: Figure 2(c) "Perf" block: fraction of srvr1.
PAPER_FIGURE2C_PERF: Dict[str, Dict[str, float]] = {
    "websearch": {"srvr2": 0.68, "desk": 0.36, "mobl": 0.34, "emb1": 0.24, "emb2": 0.11},
    "webmail": {"srvr2": 0.48, "desk": 0.19, "mobl": 0.17, "emb1": 0.11, "emb2": 0.05},
    "ytube": {"srvr2": 0.97, "desk": 0.92, "mobl": 0.95, "emb1": 0.86, "emb2": 0.24},
    "mapred-wc": {"srvr2": 0.93, "desk": 0.78, "mobl": 0.72, "emb1": 0.51, "emb2": 0.12},
    "mapred-wr": {"srvr2": 0.72, "desk": 0.70, "mobl": 0.54, "emb1": 0.48, "emb2": 0.16},
    "HMean": {"srvr2": 0.71, "desk": 0.42, "mobl": 0.38, "emb1": 0.27, "emb2": 0.10},
}

#: Figure 2(c) "Perf/Inf-$" block: fraction of srvr1.
PAPER_FIGURE2C_PERF_INF: Dict[str, Dict[str, float]] = {
    "websearch": {"srvr2": 1.33, "desk": 1.39, "mobl": 1.12, "emb1": 1.75, "emb2": 0.93},
    "webmail": {"srvr2": 0.95, "desk": 0.72, "mobl": 0.55, "emb1": 0.83, "emb2": 0.44},
    "ytube": {"srvr2": 1.88, "desk": 3.58, "mobl": 3.15, "emb1": 6.29, "emb2": 2.06},
    "mapred-wc": {"srvr2": 1.81, "desk": 3.02, "mobl": 2.41, "emb1": 3.76, "emb2": 1.01},
    "mapred-wr": {"srvr2": 1.41, "desk": 2.72, "mobl": 1.79, "emb1": 3.50, "emb2": 1.40},
    "HMean": {"srvr2": 1.39, "desk": 1.62, "mobl": 1.25, "emb1": 2.01, "emb2": 0.91},
}

#: Figure 2(c) "Perf/W" block: fraction of srvr1.
PAPER_FIGURE2C_PERF_W: Dict[str, Dict[str, float]] = {
    "websearch": {"srvr2": 1.07, "desk": 0.90, "mobl": 1.47, "emb1": 1.57, "emb2": 1.03},
    "webmail": {"srvr2": 0.76, "desk": 0.47, "mobl": 0.73, "emb1": 0.75, "emb2": 0.49},
    "ytube": {"srvr2": 1.52, "desk": 2.33, "mobl": 4.13, "emb1": 5.66, "emb2": 2.29},
    "mapred-wc": {"srvr2": 1.46, "desk": 1.97, "mobl": 3.15, "emb1": 3.38, "emb2": 1.13},
    "mapred-wr": {"srvr2": 1.14, "desk": 1.77, "mobl": 2.35, "emb1": 3.15, "emb2": 1.57},
    "HMean": {"srvr2": 1.12, "desk": 1.05, "mobl": 1.64, "emb1": 1.81, "emb2": 1.01},
}

#: Figure 2(c) "Perf/TCO-$" block: fraction of srvr1.
PAPER_FIGURE2C_PERF_TCO: Dict[str, Dict[str, float]] = {
    "websearch": {"srvr2": 1.20, "desk": 1.13, "mobl": 1.24, "emb1": 1.67, "emb2": 0.97},
    "webmail": {"srvr2": 0.86, "desk": 0.59, "mobl": 0.62, "emb1": 0.80, "emb2": 0.46},
    "ytube": {"srvr2": 1.71, "desk": 2.91, "mobl": 3.51, "emb1": 6.00, "emb2": 2.15},
    "mapred-wc": {"srvr2": 1.64, "desk": 2.46, "mobl": 2.68, "emb1": 3.59, "emb2": 1.06},
    "mapred-wr": {"srvr2": 1.28, "desk": 2.21, "mobl": 2.00, "emb1": 3.34, "emb2": 1.47},
    "HMean": {"srvr2": 1.26, "desk": 1.32, "mobl": 1.40, "emb1": 1.92, "emb2": 0.95},
}

#: Figure 4(b): slowdown fractions, 25% local memory, random replacement,
#: PCIe x4 (4 us/page).
PAPER_FIGURE4B_PCIE: Dict[str, float] = {
    "websearch": 0.047,
    "webmail": 0.001,
    "ytube": 0.014,
    "mapred-wc": 0.002,
    "mapred-wr": 0.007,
}

#: Figure 4(b): the critical-block-first column.
PAPER_FIGURE4B_CBF: Dict[str, float] = {
    "websearch": 0.012,
    "webmail": 0.001,
    "ytube": 0.004,
    "mapred-wc": 0.002,
    "mapred-wr": 0.002,
}

#: Figure 4(c): provisioning efficiencies (fractions of baseline).
PAPER_FIGURE4C: Dict[str, Dict[str, float]] = {
    "static": {"perf_per_inf": 1.02, "perf_per_watt": 1.16, "perf_per_tco": 1.08},
    "dynamic": {"perf_per_inf": 1.06, "perf_per_watt": 1.16, "perf_per_tco": 1.11},
}

#: Table 3(b): disk-configuration efficiencies (fractions of baseline).
PAPER_TABLE3B: Dict[str, Dict[str, float]] = {
    "remote-laptop": {
        "perf_per_inf": 0.93, "perf_per_watt": 1.00, "perf_per_tco": 0.96,
    },
    "remote-laptop+flash": {
        "perf_per_inf": 0.99, "perf_per_watt": 1.09, "perf_per_tco": 1.04,
    },
    "remote-laptop2+flash": {
        "perf_per_inf": 1.10, "perf_per_watt": 1.09, "perf_per_tco": 1.10,
    },
}

#: Figure 5 Perf/TCO-$ (chart readings; HMean values from the text).
PAPER_FIGURE5_TCO: Dict[str, Dict[str, float]] = {
    "websearch": {"N1": 1.10, "N2": 1.67},
    "webmail": {"N1": 0.60, "N2": 0.80},
    "ytube": {"N1": 3.50, "N2": 6.00},
    "mapred-wc": {"N1": 2.90, "N2": 4.00},
    "mapred-wr": {"N1": 2.30, "N2": 3.50},
    "HMean": {"N1": 1.50, "N2": 2.00},
}
