"""Paper-vs-measured comparison and reporting.

Compares any regenerated ``{row: {col: value}}`` matrix against the
paper's reference data and renders the per-cell delta tables used in
EXPERIMENTS.md and the validation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class CellDelta:
    """One compared cell."""

    row: str
    column: str
    paper: float
    measured: float

    @property
    def absolute_delta(self) -> float:
        return self.measured - self.paper

    @property
    def relative_delta(self) -> float:
        """Relative error; infinite if the paper value is zero."""
        if self.paper == 0:
            return float("inf") if self.measured else 0.0
        return self.measured / self.paper - 1.0

    def within(self, absolute: float) -> bool:
        return abs(self.absolute_delta) <= absolute


def compare_matrix(
    paper: Mapping[str, Mapping[str, float]],
    measured: Mapping[str, Mapping[str, float]],
) -> List[CellDelta]:
    """Pair up every cell present in both matrices."""
    deltas: List[CellDelta] = []
    for row, columns in paper.items():
        measured_row = measured.get(row)
        if measured_row is None:
            continue
        for column, value in columns.items():
            if column in measured_row:
                deltas.append(
                    CellDelta(
                        row=row,
                        column=column,
                        paper=value,
                        measured=measured_row[column],
                    )
                )
    return deltas


def render_comparison(
    deltas: List[CellDelta], percent: bool = True, band: float = 0.16
) -> str:
    """Plain-text per-cell report with an in/out-of-band flag."""
    def fmt(v: float) -> str:
        return f"{v * 100:.0f}%" if percent else f"{v:.3f}"

    rows = [
        (
            f"{d.row}/{d.column}",
            fmt(d.paper),
            fmt(d.measured),
            f"{d.absolute_delta * 100:+.0f}pp" if percent else f"{d.absolute_delta:+.3f}",
            "ok" if d.within(band) else "DEVIATES",
        )
        for d in deltas
    ]
    summary_line = summarize(deltas, band)
    table = format_table(["Cell", "Paper", "Measured", "Delta", "Band"], rows)
    return f"{table}\n\n{summary_line}"


def summarize(deltas: List[CellDelta], band: float = 0.16) -> str:
    """One-line reproduction-quality summary."""
    if not deltas:
        return "no overlapping cells to compare"
    inside = sum(1 for d in deltas if d.within(band))
    mean_abs = sum(abs(d.absolute_delta) for d in deltas) / len(deltas)
    return (
        f"{inside}/{len(deltas)} cells within +/-{band * 100:.0f}pp of the "
        f"paper; mean absolute delta {mean_abs * 100:.1f}pp"
    )
