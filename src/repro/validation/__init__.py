"""Paper reference data and reproduction-quality reports.

- :mod:`~repro.validation.reference` -- every number the paper publishes
  in its evaluation (Figures 1-5, Tables 1-3), as structured data.
- :mod:`~repro.validation.compare` -- compares regenerated results
  against the reference and renders per-cell delta reports (the data
  behind EXPERIMENTS.md).
"""

from repro.validation.reference import (
    PAPER_FIGURE1,
    PAPER_FIGURE2C_PERF,
    PAPER_FIGURE2C_PERF_INF,
    PAPER_FIGURE2C_PERF_TCO,
    PAPER_FIGURE2C_PERF_W,
    PAPER_FIGURE4B_PCIE,
    PAPER_FIGURE4C,
    PAPER_FIGURE5_TCO,
    PAPER_TABLE2,
    PAPER_TABLE3B,
)
from repro.validation.compare import CellDelta, compare_matrix, render_comparison

__all__ = [
    "PAPER_FIGURE1",
    "PAPER_FIGURE2C_PERF",
    "PAPER_FIGURE2C_PERF_INF",
    "PAPER_FIGURE2C_PERF_TCO",
    "PAPER_FIGURE2C_PERF_W",
    "PAPER_FIGURE4B_PCIE",
    "PAPER_FIGURE4C",
    "PAPER_FIGURE5_TCO",
    "PAPER_TABLE2",
    "PAPER_TABLE3B",
    "CellDelta",
    "compare_matrix",
    "render_comparison",
]
