"""Lower a :class:`Scenario` onto the DES/cohort/sharded engines.

``compile_scenario`` expands the declarative spec into a flat list of
picklable :class:`RunPlan` records -- one per (tier x overlay x rack x
traffic segment) -- resolving every name (platform/design, benchmark,
fault profile, disk configuration) and every derived quantity (analytic
capacity, open-loop arrival rates, the ``queue_cap="auto"`` sizing) at
compile time.  Execution fans the plans across worker processes with
:func:`repro.perf.parallel.pmap`; results are merged in plan order, so
a ``--jobs 4`` run is bit-identical to a serial one.

Engine selection (fastest eligible first):

- ``balancer_scope: "enclosure"`` tiers run the **sharded** engine --
  an explicit choice, never an automatic one, because per-cell
  balancing is semantically its own (modular-DC) system;
- cluster-scoped tiers request the **cohort** engine (vectorized,
  bitwise stream-identical to scalar); the balancer itself falls back
  to **scalar** when the configuration is ineligible and records why
  (``fallback_reason``), which every run record surfaces.

The kwargs handed to :class:`ClusterSimulator` mirror the hand-wired
experiment modules exactly -- that is what makes scenario-compiled
EXT-8/EXT-10/EXT-11 runs digest-identical to the originals (asserted
in ``tests/scenario/test_digest_equality.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache, partial
from typing import Dict, List, Optional, Tuple

from repro.cluster.capacity import (
    open_loop_rate_rps,
    per_server_capacity_rps,
    surge_queue_cap,
)
from repro.cluster.diurnal import DiurnalLoadModel
from repro.scenario import registry
from repro.scenario.dag import make_dag_workload
from repro.scenario.spec import (
    ClosedLoopSpec,
    OverlaySpec,
    Scenario,
    TierSpec,
    WorkloadSpec,
)

#: Simulated hours of a compiled diurnal day.
DAY_HOURS = 24

#: Quick-mode window scaling (CI smoke; structure is preserved -- a
#: diurnal day still has 24 segments, only each segment is shorter).
QUICK_TIME_SCALE = 0.25
QUICK_DIURNAL_SCALE = 0.2
QUICK_MIN_MEASURE_MS = 400.0
QUICK_MIN_WARMUP_MS = 200.0
QUICK_MIN_REQUESTS = 200


@dataclass(frozen=True)
class ArrivalPlan:
    """Resolved open-loop program for one run (absolute rates)."""

    base_rate_rps: float
    surge_multiplier: float = 1.0
    surge_start_ms: float = 0.0
    surge_end_ms: float = 0.0
    warmup_ms: float = 2000.0
    measure_ms: float = 20_000.0


@dataclass(frozen=True)
class RunPlan:
    """One fully-resolved engine run (picklable for ``pmap``)."""

    run_id: str
    tier: TierSpec
    workload: WorkloadSpec
    overlay: OverlaySpec
    seed: int
    engine: str  # requested: "cohort" | "scalar" | "sharded"
    rack: int = 0
    segment: Optional[str] = None
    region_blend: Optional[str] = None
    closed: Optional[ClosedLoopSpec] = None
    arrival: Optional[ArrivalPlan] = None
    #: Analytic per-server capacity (0.0 for closed-loop plans).
    capacity_rps_per_server: float = 0.0
    #: Resolved overload queue bound (None = policy default/unbounded).
    queue_cap: Optional[int] = None


@dataclass
class RunRecord:
    """One executed run: engine outcome, headline metrics, digest."""

    run_id: str
    tier: str
    overlay: str
    rack: int
    segment: Optional[str]
    engine_used: str
    fallback_reason: Optional[str]
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    per_server_rps: float
    p99_ms: float
    qos_violation_rate: float
    digest: str
    result: object = field(repr=False, default=None)
    tracer: object = field(repr=False, default=None)
    metrics: object = field(repr=False, default=None)


@dataclass
class ScenarioResult:
    """Ordered run records plus the modeled-scale accounting."""

    scenario_name: str
    runs: List[RunRecord]
    scale: Dict[str, float]

    def digest(self) -> str:
        """SHA-256 over the ordered per-run stream digests."""
        hasher = hashlib.sha256()
        for record in self.runs:
            hasher.update(f"{record.run_id}={record.digest}\n".encode())
        return hasher.hexdigest()

    def engines(self) -> Dict[str, Tuple[str, Optional[str]]]:
        return {
            record.run_id: (record.engine_used, record.fallback_reason)
            for record in self.runs
        }

    def render(self) -> str:
        from repro.experiments.reporting import format_table

        rows = []
        for r in self.runs:
            reason = f" ({r.fallback_reason})" if r.fallback_reason else ""
            rows.append((
                r.run_id,
                f"{r.engine_used}{reason}",
                f"{r.offered_rps:.0f}",
                f"{r.throughput_rps:.0f}",
                f"{r.goodput_rps:.0f}",
                f"{r.p99_ms:.0f} ms",
            ))
        lines = [
            f"scenario: {self.scenario_name}",
            "",
            format_table(
                ["run", "engine", "offered r/s", "tput r/s",
                 "goodput r/s", "p99"],
                rows,
            ),
        ]
        if self.scale:
            lines.append("")
            lines.append("modeled scale:")
            for key, value in self.scale.items():
                if isinstance(value, float):
                    lines.append(f"  {key}: {value:,.0f}")
                else:
                    lines.append(f"  {key}: {value}")
        lines.append("")
        lines.append(f"digest: {self.digest()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _cached_benchmark_workload(name: str):
    from repro.workloads.suite import make_workload

    return make_workload(name)


@lru_cache(maxsize=None)
def _cached_dag_workload(dag):
    return make_dag_workload(dag)


@lru_cache(maxsize=None)
def _cached_remote_memory(benchmark, local_fraction, trace_length):
    from repro.memsim.remote_memory import make_remote_memory_model

    return make_remote_memory_model(
        benchmark, local_fraction=local_fraction, trace_length=trace_length)


def _build_workload(spec: WorkloadSpec):
    """The spec's workload, built once per process.

    Workloads and remote-memory models are stateless across runs (the
    hand-wired experiments share one instance across their healthy and
    faulted runs), so the compiler memoizes construction -- sampler and
    trace tables are expensive next to a short run -- keyed on the
    frozen spec.
    """
    if spec.benchmark is not None:
        return _cached_benchmark_workload(spec.benchmark)
    assert spec.dag is not None
    return _cached_dag_workload(spec.dag)


def _workload_factory(spec: WorkloadSpec):
    """Zero-arg picklable factory (the sharded engine's contract)."""
    if spec.benchmark is not None:
        from repro.workloads.suite import make_workload

        return partial(make_workload, spec.benchmark)
    return partial(make_dag_workload, spec.dag)


def _tier_platform(tier: TierSpec):
    if tier.design is not None:
        return registry.design(tier.design).platform
    from repro.platforms.catalog import platform

    return platform(tier.platform)


def _tier_models(tier: TierSpec, spec: WorkloadSpec):
    """(remote_memory_model, disk_model_factory, capacity_disk_model)."""
    remote = None
    factory = None
    disk_model = None
    if tier.remote_memory is not None:
        remote = _cached_remote_memory(
            spec.benchmark,
            tier.remote_memory.local_fraction,
            tier.remote_memory.trace_length,
        )
    if tier.flash is not None:
        from repro.flashcache.analysis import disk_configuration

        config = disk_configuration(tier.flash.configuration)
        benchmark = spec.benchmark
        factory = lambda: config.make_disk_model(benchmark)  # noqa: E731
        disk_model = config.make_disk_model(benchmark)
    return remote, factory, disk_model


def tier_capacity_rps(tier: TierSpec, workload_spec: WorkloadSpec) -> float:
    """Analytic per-server capacity of a tier (the sizing the open-loop
    ``utilization`` and ``queue_cap="auto"`` rules are derived from)."""
    workload = _build_workload(workload_spec)
    platform = _tier_platform(tier)
    remote, _, disk_model = _tier_models(tier, workload_spec)
    return per_server_capacity_rps(
        platform, workload,
        remote_memory=remote, disk_model=disk_model, servers=tier.servers,
    )


def _diurnal_rates(open_loop, peak_rate: float) -> List[float]:
    """Per-hour cluster rates: weight-blended, time-zone-shifted copies
    of the (peak-normalized) diurnal curve times the peak rate."""
    diurnal = open_loop.diurnal
    model = DiurnalLoadModel(
        peak_to_trough=diurnal.peak_to_trough,
        peak_hour=diurnal.peak_hour,
        weekend_factor=diurnal.weekend_factor,
    )
    regions = open_loop.regions
    rates = []
    for hour in range(DAY_HOURS):
        midpoint = hour + 0.5
        if regions:
            total_weight = sum(region.weight for region in regions)
            load = sum(
                (region.weight / total_weight)
                * model.load_at((midpoint - region.peak_hour_offset) % 24.0)
                for region in regions
            )
        else:
            load = model.load_at(midpoint)
        rates.append(peak_rate * load * diurnal.weekend_factor)
    return rates


def _segments(
    scenario: Scenario, tier: TierSpec, quick: bool
) -> List[Tuple[Optional[str], Optional[ClosedLoopSpec],
                Optional[ArrivalPlan], float]]:
    """Expand the traffic program into (label, closed, arrival,
    capacity) segments for one tier."""
    traffic = scenario.traffic
    if traffic.closed_loop is not None:
        closed = traffic.closed_loop
        if quick:
            closed = ClosedLoopSpec(
                warmup_requests=max(
                    QUICK_MIN_REQUESTS // 4,
                    int(closed.warmup_requests * QUICK_TIME_SCALE)),
                measure_requests=max(
                    QUICK_MIN_REQUESTS,
                    int(closed.measure_requests * QUICK_TIME_SCALE)),
            )
        return [(None, closed, None, 0.0)]

    open_loop = traffic.open_loop
    capacity = tier_capacity_rps(tier, scenario.workload)
    if open_loop.base_rate_rps is not None:
        peak_rate = open_loop.base_rate_rps
    else:
        peak_rate = open_loop_rate_rps(
            open_loop.utilization, capacity, tier.servers)

    if open_loop.diurnal is None:
        warmup_ms = open_loop.warmup_ms
        measure_ms = open_loop.measure_ms
        surge = open_loop.surge
        multiplier, start_ms, end_ms = 1.0, 0.0, 0.0
        if surge is not None:
            multiplier = surge.multiplier
            start_ms = surge.start_ms
            end_ms = surge.end_ms
        if quick:
            warmup_ms = max(QUICK_MIN_WARMUP_MS, warmup_ms * QUICK_TIME_SCALE)
            measure_ms = max(
                QUICK_MIN_MEASURE_MS, measure_ms * QUICK_TIME_SCALE)
            start_ms *= QUICK_TIME_SCALE
            end_ms *= QUICK_TIME_SCALE
        plan = ArrivalPlan(
            base_rate_rps=peak_rate,
            surge_multiplier=multiplier,
            surge_start_ms=start_ms,
            surge_end_ms=end_ms,
            warmup_ms=warmup_ms,
            measure_ms=measure_ms,
        )
        return [(None, None, plan, capacity)]

    diurnal = open_loop.diurnal
    sim_ms = diurnal.sim_ms_per_hour
    warmup_ms = open_loop.warmup_ms
    if quick:
        sim_ms = max(QUICK_MIN_MEASURE_MS, sim_ms * QUICK_DIURNAL_SCALE)
        warmup_ms = max(QUICK_MIN_WARMUP_MS, warmup_ms * QUICK_TIME_SCALE)
    segments = []
    for hour, rate in enumerate(_diurnal_rates(open_loop, peak_rate)):
        multiplier, start_ms, end_ms = 1.0, 0.0, 0.0
        if diurnal.flash_crowd_hour == hour:
            multiplier = diurnal.flash_crowd_multiplier
            start_ms = warmup_ms + 0.25 * sim_ms
            end_ms = warmup_ms + 0.75 * sim_ms
        segments.append((
            f"h{hour:02d}",
            None,
            ArrivalPlan(
                base_rate_rps=rate,
                surge_multiplier=multiplier,
                surge_start_ms=start_ms,
                surge_end_ms=end_ms,
                warmup_ms=warmup_ms,
                measure_ms=sim_ms,
            ),
            capacity,
        ))
    return segments


def _resolve_queue_cap(
    overlay: OverlaySpec, capacity: float
) -> Optional[int]:
    overload = overlay.overload
    if overload is None or not overload.protected:
        return None
    if overload.queue_cap == "auto":
        timeout_ms = (overlay.retry.timeout_ms
                      if overlay.retry is not None else 1000.0)
        return surge_queue_cap(capacity, timeout_ms)
    return overload.queue_cap


def compile_scenario(scenario: Scenario, quick: bool = False):
    """Validate and lower a scenario; returns a :class:`CompiledScenario`."""
    scenario.check()
    plans: List[RunPlan] = []
    multi_rack = scenario.topology.racks > 1
    for tier in scenario.topology.tiers:
        if tier.balancer_scope == "enclosure":
            requested = "sharded"
        elif scenario.engine in ("auto", "cohort"):
            requested = "cohort"
        else:
            requested = "scalar"
        segments = _segments(scenario, tier, quick)
        multi_segment = len(segments) > 1
        for overlay in scenario.overlays:
            for rack in range(scenario.topology.racks):
                for index, (label, closed, arrival, capacity) in enumerate(
                        segments):
                    parts = [tier.name, overlay.name]
                    if multi_rack:
                        parts.append(f"rack{rack:02d}")
                    if label is not None:
                        parts.append(label)
                    if multi_rack or multi_segment:
                        from repro.perf.sharded import derive_seed

                        seed = derive_seed(scenario.seed, rack, index)
                    else:
                        seed = scenario.seed
                    plans.append(RunPlan(
                        run_id="/".join(parts),
                        tier=tier,
                        workload=scenario.workload,
                        overlay=overlay,
                        seed=seed,
                        engine=requested,
                        rack=rack,
                        segment=label,
                        closed=closed,
                        arrival=arrival,
                        capacity_rps_per_server=capacity,
                        queue_cap=_resolve_queue_cap(overlay, capacity),
                    ))
    return CompiledScenario(scenario=scenario, plans=plans, quick=quick)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _build_cluster_simulator(plan: RunPlan):
    """Construct the (monolithic) ClusterSimulator for one plan.

    The kwargs mirror the hand-wired experiment modules: optional
    pieces are only passed when the overlay declares them, so a
    scenario-compiled run constructs a bit-identical simulator.
    """
    from repro.cluster.balancer import ClusterSimulator, RetryPolicy
    from repro.cluster.overload import OverloadPolicy, SurgeSchedule

    tier = plan.tier
    workload = _build_workload(plan.workload)
    platform = _tier_platform(tier)
    remote, factory, _ = _tier_models(tier, plan.workload)
    kwargs = dict(
        platform=platform,
        workload=workload,
        servers=tier.servers,
        clients_per_server=tier.clients_per_server,
        seed=plan.seed,
        disk_model_factory=factory,
        remote_memory=remote,
        engine="cohort" if plan.engine == "cohort" else "scalar",
    )
    if tier.dispatch is not None:
        kwargs["dispatch"] = registry.DISPATCH[tier.dispatch]
    if plan.closed is not None:
        kwargs.update(
            warmup_requests=plan.closed.warmup_requests,
            measure_requests=plan.closed.measure_requests,
        )
    else:
        arrival = plan.arrival
        kwargs.update(
            arrivals=SurgeSchedule(
                base_rate_rps=arrival.base_rate_rps,
                surge_multiplier=arrival.surge_multiplier,
                surge_start_ms=arrival.surge_start_ms,
                surge_end_ms=arrival.surge_end_ms,
            ),
            warmup_ms=arrival.warmup_ms,
            measure_ms=arrival.measure_ms,
        )
    overlay = plan.overlay
    if overlay.retry is not None:
        retry = overlay.retry
        kwargs["retry"] = RetryPolicy(
            timeout_ms=retry.timeout_ms,
            max_retries=retry.max_retries,
            backoff_base_ms=retry.backoff_base_ms,
            backoff_factor=retry.backoff_factor,
            hedge_after_ms=retry.hedge_after_ms,
            jitter=retry.jitter,
        )
    if overlay.faults is not None:
        kwargs.update(
            faults=registry.fault_profile(overlay.faults.profile),
            fault_seed=overlay.faults.fault_seed,
            enclosure_size=tier.enclosure_size or tier.servers,
        )
    if overlay.overload is not None:
        if not overlay.overload.protected:
            kwargs["overload"] = OverloadPolicy.unprotected()
        else:
            kwargs["overload"] = OverloadPolicy(queue_cap=plan.queue_cap)
    if overlay.failslow is not None:
        from repro.faults.failslow import (
            DetectionPolicy,
            FailSlowPlan,
            SlowResource,
        )

        failslow = overlay.failslow
        kwargs["failslow"] = FailSlowPlan.single_slow_node(
            server=failslow.server,
            factor=failslow.factor,
            resource=SlowResource(failslow.resource),
            at_ms=failslow.at_ms,
        )
        if failslow.detection:
            kwargs["failslow_detection"] = DetectionPolicy()
    if overlay.redundancy is not None:
        from repro.faults.recovery import RedundancyConfig
        from repro.memsim.redundancy import RedundancyPolicy

        redundancy = overlay.redundancy
        if redundancy.mode == "replica":
            policy = RedundancyPolicy.replicated(copies=redundancy.copies)
        elif redundancy.mode == "parity":
            policy = RedundancyPolicy.parity(
                data_shards=redundancy.data_shards)
        else:
            policy = None
        kwargs["redundancy"] = RedundancyConfig(
            policy=policy,
            blades=redundancy.blades,
            pages_per_server=redundancy.pages_per_server,
        )
    tracer = None
    metrics = None
    if overlay.tracing is not None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import Tracer

        tracer = Tracer(
            sample_rate=overlay.tracing.sample_rate,
            seed=overlay.tracing.trace_seed,
        )
        metrics = MetricsRegistry()
        kwargs.update(tracer=tracer, metrics=metrics)
    return ClusterSimulator(**kwargs), tracer, metrics


def _build_sharded_simulator(plan: RunPlan):
    from repro.cluster.overload import OverloadPolicy, SurgeSchedule
    from repro.cluster.balancer import RetryPolicy
    from repro.perf.sharded import ShardedClusterSimulator

    tier = plan.tier
    overlay = plan.overlay
    kwargs = dict(
        cells=tier.cells,
        enclosure_size=tier.enclosure_size,
        seed=plan.seed,
    )
    if tier.dispatch is not None:
        kwargs["dispatch"] = registry.DISPATCH[tier.dispatch]
    if plan.closed is not None:
        kwargs.update(
            warmup_requests=plan.closed.warmup_requests,
            measure_requests=plan.closed.measure_requests,
        )
    else:
        arrival = plan.arrival
        kwargs.update(
            arrivals=SurgeSchedule(
                base_rate_rps=arrival.base_rate_rps,
                surge_multiplier=arrival.surge_multiplier,
                surge_start_ms=arrival.surge_start_ms,
                surge_end_ms=arrival.surge_end_ms,
            ),
            warmup_ms=arrival.warmup_ms,
            measure_ms=arrival.measure_ms,
        )
    if overlay.retry is not None:
        retry = overlay.retry
        kwargs["retry"] = RetryPolicy(
            timeout_ms=retry.timeout_ms,
            max_retries=retry.max_retries,
            backoff_base_ms=retry.backoff_base_ms,
            backoff_factor=retry.backoff_factor,
            hedge_after_ms=retry.hedge_after_ms,
            jitter=retry.jitter,
        )
    if overlay.overload is not None:
        if not overlay.overload.protected:
            kwargs["overload"] = OverloadPolicy.unprotected()
        else:
            kwargs["overload"] = OverloadPolicy(queue_cap=plan.queue_cap)
    if overlay.failslow is not None:
        from repro.faults.failslow import (
            DetectionPolicy,
            FailSlowPlan,
            SlowResource,
        )

        failslow = overlay.failslow
        kwargs["failslow"] = FailSlowPlan.single_slow_node(
            server=failslow.server,
            factor=failslow.factor,
            resource=SlowResource(failslow.resource),
            at_ms=failslow.at_ms,
        )
        if failslow.detection:
            kwargs["failslow_detection"] = DetectionPolicy()
    return ShardedClusterSimulator(
        _tier_platform(tier),
        _workload_factory(plan.workload),
        tier.servers,
        tier.clients_per_server,
        **kwargs,
    )


def probe_engine(plan: RunPlan) -> Tuple[str, Optional[str]]:
    """Which engine a plan would run on, without running it."""
    if plan.engine == "sharded":
        return "sharded", None
    if plan.engine == "scalar":
        return "scalar", None
    from repro.perf.cluster_kernels import cohort_supported

    sim, _, _ = _build_cluster_simulator(plan)
    ok, reason = cohort_supported(sim)
    if ok:
        return "cohort", None
    return "scalar", reason


def _execute_run(plan: RunPlan) -> RunRecord:
    """Run one plan (module-level so ``pmap`` can pickle it)."""
    if plan.engine == "sharded":
        sim = _build_sharded_simulator(plan)
        result = sim.run(shards=1)
        return RunRecord(
            run_id=plan.run_id,
            tier=plan.tier.name,
            overlay=plan.overlay.name,
            rack=plan.rack,
            segment=plan.segment,
            engine_used="sharded",
            fallback_reason=None,
            offered_rps=result.offered_rps,
            throughput_rps=result.throughput_rps,
            goodput_rps=result.goodput_rps,
            per_server_rps=result.throughput_rps / result.servers,
            p99_ms=result.p99_ms,
            qos_violation_rate=0.0,
            digest=result.digest(),
            result=result,
        )
    sim, tracer, metrics = _build_cluster_simulator(plan)
    result = sim.run()
    return RunRecord(
        run_id=plan.run_id,
        tier=plan.tier.name,
        overlay=plan.overlay.name,
        rack=plan.rack,
        segment=plan.segment,
        engine_used=sim.engine_used,
        fallback_reason=sim.fallback_reason,
        offered_rps=result.offered_rps,
        throughput_rps=result.throughput_rps,
        goodput_rps=result.goodput_rps,
        per_server_rps=result.per_server_rps,
        p99_ms=result.p99_ms,
        qos_violation_rate=result.qos_violation_rate,
        digest=result.stream_digest(),
        result=result,
        tracer=tracer,
        metrics=metrics,
    )


@dataclass
class CompiledScenario:
    """A validated scenario lowered to an ordered list of run plans."""

    scenario: Scenario
    plans: List[RunPlan]
    quick: bool = False

    def describe(self) -> str:
        """Human-readable plan: engines, rates, windows, modeled scale."""
        from repro.experiments.reporting import format_table

        rows = []
        for plan in self.plans:
            engine, reason = probe_engine(plan)
            if plan.closed is not None:
                traffic = (f"closed {plan.closed.warmup_requests}"
                           f"+{plan.closed.measure_requests} req")
            else:
                arrival = plan.arrival
                traffic = f"open {arrival.base_rate_rps:.0f} r/s"
                if arrival.surge_multiplier > 1.0:
                    traffic += f" x{arrival.surge_multiplier:g} surge"
            rows.append((
                plan.run_id,
                engine + (f" ({reason})" if reason else ""),
                traffic,
                f"{plan.capacity_rps_per_server:.0f}",
                str(plan.seed),
            ))
        lines = [
            f"scenario: {self.scenario.name}",
            f"runs: {len(self.plans)}",
            "",
            format_table(
                ["run", "engine", "traffic", "cap r/s/srv", "seed"], rows),
        ]
        scale = self.scale()
        if scale:
            lines.append("")
            lines.append("modeled scale:")
            for key, value in scale.items():
                if isinstance(value, float):
                    lines.append(f"  {key}: {value:,.0f}")
                else:
                    lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def scale(self) -> Dict[str, float]:
        """Modeled (uncompressed) scale the compiled runs stand for.

        Each diurnal segment represents one real hour; the simulated
        window compresses it.  Rates are real, so requests/day and the
        user population are reported at modeled scale.
        """
        open_loop = self.scenario.traffic.open_loop
        if open_loop is None:
            return {}
        racks = self.scenario.topology.racks
        overlays = max(1, len(self.scenario.overlays))
        arrival_plans = [p for p in self.plans if p.arrival is not None]
        if not arrival_plans:
            return {}
        peak_rate = max(
            p.arrival.base_rate_rps * p.arrival.surge_multiplier
            for p in arrival_plans) * racks
        scale: Dict[str, float] = {
            "racks": float(racks),
            "servers_total": float(sum(
                t.servers for t in self.scenario.topology.tiers) * racks),
            "aggregate_peak_rps": peak_rate,
            "modeled_users": peak_rate / open_loop.user_request_rate_rps,
        }
        if open_loop.diurnal is not None:
            # One segment per (tier, overlay, rack, hour): each hour of
            # the modeled day contributes rate x 3600 s of requests.
            per_day = sum(
                p.arrival.base_rate_rps for p in arrival_plans) * 3600.0
            scale["modeled_requests_per_day"] = per_day / overlays
            scale["simulated_ms_per_hour"] = arrival_plans[0].arrival.measure_ms
        return scale

    def execute(self, jobs: int = 1) -> ScenarioResult:
        """Run every plan (optionally across worker processes) and merge
        the records in plan order (bit-identical for any ``jobs``)."""
        from repro.perf.parallel import pmap

        records = pmap(_execute_run, self.plans, jobs=jobs)
        return ScenarioResult(
            scenario_name=self.scenario.name,
            runs=records,
            scale=self.scale(),
        )


def run_scenario(
    scenario: Scenario, jobs: int = 1, quick: bool = False
) -> ScenarioResult:
    """Compile and execute in one call."""
    return compile_scenario(scenario, quick=quick).execute(jobs=jobs)


__all__ = [
    "ArrivalPlan",
    "RunPlan",
    "RunRecord",
    "ScenarioResult",
    "CompiledScenario",
    "compile_scenario",
    "run_scenario",
    "probe_engine",
    "tier_capacity_rps",
]
