"""``repro-scenario``: validate, describe, and run scenario specs.

Examples::

    repro-scenario validate examples/multirack_diurnal.yaml
    repro-scenario describe multirack-diurnal
    repro-scenario run multirack-diurnal --quick --jobs 4
    repro-scenario run examples/scenarios/ext8_availability.yaml \\
        --output out/ --expect-digest <sha256>

A scenario argument is either a library name (``repro-scenario list``)
or a path to a ``.yaml``/``.yml``/``.json`` spec.  ``run`` prints the
per-run table, the modeled-scale block, and the scenario digest
(order-independent of ``--jobs``); ``--output DIR`` additionally writes
``result.json``, and -- when any overlay enables tracing --
``spans.jsonl`` plus a Perfetto-loadable ``trace.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.scenario.errors import ScenarioValidationError
from repro.scenario.library import LIBRARY, library_scenario
from repro.scenario.loader import load_scenario
from repro.scenario.spec import Scenario


def _resolve(argument: str) -> Scenario:
    if argument in LIBRARY:
        return library_scenario(argument)
    path = Path(argument)
    if path.exists():
        return load_scenario(path)
    raise SystemExit(
        f"error: {argument!r} is neither a library scenario "
        f"({sorted(LIBRARY)}) nor an existing spec file"
    )


def _write_outputs(result, output_dir: Path) -> list:
    """Persist the result (and any trace artifacts); return the paths."""
    from repro.obs.export import write_chrome_trace, write_spans_jsonl

    output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    payload = {
        "scenario": result.scenario_name,
        "digest": result.digest(),
        "scale": result.scale,
        "runs": [
            {
                "run_id": r.run_id,
                "tier": r.tier,
                "overlay": r.overlay,
                "rack": r.rack,
                "segment": r.segment,
                "engine_used": r.engine_used,
                "fallback_reason": r.fallback_reason,
                "offered_rps": r.offered_rps,
                "throughput_rps": r.throughput_rps,
                "goodput_rps": r.goodput_rps,
                "per_server_rps": r.per_server_rps,
                "p99_ms": r.p99_ms,
                "qos_violation_rate": r.qos_violation_rate,
                "digest": r.digest,
            }
            for r in result.runs
        ],
    }
    result_path = output_dir / "result.json"
    result_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    written.append(result_path)
    groups = [
        (record.run_id, record.tracer.traces)
        for record in result.runs
        if record.tracer is not None and record.tracer.traces
    ]
    if groups:
        written.append(Path(write_spans_jsonl(
            groups, str(output_dir / "spans.jsonl"))))
        written.append(Path(write_chrome_trace(
            groups, str(output_dir / "trace.json"))))
    return written


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Declarative warehouse-scale scenario engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list library scenarios")

    validate = sub.add_parser(
        "validate", help="check specs; print every problem with its path")
    validate.add_argument("scenarios", nargs="+",
                          help="library names or spec files")

    describe = sub.add_parser(
        "describe",
        help="show the compiled plan: runs, engines, rates, modeled scale")
    describe.add_argument("scenario")
    describe.add_argument("--quick", action="store_true",
                          help="compile with shortened windows")

    run = sub.add_parser("run", help="compile and execute a scenario")
    run.add_argument("scenario")
    run.add_argument("--quick", action="store_true",
                     help="shorten every measurement window (CI smoke)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (results identical to --jobs 1)")
    run.add_argument("--output", metavar="DIR",
                     help="write result.json (and trace exports) to DIR")
    run.add_argument("--expect-digest", metavar="SHA256",
                     help="exit non-zero unless the scenario digest matches")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in LIBRARY:
            print(f"{name}: {library_scenario(name).description}")
        return 0

    if args.command == "validate":
        failed = 0
        for argument in args.scenarios:
            try:
                scenario = _resolve(argument)
                scenario.check()
            except ScenarioValidationError as exc:
                failed += 1
                print(f"{argument}: INVALID")
                print(str(exc))
            else:
                print(f"{argument}: ok ({scenario.name})")
        return 1 if failed else 0

    from repro.scenario.compiler import compile_scenario

    scenario = _resolve(args.scenario)
    try:
        compiled = compile_scenario(scenario, quick=args.quick)
    except ScenarioValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    if args.command == "describe":
        print(compiled.describe())
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    result = compiled.execute(jobs=args.jobs)
    print(result.render())
    if args.output:
        for path in _write_outputs(result, Path(args.output)):
            print(f"wrote {path}")
    if args.expect_digest:
        digest = result.digest()
        if digest != args.expect_digest:
            print(
                f"digest mismatch: expected {args.expect_digest}, "
                f"got {digest}",
                file=sys.stderr,
            )
            return 1
        print("digest matches")
    return 0


__all__ = ["main"]


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
