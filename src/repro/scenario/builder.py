"""Fluent builder for :class:`~repro.scenario.spec.Scenario`.

The builder is sugar over the frozen spec dataclasses (the AsyncFlow
builder/schema split): every call records declarative state, and
:meth:`ScenarioBuilder.build` assembles the immutable
:class:`Scenario` and (by default) runs the aggregated validation.
Nothing here talks to the simulator -- a built scenario is pure data,
round-trippable through YAML (:mod:`repro.scenario.loader`).

Example::

    scenario = (
        ScenarioBuilder("surge-demo")
        .seed(3)
        .tier("edge", design="N1", servers=4)
        .benchmark("websearch")
        .open_loop(utilization=0.6, warmup_ms=2000, measure_ms=22000)
        .surge(multiplier=5.0, start_ms=6000, end_ms=11000)
        .overlay("protected", retry=RetrySpec(jitter=True),
                 overload=OverloadSpec(queue_cap="auto"))
        .build()
    )
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.scenario.spec import (
    ClosedLoopSpec,
    DiurnalSpec,
    FailslowSpec,
    FaultsSpec,
    FlashSpec,
    OpenLoopSpec,
    OverlaySpec,
    OverloadSpec,
    RedundancySpec,
    RegionSpec,
    RemoteMemorySpec,
    RequestDagSpec,
    RetrySpec,
    Scenario,
    StepSpec,
    SurgeSpec,
    TierSpec,
    TopologySpec,
    TracingSpec,
    TrafficSpec,
    WorkloadSpec,
)


class ScenarioBuilder:
    """Accumulates scenario state; ``build()`` freezes and validates."""

    def __init__(self, name: str):
        self._name = name
        self._description = ""
        self._seed = 1
        self._engine = "auto"
        self._racks = 1
        self._tiers: List[TierSpec] = []
        self._benchmark: Optional[str] = None
        self._dag_name: Optional[str] = None
        self._dag_steps: List[StepSpec] = []
        self._dag_qos = (500.0, 0.95, 0.0)
        self._closed: Optional[ClosedLoopSpec] = None
        self._open_kwargs: Optional[dict] = None
        self._surge: Optional[SurgeSpec] = None
        self._diurnal: Optional[DiurnalSpec] = None
        self._regions: List[RegionSpec] = []
        self._overlays: List[OverlaySpec] = []

    # -- identity ----------------------------------------------------------

    def describe(self, description: str) -> "ScenarioBuilder":
        self._description = description
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        self._seed = seed
        return self

    def engine(self, engine: str) -> "ScenarioBuilder":
        """Request an engine: ``auto`` (default), ``cohort``, ``scalar``,
        or ``sharded``.  ``auto`` tries cohort and falls back to scalar
        with the reason surfaced; sharded is never auto-selected."""
        self._engine = engine
        return self

    # -- topology ----------------------------------------------------------

    def racks(self, racks: int) -> "ScenarioBuilder":
        self._racks = racks
        return self

    def tier(
        self,
        name: str,
        *,
        platform: Optional[str] = None,
        design: Optional[str] = None,
        servers: int = 4,
        clients_per_server: int = 1,
        enclosure_size: Optional[int] = None,
        dispatch: Optional[str] = None,
        balancer_scope: str = "cluster",
        cells: Optional[int] = None,
        remote_memory: Union[RemoteMemorySpec, bool, None] = None,
        flash: Union[FlashSpec, bool, None] = None,
    ) -> "ScenarioBuilder":
        """Add a serving tier.  ``remote_memory=True``/``flash=True``
        attach the default blade/flash specs."""
        if remote_memory is True:
            remote_memory = RemoteMemorySpec()
        elif remote_memory is False:
            remote_memory = None
        if flash is True:
            flash = FlashSpec()
        elif flash is False:
            flash = None
        self._tiers.append(TierSpec(
            name=name,
            platform=platform,
            design=design,
            servers=servers,
            clients_per_server=clients_per_server,
            enclosure_size=enclosure_size,
            dispatch=dispatch,
            balancer_scope=balancer_scope,
            cells=cells,
            remote_memory=remote_memory,
            flash=flash,
        ))
        return self

    # -- workload ----------------------------------------------------------

    def benchmark(self, name: str) -> "ScenarioBuilder":
        self._benchmark = name
        return self

    def request_dag(
        self,
        name: str,
        *,
        qos_limit_ms: float = 500.0,
        qos_percentile: float = 0.95,
        think_time_ms: float = 0.0,
    ) -> "ScenarioBuilder":
        """Start an inline request DAG; add steps with :meth:`step`."""
        self._dag_name = name
        self._dag_steps = []
        self._dag_qos = (qos_limit_ms, qos_percentile, think_time_ms)
        return self

    def step(self, name: str, **demands) -> "ScenarioBuilder":
        """Add a DAG step; keyword args are :class:`StepSpec` fields."""
        if self._dag_name is None:
            raise ValueError("call request_dag() before step()")
        after = demands.pop("after", ())
        self._dag_steps.append(
            StepSpec(name=name, after=tuple(after), **demands))
        return self

    # -- traffic -----------------------------------------------------------

    def closed_loop(
        self, warmup_requests: int = 500, measure_requests: int = 4000
    ) -> "ScenarioBuilder":
        self._closed = ClosedLoopSpec(
            warmup_requests=warmup_requests,
            measure_requests=measure_requests,
        )
        return self

    def open_loop(
        self,
        *,
        base_rate_rps: Optional[float] = None,
        utilization: Optional[float] = None,
        warmup_ms: float = 2000.0,
        measure_ms: float = 20_000.0,
        user_request_rate_rps: float = 0.002,
    ) -> "ScenarioBuilder":
        self._open_kwargs = dict(
            base_rate_rps=base_rate_rps,
            utilization=utilization,
            warmup_ms=warmup_ms,
            measure_ms=measure_ms,
            user_request_rate_rps=user_request_rate_rps,
        )
        return self

    def surge(
        self, multiplier: float = 5.0,
        start_ms: float = 0.0, end_ms: float = 0.0,
    ) -> "ScenarioBuilder":
        self._surge = SurgeSpec(
            multiplier=multiplier, start_ms=start_ms, end_ms=end_ms)
        return self

    def diurnal(
        self,
        *,
        peak_to_trough: float = 3.0,
        peak_hour: float = 20.0,
        weekend_factor: float = 1.0,
        sim_ms_per_hour: float = 4000.0,
        flash_crowd_hour: Optional[int] = None,
        flash_crowd_multiplier: float = 3.0,
    ) -> "ScenarioBuilder":
        self._diurnal = DiurnalSpec(
            peak_to_trough=peak_to_trough,
            peak_hour=peak_hour,
            weekend_factor=weekend_factor,
            sim_ms_per_hour=sim_ms_per_hour,
            flash_crowd_hour=flash_crowd_hour,
            flash_crowd_multiplier=flash_crowd_multiplier,
        )
        return self

    def region(
        self, name: str, weight: float = 1.0, peak_hour_offset: float = 0.0
    ) -> "ScenarioBuilder":
        self._regions.append(RegionSpec(
            name=name, weight=weight, peak_hour_offset=peak_hour_offset))
        return self

    # -- overlays ----------------------------------------------------------

    def overlay(
        self,
        name: str,
        *,
        retry: Optional[RetrySpec] = None,
        faults: Optional[FaultsSpec] = None,
        overload: Optional[OverloadSpec] = None,
        failslow: Optional[FailslowSpec] = None,
        redundancy: Optional[RedundancySpec] = None,
        tracing: Optional[TracingSpec] = None,
    ) -> "ScenarioBuilder":
        self._overlays.append(OverlaySpec(
            name=name, retry=retry, faults=faults, overload=overload,
            failslow=failslow, redundancy=redundancy, tracing=tracing))
        return self

    # -- assembly ----------------------------------------------------------

    def build(self, validate: bool = True) -> Scenario:
        """Freeze the scenario; with ``validate`` (default), raise one
        :class:`~repro.scenario.errors.ScenarioValidationError`
        aggregating every problem."""
        dag = None
        if self._dag_name is not None:
            limit, percentile, think = self._dag_qos
            dag = RequestDagSpec(
                name=self._dag_name,
                steps=tuple(self._dag_steps),
                qos_limit_ms=limit,
                qos_percentile=percentile,
                think_time_ms=think,
            )
        open_loop = None
        if self._open_kwargs is not None:
            open_loop = OpenLoopSpec(
                surge=self._surge,
                diurnal=self._diurnal,
                regions=tuple(self._regions),
                **self._open_kwargs,
            )
        scenario = Scenario(
            name=self._name,
            description=self._description,
            seed=self._seed,
            engine=self._engine,
            topology=TopologySpec(
                tiers=tuple(self._tiers), racks=self._racks),
            workload=WorkloadSpec(benchmark=self._benchmark, dag=dag),
            traffic=TrafficSpec(closed_loop=self._closed,
                                open_loop=open_loop),
            overlays=tuple(self._overlays) or (OverlaySpec(),),
        )
        if validate:
            scenario.check()
        return scenario
