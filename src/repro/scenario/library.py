"""Named scenarios shipped with the repository.

Three of these re-express hand-wired experiment modules as declarative
specs -- EXT-8 (availability under faults), EXT-10 (metastable
overload), EXT-11 (traced tail attribution) -- and are held
digest-identical to the originals by
``tests/scenario/test_digest_equality.py``: the compiler must lower
them onto bit-for-bit the same simulator configurations.  The fourth,
``multirack-diurnal``, is the flagship: a four-rack ensemble driven
through a full diurnal day (24 hourly segments, three regional
populations, an evening flash crowd) at a modeled population of
millions of users.

The YAML files under ``examples/scenarios/`` are the serialized forms
of these builders (round-trip asserted in the tests); edit either side
and the suite will point at the drift.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.scenario.builder import ScenarioBuilder
from repro.scenario.spec import (
    FaultsSpec,
    OverloadSpec,
    RetrySpec,
    Scenario,
    TracingSpec,
)

#: EXT-8/EXT-11's degradation stack: timeout at the websearch QoS bound,
#: three bounded retries with backoff, hedge at half the timeout.
_EXT8_RETRY = RetrySpec(
    timeout_ms=500.0, max_retries=3, backoff_base_ms=20.0,
    hedge_after_ms=250.0,
)


def _section36_tiers(builder: ScenarioBuilder, *, servers: int,
                     clients_per_server: int) -> ScenarioBuilder:
    """The section 3.6 design ladder: srvr1, N1, N2 (blade + flash)."""
    return (
        builder
        .tier("srvr1", design="srvr1", servers=servers,
              clients_per_server=clients_per_server, enclosure_size=1)
        .tier("N1", design="N1", servers=servers,
              clients_per_server=clients_per_server)
        .tier("N2", design="N2", servers=servers,
              clients_per_server=clients_per_server,
              remote_memory=True, flash=True)
    )


def ext8_availability() -> Scenario:
    """EXT-8 as a scenario: srvr1/N1/N2, healthy vs fault-injected."""
    builder = ScenarioBuilder("ext8-availability").describe(
        "Section 3.6 designs healthy and under accelerated fault "
        "injection with the full degradation stack (EXT-8)."
    )
    _section36_tiers(builder, servers=6, clients_per_server=6)
    return (
        builder
        .benchmark("websearch")
        .closed_loop(warmup_requests=200, measure_requests=1800)
        .seed(1)
        .overlay("healthy")
        .overlay("faulted",
                 faults=FaultsSpec(profile="stress", fault_seed=7),
                 retry=_EXT8_RETRY)
        .build()
    )


def ext10_overload() -> Scenario:
    """EXT-10 as a scenario: a 5x surge, naive vs protected stacks."""
    builder = ScenarioBuilder("ext10-overload").describe(
        "Metastable overload: each design offered 60% of analytic "
        "capacity with a 5x surge, naive retry stack vs the full "
        "overload-protection stack (EXT-10)."
    )
    _section36_tiers(builder, servers=4, clients_per_server=1)
    return (
        builder
        .benchmark("websearch")
        .open_loop(utilization=0.6, warmup_ms=2000.0, measure_ms=22_000.0)
        .surge(multiplier=5.0, start_ms=6000.0, end_ms=11_000.0)
        .seed(3)
        .overlay("naive",
                 retry=RetrySpec(),
                 overload=OverloadSpec(protected=False, queue_cap=None))
        .overlay("protected",
                 retry=RetrySpec(jitter=True),
                 overload=OverloadSpec(queue_cap="auto"))
        .build()
    )


def ext11_trace_attribution() -> Scenario:
    """EXT-11 as a scenario: the faulted ladder with tracing enabled."""
    builder = ScenarioBuilder("ext11-trace-attribution").describe(
        "Critical-path tail attribution: the EXT-8 faulted runs with "
        "deterministic per-request tracing (EXT-11)."
    )
    _section36_tiers(builder, servers=6, clients_per_server=6)
    return (
        builder
        .benchmark("websearch")
        .closed_loop(warmup_requests=200, measure_requests=1800)
        .seed(1)
        .overlay("traced-faulted",
                 faults=FaultsSpec(profile="stress", fault_seed=7),
                 retry=_EXT8_RETRY,
                 tracing=TracingSpec(sample_rate=1.0, trace_seed=17))
        .build()
    )


def multirack_diurnal() -> Scenario:
    """Flagship: four racks through a diurnal day at millions of users.

    Each rack serves a 16-server websearch tier provisioned at 65% of
    analytic capacity at the global peak; the offered load follows a
    3:1 diurnal curve blended from three regional populations (whose
    peaks are time-zone shifted) with a 3x flash crowd in the busiest
    evening hour, absorbed by the protected serving stack.
    """
    return (
        ScenarioBuilder("multirack-diurnal")
        .describe(
            "Four-rack websearch ensemble over a full diurnal day: "
            "three time-zone-shifted regions, an evening flash crowd, "
            "overload protection on -- the warehouse-scale serving "
            "pattern the paper's TCO math provisions for."
        )
        .racks(4)
        .tier("web", design="N1", servers=16, enclosure_size=8)
        .benchmark("websearch")
        .open_loop(utilization=0.65, warmup_ms=2000.0)
        .diurnal(peak_to_trough=3.0, peak_hour=20.0,
                 sim_ms_per_hour=4000.0,
                 flash_crowd_hour=21, flash_crowd_multiplier=3.0)
        .region("us-east", weight=0.5, peak_hour_offset=0.0)
        .region("eu-west", weight=0.3, peak_hour_offset=-5.0)
        .region("ap-south", weight=0.2, peak_hour_offset=9.5)
        .overlay("protected",
                 retry=RetrySpec(jitter=True),
                 overload=OverloadSpec(queue_cap="auto"))
        .seed(11)
        .build()
    )


#: name -> zero-arg scenario factory (the ``repro-scenario`` registry).
LIBRARY: Dict[str, Callable[[], Scenario]] = {
    "ext8-availability": ext8_availability,
    "ext10-overload": ext10_overload,
    "ext11-trace-attribution": ext11_trace_attribution,
    "multirack-diurnal": multirack_diurnal,
}


def library_scenario(name: str) -> Scenario:
    try:
        factory = LIBRARY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown library scenario {name!r}; known: {sorted(LIBRARY)}"
        ) from exc
    return factory()


__all__ = [
    "LIBRARY",
    "library_scenario",
    "ext8_availability",
    "ext10_overload",
    "ext11_trace_attribution",
    "multirack_diurnal",
]
