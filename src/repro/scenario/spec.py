"""Typed, validated scenario schemas (the declarative layer).

A :class:`Scenario` is pure data: a topology of server tiers with
platform/design references, a workload (a named benchmark or an inline
request DAG with per-step resource demands), a traffic program (closed
loop, or open loop with a flash-crowd surge or a diurnal day), and a
set of *overlays* -- named arms that layer faults, fail-slow drift,
redundancy, retry policy, overload protection, and tracing on top of
the same topology.  The compiler (:mod:`repro.scenario.compiler`)
lowers a scenario onto the DES/cohort/sharded engines.

Validation never stops at the first problem: every spec type appends
:class:`~repro.scenario.errors.ValidationIssue` records with precise
paths (``topology.tiers[2].platform: unknown 'n3'``) and
:meth:`Scenario.validate` returns them all; :meth:`Scenario.check`
raises a single :class:`~repro.scenario.errors.ScenarioValidationError`
aggregating the lot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.scenario import registry
from repro.scenario.errors import (
    ScenarioValidationError,
    ValidationIssue,
    join_path,
)

Issues = List[ValidationIssue]


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _require(
    issues: Issues, path: str, ok: bool, message: str
) -> bool:
    if not ok:
        issues.append(ValidationIssue(path, message))
    return ok


# ---------------------------------------------------------------------------
# Workload: named benchmark or inline request DAG
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepSpec:
    """One step of a request DAG with its resource demands.

    Demands use the repo's reference units (see
    :class:`repro.workloads.base.ResourceDemand`).  ``after`` lists the
    names of steps that must complete first; the DAG is validated for
    unknown references and cycles.
    """

    name: str
    cpu_ms_ref: float = 0.0
    mem_ms_ref: float = 0.0
    disk_ios: float = 0.0
    disk_bytes: float = 0.0
    net_bytes: float = 0.0
    disk_write: bool = False
    cpu_parallelism: int = 1
    after: Tuple[str, ...] = ()

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "name"),
                 isinstance(self.name, str) and bool(self.name),
                 "step name must be a non-empty string")
        for attr in ("cpu_ms_ref", "mem_ms_ref", "disk_ios", "disk_bytes",
                     "net_bytes"):
            value = getattr(self, attr)
            _require(issues, join_path(path, attr),
                     _is_num(value) and value >= 0,
                     f"must be a number >= 0, got {value!r}")
        _require(issues, join_path(path, "cpu_parallelism"),
                 _is_int(self.cpu_parallelism) and self.cpu_parallelism >= 1,
                 f"must be an integer >= 1, got {self.cpu_parallelism!r}")


@dataclass(frozen=True)
class RequestDagSpec:
    """An inline workload: a DAG of steps whose demands sum per request."""

    name: str
    steps: Tuple[StepSpec, ...] = ()
    qos_limit_ms: float = 500.0
    qos_percentile: float = 0.95
    think_time_ms: float = 0.0

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "name"),
                 isinstance(self.name, str) and bool(self.name),
                 "DAG name must be a non-empty string")
        _require(issues, join_path(path, "steps"),
                 len(self.steps) > 0, "a request DAG needs at least one step")
        _require(issues, join_path(path, "qos_limit_ms"),
                 _is_num(self.qos_limit_ms) and self.qos_limit_ms > 0,
                 f"must be a number > 0, got {self.qos_limit_ms!r}")
        _require(issues, join_path(path, "qos_percentile"),
                 _is_num(self.qos_percentile)
                 and 0.0 < self.qos_percentile < 1.0,
                 f"must be in (0, 1), got {self.qos_percentile!r}")
        _require(issues, join_path(path, "think_time_ms"),
                 _is_num(self.think_time_ms) and self.think_time_ms >= 0,
                 f"must be a number >= 0, got {self.think_time_ms!r}")
        names = {}
        for i, step in enumerate(self.steps):
            step_path = join_path(path, f"steps[{i}]")
            step.validate_into(step_path, issues)
            if isinstance(step.name, str) and step.name:
                if step.name in names:
                    issues.append(ValidationIssue(
                        join_path(step_path, "name"),
                        f"duplicate step name {step.name!r} "
                        f"(first at steps[{names[step.name]}])"))
                else:
                    names[step.name] = i
        # Unknown `after` references, then a cycle check over the rest.
        edges = {}
        for i, step in enumerate(self.steps):
            deps = []
            for dep in step.after:
                if dep not in names:
                    issues.append(ValidationIssue(
                        join_path(path, f"steps[{i}].after"),
                        f"unknown step {dep!r} "
                        f"(known: {sorted(names)})"))
                else:
                    deps.append(dep)
            if isinstance(step.name, str):
                edges[step.name] = deps
        remaining = dict(edges)
        while remaining:
            ready = [n for n, deps in remaining.items()
                     if not any(d in remaining for d in deps)]
            if not ready:
                issues.append(ValidationIssue(
                    join_path(path, "steps"),
                    f"dependency cycle among steps {sorted(remaining)}"))
                break
            for n in ready:
                del remaining[n]


@dataclass(frozen=True)
class WorkloadSpec:
    """Exactly one of ``benchmark`` (suite name) or ``dag`` (inline)."""

    benchmark: Optional[str] = None
    dag: Optional[RequestDagSpec] = None

    def validate_into(self, path: str, issues: Issues) -> None:
        if (self.benchmark is None) == (self.dag is None):
            issues.append(ValidationIssue(
                path, "exactly one of benchmark/dag must be set"))
            return
        if self.benchmark is not None:
            known = registry.benchmark_names()
            _require(issues, join_path(path, "benchmark"),
                     self.benchmark in known,
                     f"unknown benchmark {self.benchmark!r} (known: {known})")
        if self.dag is not None:
            self.dag.validate_into(join_path(path, "dag"), issues)


# ---------------------------------------------------------------------------
# Topology: racks of server tiers with platform refs and attached blades
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RemoteMemorySpec:
    """A shared remote-memory blade behind a tier (the N2 disaggregation)."""

    local_fraction: float = 0.25
    trace_length: int = 200_000

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "local_fraction"),
                 _is_num(self.local_fraction)
                 and 0.0 < self.local_fraction <= 1.0,
                 f"must be in (0, 1], got {self.local_fraction!r}")
        _require(issues, join_path(path, "trace_length"),
                 _is_int(self.trace_length) and self.trace_length > 0,
                 f"must be an integer > 0, got {self.trace_length!r}")


@dataclass(frozen=True)
class FlashSpec:
    """A flash/SAN disk configuration in front of the tier's disks."""

    configuration: str = "remote-laptop+flash"

    def validate_into(self, path: str, issues: Issues) -> None:
        known = registry.disk_configuration_names()
        _require(issues, join_path(path, "configuration"),
                 self.configuration in known,
                 f"unknown disk configuration {self.configuration!r} "
                 f"(known: {known})")


@dataclass(frozen=True)
class TierSpec:
    """One serving tier: a balancer fronting ``servers`` identical nodes.

    Exactly one of ``platform`` (raw catalog platform) or ``design``
    (priced design: any platform name as a baseline design, or the
    unified ``N1``/``N2``) names the hardware.  ``balancer_scope``
    selects the balancing domain: ``"cluster"`` (one balancer, the
    monolithic DES/cohort engines) or ``"enclosure"`` (per-enclosure
    cells, the sharded engine -- a semantically different modular-DC
    system, never auto-selected).
    """

    name: str
    platform: Optional[str] = None
    design: Optional[str] = None
    servers: int = 4
    clients_per_server: int = 1
    enclosure_size: Optional[int] = None
    dispatch: Optional[str] = None
    balancer_scope: str = "cluster"
    cells: Optional[int] = None
    remote_memory: Optional[RemoteMemorySpec] = None
    flash: Optional[FlashSpec] = None

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "name"),
                 isinstance(self.name, str) and bool(self.name),
                 "tier name must be a non-empty string")
        if (self.platform is None) == (self.design is None):
            issues.append(ValidationIssue(
                path, "exactly one of platform/design must be set"))
        if self.platform is not None:
            from repro.platforms.catalog import platform_names

            known = platform_names()
            _require(issues, join_path(path, "platform"),
                     self.platform in known,
                     f"unknown {self.platform!r} (known: {known})")
        if self.design is not None:
            known = registry.design_names()
            _require(issues, join_path(path, "design"),
                     self.design in known,
                     f"unknown {self.design!r} (known: {known})")
        _require(issues, join_path(path, "servers"),
                 _is_int(self.servers) and self.servers >= 1,
                 f"must be an integer >= 1, got {self.servers!r}")
        _require(issues, join_path(path, "clients_per_server"),
                 _is_int(self.clients_per_server)
                 and self.clients_per_server >= 1,
                 f"must be an integer >= 1, got {self.clients_per_server!r}")
        if self.enclosure_size is not None:
            _require(issues, join_path(path, "enclosure_size"),
                     _is_int(self.enclosure_size) and self.enclosure_size >= 1,
                     f"must be an integer >= 1, got {self.enclosure_size!r}")
        if self.dispatch is not None:
            _require(issues, join_path(path, "dispatch"),
                     self.dispatch in registry.DISPATCH,
                     f"unknown dispatch {self.dispatch!r} "
                     f"(known: {list(registry.DISPATCH)})")
        scope_ok = _require(
            issues, join_path(path, "balancer_scope"),
            self.balancer_scope in ("cluster", "enclosure"),
            f"must be 'cluster' or 'enclosure', got {self.balancer_scope!r}")
        if scope_ok and self.balancer_scope == "enclosure":
            if self.enclosure_size is None:
                issues.append(ValidationIssue(
                    join_path(path, "enclosure_size"),
                    "required when balancer_scope is 'enclosure'"))
            elif (_is_int(self.servers) and self.servers >= 1
                  and self.servers % self.enclosure_size != 0):
                issues.append(ValidationIssue(
                    join_path(path, "servers"),
                    f"{self.servers} servers is not a multiple of "
                    f"enclosure_size {self.enclosure_size}"))
            if self.remote_memory is not None:
                issues.append(ValidationIssue(
                    join_path(path, "remote_memory"),
                    "enclosure-scoped balancing cannot partition a shared "
                    "memory blade (one link serves the whole cluster)"))
        elif self.cells is not None:
            issues.append(ValidationIssue(
                join_path(path, "cells"),
                "only meaningful when balancer_scope is 'enclosure'"))
        if self.cells is not None:
            _require(issues, join_path(path, "cells"),
                     _is_int(self.cells) and self.cells >= 1,
                     f"must be an integer >= 1, got {self.cells!r}")
        if self.remote_memory is not None:
            self.remote_memory.validate_into(
                join_path(path, "remote_memory"), issues)
        if self.flash is not None:
            self.flash.validate_into(join_path(path, "flash"), issues)


@dataclass(frozen=True)
class TopologySpec:
    """``racks`` independent copies of the listed tiers."""

    tiers: Tuple[TierSpec, ...] = ()
    racks: int = 1

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "racks"),
                 _is_int(self.racks) and self.racks >= 1,
                 f"must be an integer >= 1, got {self.racks!r}")
        _require(issues, join_path(path, "tiers"),
                 len(self.tiers) > 0, "at least one tier is required")
        seen = {}
        for i, tier in enumerate(self.tiers):
            tier_path = join_path(path, f"tiers[{i}]")
            tier.validate_into(tier_path, issues)
            if isinstance(tier.name, str) and tier.name:
                if tier.name in seen:
                    issues.append(ValidationIssue(
                        join_path(tier_path, "name"),
                        f"duplicate tier name {tier.name!r} "
                        f"(first at tiers[{seen[tier.name]}])"))
                else:
                    seen[tier.name] = i


# ---------------------------------------------------------------------------
# Traffic programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Closed-loop client pool (request counts, not wall-clock windows)."""

    warmup_requests: int = 500
    measure_requests: int = 4000

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "warmup_requests"),
                 _is_int(self.warmup_requests) and self.warmup_requests >= 0,
                 f"must be an integer >= 0, got {self.warmup_requests!r}")
        _require(issues, join_path(path, "measure_requests"),
                 _is_int(self.measure_requests) and self.measure_requests >= 1,
                 f"must be an integer >= 1, got {self.measure_requests!r}")


@dataclass(frozen=True)
class SurgeSpec:
    """A flash-crowd window inside the open-loop measurement."""

    multiplier: float = 5.0
    start_ms: float = 0.0
    end_ms: float = 0.0

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "multiplier"),
                 _is_num(self.multiplier) and self.multiplier >= 1.0,
                 f"must be a number >= 1, got {self.multiplier!r}")
        window_ok = (_is_num(self.start_ms) and _is_num(self.end_ms)
                     and 0 <= self.start_ms <= self.end_ms)
        _require(issues, path, window_ok,
                 f"surge window must satisfy 0 <= start_ms <= end_ms, "
                 f"got [{self.start_ms!r}, {self.end_ms!r})")


@dataclass(frozen=True)
class DiurnalSpec:
    """A full simulated day: 24 hourly segments of a diurnal curve.

    The curve comes from :class:`repro.cluster.diurnal.DiurnalLoadModel`
    (peak-normalized); each hour compiles to one open-loop segment of
    ``sim_ms_per_hour`` simulated milliseconds at that hour's rate.  An
    optional flash crowd multiplies the rate inside the middle half of
    one hour's segment (a viral spike riding the diurnal peak).
    """

    peak_to_trough: float = 3.0
    peak_hour: float = 20.0
    weekend_factor: float = 1.0
    sim_ms_per_hour: float = 4000.0
    flash_crowd_hour: Optional[int] = None
    flash_crowd_multiplier: float = 3.0

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "peak_to_trough"),
                 _is_num(self.peak_to_trough) and self.peak_to_trough >= 1.0,
                 f"must be a number >= 1, got {self.peak_to_trough!r}")
        _require(issues, join_path(path, "peak_hour"),
                 _is_num(self.peak_hour) and 0 <= self.peak_hour < 24,
                 f"must be in [0, 24), got {self.peak_hour!r}")
        _require(issues, join_path(path, "weekend_factor"),
                 _is_num(self.weekend_factor)
                 and 0 < self.weekend_factor <= 1.0,
                 f"must be in (0, 1], got {self.weekend_factor!r}")
        _require(issues, join_path(path, "sim_ms_per_hour"),
                 _is_num(self.sim_ms_per_hour) and self.sim_ms_per_hour > 0,
                 f"must be a number > 0, got {self.sim_ms_per_hour!r}")
        if self.flash_crowd_hour is not None:
            _require(issues, join_path(path, "flash_crowd_hour"),
                     _is_int(self.flash_crowd_hour)
                     and 0 <= self.flash_crowd_hour < 24,
                     f"must be an hour in [0, 24), "
                     f"got {self.flash_crowd_hour!r}")
        _require(issues, join_path(path, "flash_crowd_multiplier"),
                 _is_num(self.flash_crowd_multiplier)
                 and self.flash_crowd_multiplier >= 1.0,
                 f"must be a number >= 1, got {self.flash_crowd_multiplier!r}")


@dataclass(frozen=True)
class RegionSpec:
    """A regional share of traffic with a time-zone-shifted diurnal peak."""

    name: str
    weight: float = 1.0
    peak_hour_offset: float = 0.0

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "name"),
                 isinstance(self.name, str) and bool(self.name),
                 "region name must be a non-empty string")
        _require(issues, join_path(path, "weight"),
                 _is_num(self.weight) and self.weight > 0,
                 f"must be a number > 0, got {self.weight!r}")
        _require(issues, join_path(path, "peak_hour_offset"),
                 _is_num(self.peak_hour_offset)
                 and -24 < self.peak_hour_offset < 24,
                 f"must be in (-24, 24), got {self.peak_hour_offset!r}")


@dataclass(frozen=True)
class OpenLoopSpec:
    """Open-loop Poisson arrivals against each rack's tier.

    The (peak) per-rack rate is either ``base_rate_rps`` (absolute) or
    ``utilization`` x the tier's analytic per-server capacity x servers.
    At most one of ``surge`` (flash crowd over a flat base) and
    ``diurnal`` (a full day) shapes the program.  ``regions`` blend
    time-zone-shifted copies of the diurnal curve by ``weight`` --
    they shape the rate, not the run count.
    """

    base_rate_rps: Optional[float] = None
    utilization: Optional[float] = None
    surge: Optional[SurgeSpec] = None
    diurnal: Optional[DiurnalSpec] = None
    regions: Tuple[RegionSpec, ...] = ()
    warmup_ms: float = 2000.0
    measure_ms: float = 20_000.0
    #: Mean per-user request rate, used only to report the modeled user
    #: population a scenario's aggregate peak rate stands for.
    user_request_rate_rps: float = 0.002

    def validate_into(self, path: str, issues: Issues) -> None:
        if (self.base_rate_rps is None) == (self.utilization is None):
            issues.append(ValidationIssue(
                path, "exactly one of base_rate_rps/utilization must be set"))
        if self.base_rate_rps is not None:
            _require(issues, join_path(path, "base_rate_rps"),
                     _is_num(self.base_rate_rps) and self.base_rate_rps > 0,
                     f"must be a number > 0, got {self.base_rate_rps!r}")
        if self.utilization is not None:
            _require(issues, join_path(path, "utilization"),
                     _is_num(self.utilization)
                     and 0 < self.utilization,
                     f"must be a number > 0, got {self.utilization!r}")
        if self.surge is not None and self.diurnal is not None:
            issues.append(ValidationIssue(
                path, "surge and diurnal are mutually exclusive "
                      "(use diurnal.flash_crowd_hour for a spike in a day)"))
        if self.surge is not None:
            self.surge.validate_into(join_path(path, "surge"), issues)
            if (_is_num(self.surge.end_ms) and _is_num(self.measure_ms)
                    and _is_num(self.warmup_ms)
                    and self.surge.end_ms > self.warmup_ms + self.measure_ms):
                issues.append(ValidationIssue(
                    join_path(path, "surge.end_ms"),
                    f"surge ends at {self.surge.end_ms!r} ms, after the "
                    f"run ends at {self.warmup_ms + self.measure_ms!r} ms"))
        if self.diurnal is not None:
            self.diurnal.validate_into(join_path(path, "diurnal"), issues)
        if self.regions and self.diurnal is None:
            issues.append(ValidationIssue(
                join_path(path, "regions"),
                "regions blend time-zone-shifted diurnal curves; "
                "they require diurnal"))
        seen = {}
        for i, region in enumerate(self.regions):
            region_path = join_path(path, f"regions[{i}]")
            region.validate_into(region_path, issues)
            if isinstance(region.name, str) and region.name:
                if region.name in seen:
                    issues.append(ValidationIssue(
                        join_path(region_path, "name"),
                        f"duplicate region name {region.name!r}"))
                else:
                    seen[region.name] = i
        _require(issues, join_path(path, "warmup_ms"),
                 _is_num(self.warmup_ms) and self.warmup_ms >= 0,
                 f"must be a number >= 0, got {self.warmup_ms!r}")
        _require(issues, join_path(path, "measure_ms"),
                 _is_num(self.measure_ms) and self.measure_ms > 0,
                 f"must be a number > 0, got {self.measure_ms!r}")
        _require(issues, join_path(path, "user_request_rate_rps"),
                 _is_num(self.user_request_rate_rps)
                 and self.user_request_rate_rps > 0,
                 f"must be a number > 0, got {self.user_request_rate_rps!r}")


@dataclass(frozen=True)
class TrafficSpec:
    """Exactly one of ``closed_loop``/``open_loop``."""

    closed_loop: Optional[ClosedLoopSpec] = None
    open_loop: Optional[OpenLoopSpec] = None

    def validate_into(self, path: str, issues: Issues) -> None:
        if (self.closed_loop is None) == (self.open_loop is None):
            issues.append(ValidationIssue(
                path, "exactly one of closed_loop/open_loop must be set"))
            return
        if self.closed_loop is not None:
            self.closed_loop.validate_into(
                join_path(path, "closed_loop"), issues)
        if self.open_loop is not None:
            self.open_loop.validate_into(join_path(path, "open_loop"), issues)


# ---------------------------------------------------------------------------
# Overlays: faults / fail-slow / redundancy / protection / tracing arms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetrySpec:
    """Client timeout/retry/hedging policy (degradation stack)."""

    timeout_ms: float = 1000.0
    max_retries: int = 2
    backoff_base_ms: float = 10.0
    backoff_factor: float = 2.0
    hedge_after_ms: Optional[float] = None
    jitter: bool = False

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "timeout_ms"),
                 _is_num(self.timeout_ms) and self.timeout_ms > 0,
                 f"must be a number > 0, got {self.timeout_ms!r}")
        _require(issues, join_path(path, "max_retries"),
                 _is_int(self.max_retries) and self.max_retries >= 0,
                 f"must be an integer >= 0, got {self.max_retries!r}")
        _require(issues, join_path(path, "backoff_base_ms"),
                 _is_num(self.backoff_base_ms) and self.backoff_base_ms >= 0,
                 f"must be a number >= 0, got {self.backoff_base_ms!r}")
        _require(issues, join_path(path, "backoff_factor"),
                 _is_num(self.backoff_factor) and self.backoff_factor >= 1.0,
                 f"must be a number >= 1, got {self.backoff_factor!r}")
        if self.hedge_after_ms is not None:
            _require(issues, join_path(path, "hedge_after_ms"),
                     _is_num(self.hedge_after_ms) and self.hedge_after_ms > 0,
                     f"must be a number > 0, got {self.hedge_after_ms!r}")


@dataclass(frozen=True)
class FaultsSpec:
    """Stochastic fault injection from a named profile."""

    profile: str = "stress"
    fault_seed: int = 7

    def validate_into(self, path: str, issues: Issues) -> None:
        known = registry.fault_profile_names()
        _require(issues, join_path(path, "profile"),
                 self.profile in known,
                 f"unknown fault profile {self.profile!r} (known: {known})")
        _require(issues, join_path(path, "fault_seed"),
                 _is_int(self.fault_seed),
                 f"must be an integer, got {self.fault_seed!r}")


@dataclass(frozen=True)
class OverloadSpec:
    """Overload protection: the full stack, or telemetry-only.

    ``protected=False`` compiles to ``OverloadPolicy.unprotected()``
    (the naive baseline).  ``queue_cap`` is an integer, ``None`` for
    unbounded queues, or ``"auto"``: half the retry-timeout's worth of
    per-server capacity (the EXT-10 sizing rule; requires open-loop
    traffic so capacity is computed anyway).
    """

    protected: bool = True
    queue_cap: Union[int, str, None] = "auto"

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "protected"),
                 isinstance(self.protected, bool),
                 f"must be a boolean, got {self.protected!r}")
        if isinstance(self.queue_cap, str):
            _require(issues, join_path(path, "queue_cap"),
                     self.queue_cap == "auto",
                     f"must be an integer, null, or 'auto', "
                     f"got {self.queue_cap!r}")
        elif self.queue_cap is not None:
            _require(issues, join_path(path, "queue_cap"),
                     _is_int(self.queue_cap) and self.queue_cap >= 1,
                     f"must be an integer >= 1, null, or 'auto', "
                     f"got {self.queue_cap!r}")


@dataclass(frozen=True)
class FailslowSpec:
    """One gray-failure drift: a server's resource steps to ``factor`` x."""

    server: int = 0
    factor: float = 10.0
    resource: str = "cpu"
    at_ms: float = 0.0
    detection: bool = False

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "server"),
                 _is_int(self.server) and self.server >= 0,
                 f"must be an integer >= 0, got {self.server!r}")
        _require(issues, join_path(path, "factor"),
                 _is_num(self.factor) and self.factor >= 1.0,
                 f"must be a number >= 1, got {self.factor!r}")
        _require(issues, join_path(path, "resource"),
                 self.resource in registry.FAILSLOW_RESOURCES,
                 f"unknown resource {self.resource!r} "
                 f"(known: {list(registry.FAILSLOW_RESOURCES)})")
        _require(issues, join_path(path, "at_ms"),
                 _is_num(self.at_ms) and self.at_ms >= 0,
                 f"must be a number >= 0, got {self.at_ms!r}")


@dataclass(frozen=True)
class RedundancySpec:
    """Remote-memory redundancy for tiers with a memory blade."""

    mode: str = "replica"
    blades: int = 2
    copies: int = 2
    data_shards: int = 4
    pages_per_server: int = 256

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "mode"),
                 self.mode in registry.REDUNDANCY_MODES,
                 f"unknown mode {self.mode!r} "
                 f"(known: {list(registry.REDUNDANCY_MODES)})")
        _require(issues, join_path(path, "blades"),
                 _is_int(self.blades) and self.blades >= 1,
                 f"must be an integer >= 1, got {self.blades!r}")
        _require(issues, join_path(path, "copies"),
                 _is_int(self.copies) and self.copies >= 2,
                 f"must be an integer >= 2, got {self.copies!r}")
        _require(issues, join_path(path, "data_shards"),
                 _is_int(self.data_shards) and self.data_shards >= 2,
                 f"must be an integer >= 2, got {self.data_shards!r}")
        _require(issues, join_path(path, "pages_per_server"),
                 _is_int(self.pages_per_server) and self.pages_per_server >= 1,
                 f"must be an integer >= 1, got {self.pages_per_server!r}")
        if self.mode == "replica" and _is_int(self.blades) \
                and _is_int(self.copies) and self.blades < self.copies:
            issues.append(ValidationIssue(
                join_path(path, "blades"),
                f"replica mode with {self.copies} copies needs >= "
                f"{self.copies} blades, got {self.blades}"))


@dataclass(frozen=True)
class TracingSpec:
    """Per-request distributed tracing (deterministic sampling)."""

    sample_rate: float = 1.0
    trace_seed: int = 17

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "sample_rate"),
                 _is_num(self.sample_rate) and 0 < self.sample_rate <= 1.0,
                 f"must be in (0, 1], got {self.sample_rate!r}")
        _require(issues, join_path(path, "trace_seed"),
                 _is_int(self.trace_seed),
                 f"must be an integer, got {self.trace_seed!r}")


@dataclass(frozen=True)
class OverlaySpec:
    """One named arm: overlays compose on the same topology/traffic."""

    name: str = "baseline"
    retry: Optional[RetrySpec] = None
    faults: Optional[FaultsSpec] = None
    overload: Optional[OverloadSpec] = None
    failslow: Optional[FailslowSpec] = None
    redundancy: Optional[RedundancySpec] = None
    tracing: Optional[TracingSpec] = None

    def validate_into(self, path: str, issues: Issues) -> None:
        _require(issues, join_path(path, "name"),
                 isinstance(self.name, str) and bool(self.name),
                 "overlay name must be a non-empty string")
        for attr in ("retry", "faults", "overload", "failslow",
                     "redundancy", "tracing"):
            value = getattr(self, attr)
            if value is not None:
                value.validate_into(join_path(path, attr), issues)


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A complete declarative experiment: topology x workload x traffic
    x overlays.  Pure data; lower it with
    :func:`repro.scenario.compiler.compile_scenario`."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    overlays: Tuple[OverlaySpec, ...] = (OverlaySpec(),)
    seed: int = 1
    engine: str = "auto"
    description: str = ""

    def validate(self) -> Issues:
        """Every problem in the scenario, with precise paths.  Never
        raises and never stops early; an empty list means valid."""
        issues: Issues = []
        _require(issues, "name",
                 isinstance(self.name, str) and bool(self.name),
                 "scenario name must be a non-empty string")
        _require(issues, "seed", _is_int(self.seed),
                 f"must be an integer, got {self.seed!r}")
        _require(issues, "engine",
                 self.engine in ("auto", "cohort", "scalar", "sharded"),
                 f"must be one of auto/cohort/scalar/sharded, "
                 f"got {self.engine!r}")
        self.topology.validate_into("topology", issues)
        self.workload.validate_into("workload", issues)
        self.traffic.validate_into("traffic", issues)
        _require(issues, "overlays", len(self.overlays) > 0,
                 "at least one overlay is required")
        seen = {}
        for i, overlay in enumerate(self.overlays):
            overlay_path = f"overlays[{i}]"
            overlay.validate_into(overlay_path, issues)
            if isinstance(overlay.name, str) and overlay.name:
                if overlay.name in seen:
                    issues.append(ValidationIssue(
                        join_path(overlay_path, "name"),
                        f"duplicate overlay name {overlay.name!r}"))
                else:
                    seen[overlay.name] = i
        self._validate_cross(issues)
        return issues

    def _validate_cross(self, issues: Issues) -> None:
        """Constraints spanning topology x workload x traffic x overlays."""
        inline_dag = self.workload.dag is not None
        for i, tier in enumerate(self.topology.tiers):
            tier_path = f"topology.tiers[{i}]"
            if inline_dag and tier.remote_memory is not None:
                issues.append(ValidationIssue(
                    join_path(tier_path, "remote_memory"),
                    "remote-memory blades need a named benchmark workload "
                    "(the paging trace is benchmark-specific)"))
            if inline_dag and tier.flash is not None:
                issues.append(ValidationIssue(
                    join_path(tier_path, "flash"),
                    "flash disk configurations need a named benchmark "
                    "workload (the cache model is benchmark-specific)"))
            if tier.balancer_scope == "enclosure":
                for j, overlay in enumerate(self.overlays):
                    if overlay.faults is not None:
                        issues.append(ValidationIssue(
                            f"overlays[{j}].faults",
                            f"stochastic faults cannot be partitioned into "
                            f"enclosure cells (tier {tier.name!r} uses "
                            f"balancer_scope 'enclosure')"))
                    if overlay.tracing is not None:
                        issues.append(ValidationIssue(
                            f"overlays[{j}].tracing",
                            f"tracing is not supported by the sharded "
                            f"engine (tier {tier.name!r} uses "
                            f"balancer_scope 'enclosure')"))
                    if overlay.redundancy is not None:
                        issues.append(ValidationIssue(
                            f"overlays[{j}].redundancy",
                            "redundant remote memory requires a "
                            "cluster-scoped balancer"))
        for j, overlay in enumerate(self.overlays):
            if overlay.redundancy is not None and not any(
                    t.remote_memory is not None
                    for t in self.topology.tiers):
                issues.append(ValidationIssue(
                    f"overlays[{j}].redundancy",
                    "no tier has a remote_memory blade to protect"))
            if (overlay.overload is not None
                    and overlay.overload.protected
                    and overlay.overload.queue_cap == "auto"
                    and self.traffic.open_loop is None):
                issues.append(ValidationIssue(
                    f"overlays[{j}].overload.queue_cap",
                    "'auto' sizing needs open-loop traffic (it is derived "
                    "from the analytic capacity); give an integer"))
        if self.engine == "sharded":
            for i, tier in enumerate(self.topology.tiers):
                if tier.balancer_scope != "enclosure":
                    issues.append(ValidationIssue(
                        "engine",
                        f"engine 'sharded' requires every tier to use "
                        f"balancer_scope 'enclosure' "
                        f"(topology.tiers[{i}] is cluster-scoped)"))

    def check(self) -> "Scenario":
        """Validate; raise one aggregated error if anything is wrong."""
        issues = self.validate()
        if issues:
            raise ScenarioValidationError(issues)
        return self
