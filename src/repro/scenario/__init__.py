"""Declarative warehouse-scale scenarios (schema, builder, compiler).

A :class:`~repro.scenario.spec.Scenario` describes an experiment as
data -- topology (tiers of platform/design servers, remote-memory
blades, flash), workload (suite benchmark or inline request DAG),
traffic program (closed loop, open loop with surges, or a full diurnal
day across regions), and overlay blocks (faults, fail-slow, overload
protection, redundancy, tracing).  Build one fluently
(:class:`~repro.scenario.builder.ScenarioBuilder`), load one from YAML
or JSON (:mod:`repro.scenario.loader`), then compile and run it
(:func:`~repro.scenario.compiler.run_scenario`); the compiler lowers
the spec onto the existing engines, auto-selecting the fastest
eligible one and surfacing ``engine_used``/``fallback_reason`` per
run.  The ``repro-scenario`` CLI wraps the same pipeline.
"""

from repro.scenario.builder import ScenarioBuilder
from repro.scenario.compiler import (
    CompiledScenario,
    RunPlan,
    RunRecord,
    ScenarioResult,
    compile_scenario,
    probe_engine,
    run_scenario,
)
from repro.scenario.errors import ScenarioValidationError, ValidationIssue
from repro.scenario.library import LIBRARY, library_scenario
from repro.scenario.loader import (
    from_yaml,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    to_yaml,
)
from repro.scenario.spec import (
    ClosedLoopSpec,
    DiurnalSpec,
    FailslowSpec,
    FaultsSpec,
    FlashSpec,
    OpenLoopSpec,
    OverlaySpec,
    OverloadSpec,
    RedundancySpec,
    RegionSpec,
    RemoteMemorySpec,
    RequestDagSpec,
    RetrySpec,
    Scenario,
    StepSpec,
    SurgeSpec,
    TierSpec,
    TopologySpec,
    TracingSpec,
    TrafficSpec,
    WorkloadSpec,
)

__all__ = [
    "Scenario",
    "ScenarioBuilder",
    "ScenarioValidationError",
    "ValidationIssue",
    "CompiledScenario",
    "RunPlan",
    "RunRecord",
    "ScenarioResult",
    "compile_scenario",
    "run_scenario",
    "probe_engine",
    "LIBRARY",
    "library_scenario",
    "load_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "from_yaml",
    "to_yaml",
    "TopologySpec",
    "TierSpec",
    "RemoteMemorySpec",
    "FlashSpec",
    "WorkloadSpec",
    "RequestDagSpec",
    "StepSpec",
    "TrafficSpec",
    "ClosedLoopSpec",
    "OpenLoopSpec",
    "SurgeSpec",
    "DiurnalSpec",
    "RegionSpec",
    "OverlaySpec",
    "RetrySpec",
    "FaultsSpec",
    "OverloadSpec",
    "FailslowSpec",
    "RedundancySpec",
    "TracingSpec",
]
