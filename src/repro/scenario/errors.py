"""Validation errors for the scenario layer.

Every problem found while validating (or decoding) a scenario is a
:class:`ValidationIssue` carrying the *path* of the offending field in
the spec tree (``topology.tiers[2].platform``) and a human-readable
message.  :meth:`repro.scenario.spec.Scenario.validate` aggregates every
issue instead of stopping at the first; :class:`ScenarioValidationError`
renders the full list so one run of ``repro-scenario validate`` shows
everything that needs fixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class ValidationIssue:
    """One problem at one path in a scenario spec."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class ScenarioValidationError(ValueError):
    """Raised by ``Scenario.check()`` with *every* validation issue."""

    def __init__(self, issues: Iterable[ValidationIssue]):
        self.issues: List[ValidationIssue] = list(issues)
        count = len(self.issues)
        noun = "issue" if count == 1 else "issues"
        lines = "\n".join(f"  - {issue}" for issue in self.issues)
        super().__init__(f"scenario failed validation ({count} {noun}):\n{lines}")


def join_path(parent: str, child: str) -> str:
    """``join_path("topology", "tiers[2]") -> "topology.tiers[2]"``."""
    if not parent:
        return child
    if child.startswith("["):
        return f"{parent}{child}"
    return f"{parent}.{child}"
