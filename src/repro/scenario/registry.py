"""Vocabulary lookups shared by scenario validation and compilation.

The scenario schema refers to repo entities by name: platforms and
designs from :mod:`repro.platforms` / :mod:`repro.core.designs`,
benchmarks from :mod:`repro.workloads.suite`, disk configurations from
:mod:`repro.flashcache.analysis`, and fault profiles.  This module is
the single place those names are resolved so validation error messages
and the compiler can never disagree about what exists.
"""

from __future__ import annotations

from typing import List

from repro.cluster.balancer import Dispatch
from repro.core.designs import baseline_design, n1_design, n2_design
from repro.faults.model import DEFAULT_FAULT_PROFILE, FaultProfile
from repro.flashcache.analysis import DISK_CONFIGURATIONS
from repro.platforms.catalog import platform_names
from repro.workloads.suite import BENCHMARK_SUITE

#: Named fault profiles usable from a scenario's ``faults`` overlay.
#: ``stress`` is the accelerated profile EXT-8/EXT-11 inject (MTBFs in
#: seconds so a one-minute window sees failures); ``real-timescale`` is
#: the 3-year MTBF profile the cost layer prices.
_FAULT_PROFILES = None


def _fault_profiles() -> dict:
    # Imported lazily: repro.experiments.availability pulls in the cost
    # model stack, which the schema layer should not load just to be
    # imported.
    global _FAULT_PROFILES
    if _FAULT_PROFILES is None:
        from repro.experiments.availability import STRESS_FAULT_PROFILE

        _FAULT_PROFILES = {
            "stress": STRESS_FAULT_PROFILE,
            "real-timescale": DEFAULT_FAULT_PROFILE,
        }
    return _FAULT_PROFILES


def fault_profile_names() -> List[str]:
    return list(_fault_profiles())


def fault_profile(name: str) -> FaultProfile:
    try:
        return _fault_profiles()[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown fault profile {name!r}; known: {fault_profile_names()}"
        ) from exc


def design_names() -> List[str]:
    """Platform names (baseline designs) plus the unified N1/N2 designs."""
    return list(platform_names()) + ["N1", "N2"]


def design(name: str):
    """Resolve a design name to a priced design object."""
    if name == "N1":
        return n1_design()
    if name == "N2":
        return n2_design()
    return baseline_design(name)


def benchmark_names() -> List[str]:
    return list(BENCHMARK_SUITE)


def disk_configuration_names() -> List[str]:
    return [config.name for config in DISK_CONFIGURATIONS]


#: Scenario dispatch names -> balancer enum.
DISPATCH = {
    "round-robin": Dispatch.ROUND_ROBIN,
    "least-outstanding": Dispatch.LEAST_OUTSTANDING,
}

#: Fail-slow resource dimension names (mirrors ``SlowResource`` values).
FAILSLOW_RESOURCES = ("cpu", "nic", "remote-mem", "flash")

#: Redundancy policy modes usable from a scenario overlay.
REDUNDANCY_MODES = ("replica", "parity", "unprotected")
