"""Serialize scenarios to/from plain dicts, YAML, and JSON.

A scenario is data: :func:`scenario_to_dict` emits nested primitives
(tuples become lists, fields equal to their defaults are omitted so the
round-trip is canonical), and :func:`scenario_from_dict` rebuilds the
frozen spec tree, aggregating *every* decode problem -- unknown keys,
wrong shapes, missing required fields -- into one
:class:`~repro.scenario.errors.ScenarioValidationError` with precise
paths, exactly like semantic validation.

YAML support is gated on PyYAML: the repo's core never imports it, and
:func:`from_yaml`/:func:`to_yaml` raise a clear error naming the
missing dependency when it is absent.  JSON works everywhere
(:func:`load_scenario` picks the format from the file suffix).
"""

from __future__ import annotations

import dataclasses
import json
import typing
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.scenario.errors import (
    ScenarioValidationError,
    ValidationIssue,
    join_path,
)
from repro.scenario.spec import Scenario

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "to_yaml",
    "from_yaml",
    "load_scenario",
    "save_scenario",
]


# ---------------------------------------------------------------------------
# dict encoding
# ---------------------------------------------------------------------------


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(value):
            field_value = getattr(value, f.name)
            default = _field_default(f)
            if field_value == default and not isinstance(default, _NoDefault):
                continue
            out[f.name] = _encode(field_value)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


class _NoDefault:
    pass


_NO_DEFAULT = _NoDefault()


def _field_default(f: dataclasses.Field) -> Any:
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f.default_factory()  # type: ignore[misc]
    return _NO_DEFAULT


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Nested-primitive form of a scenario (defaults omitted)."""
    return _encode(scenario)


# ---------------------------------------------------------------------------
# dict decoding (aggregating errors)
# ---------------------------------------------------------------------------


def _decode(cls: type, data: Any, path: str, issues: List[ValidationIssue]):
    """Rebuild dataclass ``cls`` from ``data``, appending issues."""
    if not isinstance(data, dict):
        issues.append(ValidationIssue(
            path or "<root>",
            f"expected a mapping for {cls.__name__}, "
            f"got {type(data).__name__}"))
        return None
    hints = typing.get_type_hints(cls)
    field_names = {f.name for f in dataclasses.fields(cls)}
    for key in data:
        if key not in field_names:
            issues.append(ValidationIssue(
                join_path(path, str(key)),
                f"unknown field for {cls.__name__} "
                f"(known: {sorted(field_names)})"))
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            if isinstance(_field_default(f), _NoDefault):
                issues.append(ValidationIssue(
                    join_path(path, f.name), "required field is missing"))
            continue
        kwargs[f.name] = _decode_value(
            hints[f.name], data[f.name], join_path(path, f.name), issues)
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        issues.append(ValidationIssue(path or "<root>", str(exc)))
        return None


def _decode_value(hint: Any, value: Any, path: str,
                  issues: List[ValidationIssue]):
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is Union:
        non_none = [a for a in args if a is not type(None)]
        if value is None:
            return None
        # Optional[Spec] recurses; unions of primitives pass through and
        # are checked semantically by Scenario.validate().
        if len(non_none) == 1:
            return _decode_value(non_none[0], value, path, issues)
        return value
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            issues.append(ValidationIssue(
                path, f"expected a list, got {type(value).__name__}"))
            return ()
        element_hint = args[0] if args else Any
        return tuple(
            _decode_value(element_hint, item, f"{path}[{i}]", issues)
            for i, item in enumerate(value)
        )
    if isinstance(hint, type) and dataclasses.is_dataclass(hint):
        return _decode(hint, value, path, issues)
    return value


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Decode and semantically validate; aggregate every problem."""
    issues: List[ValidationIssue] = []
    scenario = _decode(Scenario, data, "", issues)
    if scenario is not None:
        # Report semantic problems alongside any decode problems -- one
        # failure should not mask the rest of the spec's issues.
        issues.extend(scenario.validate())
    if issues:
        raise ScenarioValidationError(issues)
    assert scenario is not None
    return scenario


# ---------------------------------------------------------------------------
# YAML / JSON files
# ---------------------------------------------------------------------------


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-specific
        raise ImportError(
            "scenario YAML support needs the optional 'pyyaml' package "
            "(pip install pyyaml, or use JSON specs instead)"
        ) from exc
    return yaml


def to_yaml(scenario: Scenario) -> str:
    return _yaml().safe_dump(
        scenario_to_dict(scenario), sort_keys=False, default_flow_style=False)


def from_yaml(text: str) -> Scenario:
    data = _yaml().safe_load(text)
    if data is None:
        data = {}
    return scenario_from_dict(data)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a ``.yaml``/``.yml`` or ``.json`` scenario spec."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix in (".yaml", ".yml"):
        return from_yaml(text)
    if path.suffix == ".json":
        return scenario_from_dict(json.loads(text))
    raise ValueError(
        f"unknown scenario format {path.suffix!r} for {path} "
        "(expected .yaml, .yml, or .json)")


def save_scenario(scenario: Scenario, path: Union[str, Path],
                  validate: bool = True) -> Path:
    """Write a scenario spec; the format follows the suffix."""
    if validate:
        scenario.check()
    path = Path(path)
    if path.suffix in (".yaml", ".yml"):
        text = to_yaml(scenario)
    elif path.suffix == ".json":
        text = json.dumps(scenario_to_dict(scenario), indent=2) + "\n"
    else:
        raise ValueError(
            f"unknown scenario format {path.suffix!r} for {path} "
            "(expected .yaml, .yml, or .json)")
    path.write_text(text, encoding="utf-8")
    return path
