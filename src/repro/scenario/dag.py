"""Compile a :class:`RequestDagSpec` into a :class:`Workload`.

A scenario's inline request DAG is deterministic: every request demands
the sum of its steps' resources (the steps run on one serving node; the
DAG's edges order them but the node's stations -- CPU, memory, disk,
NIC -- are what the simulator contends on).  The resulting workload is
a first-class :class:`repro.workloads.base.Workload` usable anywhere a
suite benchmark is, including the cohort engine's fast-demand path
(the sampler draws nothing from the RNG, so the fast path trivially
consumes the same zero draws).
"""

from __future__ import annotations

from repro.scenario.spec import RequestDagSpec
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)
from repro.workloads.qos import QosSpec


def dag_demand(dag: RequestDagSpec) -> ResourceDemand:
    """Summed per-request demand of every step in the DAG."""
    return ResourceDemand(
        cpu_ms_ref=sum(step.cpu_ms_ref for step in dag.steps),
        mem_ms_ref=sum(step.mem_ms_ref for step in dag.steps),
        disk_ios=sum(step.disk_ios for step in dag.steps),
        disk_bytes=sum(step.disk_bytes for step in dag.steps),
        net_bytes=sum(step.net_bytes for step in dag.steps),
        disk_write=any(step.disk_write for step in dag.steps),
        cpu_parallelism=max(step.cpu_parallelism for step in dag.steps),
    )


def make_dag_workload(dag: RequestDagSpec) -> Workload:
    """Module-level factory (picklable via ``functools.partial``)."""
    demand = dag_demand(dag)
    request = Request(demand=demand, kind=dag.name)
    profile = WorkloadProfile(
        name=dag.name,
        description=f"scenario request DAG ({len(dag.steps)} steps)",
        emphasizes="declared per-step demands",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=demand,
        population=PopulationPolicy(fixed=32),
        qos=QosSpec(limit_ms=dag.qos_limit_ms, percentile=dag.qos_percentile),
        think_time_ms=dag.think_time_ms,
    )
    workload = Workload(profile, lambda rng: request)
    fast = (
        demand.cpu_ms_ref,
        demand.mem_ms_ref,
        demand.disk_ios,
        demand.disk_bytes,
        demand.net_bytes,
        demand.disk_write,
        demand.cpu_parallelism,
    )
    workload.fast_demand = lambda rng: fast
    return workload
