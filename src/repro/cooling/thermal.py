"""First-order thermo-mechanical models for enclosure airflow and heat
removal.

The paper reports the *outcomes* of its thermo-mechanical analysis
(calculations omitted for space): ~50% better cooling efficiency for the
dual-entry enclosure, and a further gain from aggregated heat removal with
planar heat pipes at 3x copper conductivity.  This module supplies the
first-order physics those outcomes follow from:

- Duct pressure drop scales as ``flow_length * velocity^2 / hydraulic_d``;
  air velocity is volumetric flow divided by total inlet area, so doubling
  the parallel paths halves velocity.
- Fan power is volumetric flow times pressure drop divided by fan
  efficiency.
- Conduction resistance of a spreader scales inversely with thermal
  conductivity and cross-section; a heat pipe at 3x copper conductivity
  cuts the spreading resistance accordingly, and aggregating heat into one
  large heat sink increases the convective area.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Density of air, kg/m^3 (sea level, ~25C).
AIR_DENSITY = 1.18
#: Specific heat of air, J/(kg K).
AIR_CP = 1005.0
#: Thermal conductivity of copper, W/(m K).
COPPER_CONDUCTIVITY = 400.0


@dataclass(frozen=True)
class AirflowPath:
    """One air path through an enclosure."""

    flow_length_m: float
    inlet_area_m2: float
    parallel_paths: int = 1
    hydraulic_diameter_m: float = 0.02
    friction_factor: float = 0.05

    def __post_init__(self) -> None:
        if min(self.flow_length_m, self.inlet_area_m2,
               self.hydraulic_diameter_m, self.friction_factor) <= 0:
            raise ValueError("airflow parameters must be positive")
        if self.parallel_paths <= 0:
            raise ValueError("parallel_paths must be positive")

    def velocity_m_s(self, volume_flow_m3_s: float) -> float:
        """Mean duct velocity for a given total volumetric flow."""
        if volume_flow_m3_s < 0:
            raise ValueError("volume flow must be >= 0")
        return volume_flow_m3_s / (self.inlet_area_m2 * self.parallel_paths)

    def pressure_drop_pa(self, volume_flow_m3_s: float) -> float:
        """Darcy-style duct pressure drop at a given total flow."""
        v = self.velocity_m_s(volume_flow_m3_s)
        return (
            self.friction_factor
            * (self.flow_length_m / self.hydraulic_diameter_m)
            * 0.5
            * AIR_DENSITY
            * v**2
        )


def required_flow_m3_s(heat_w: float, delta_t_k: float) -> float:
    """Volumetric airflow needed to carry ``heat_w`` at a ``delta_t_k`` rise."""
    if heat_w < 0:
        raise ValueError("heat must be >= 0")
    if delta_t_k <= 0:
        raise ValueError("temperature rise must be positive")
    return heat_w / (AIR_DENSITY * AIR_CP * delta_t_k)


def fan_power_w(
    path: AirflowPath,
    heat_w: float,
    delta_t_k: float,
    fan_efficiency: float = 0.3,
) -> float:
    """Fan power to remove ``heat_w`` through ``path`` at a given air rise."""
    if not 0 < fan_efficiency <= 1:
        raise ValueError("fan efficiency must be in (0, 1]")
    flow = required_flow_m3_s(heat_w, delta_t_k)
    return flow * path.pressure_drop_pa(flow) / fan_efficiency


@dataclass(frozen=True)
class HeatPipe:
    """A planar heat pipe / spreader between modules and a heat sink."""

    length_m: float
    cross_section_m2: float
    conductivity_w_mk: float = 3.0 * COPPER_CONDUCTIVITY  # paper: 3x copper

    def __post_init__(self) -> None:
        if min(self.length_m, self.cross_section_m2, self.conductivity_w_mk) <= 0:
            raise ValueError("heat pipe parameters must be positive")

    @property
    def conduction_resistance_k_w(self) -> float:
        """Conduction resistance length/(k*A), K/W."""
        return self.length_m / (self.conductivity_w_mk * self.cross_section_m2)


@dataclass(frozen=True)
class ThermalCircuit:
    """Series conduction + convection resistance from junction to air."""

    conduction_k_w: float
    convection_k_w: float

    def __post_init__(self) -> None:
        if self.conduction_k_w < 0 or self.convection_k_w <= 0:
            raise ValueError("invalid thermal resistances")

    @property
    def total_k_w(self) -> float:
        return self.conduction_k_w + self.convection_k_w

    def junction_rise_k(self, heat_w: float) -> float:
        """Junction temperature rise above inlet air for ``heat_w``."""
        if heat_w < 0:
            raise ValueError("heat must be >= 0")
        return heat_w * self.total_k_w

    def max_heat_w(self, allowed_rise_k: float) -> float:
        """Heat removable within an allowed junction temperature rise."""
        if allowed_rise_k <= 0:
            raise ValueError("allowed rise must be positive")
        return allowed_rise_k / self.total_k_w
