"""Fan affinity laws and cooling operating points.

Completes the packaging toolbox with the fan-side physics: the affinity
laws say that for a fixed fan geometry,

    flow     ~ rpm
    pressure ~ rpm^2
    power    ~ rpm^3

so moving air costs cubically in speed -- the quantitative reason the
dual-entry enclosure's lower pressure drop translates into outsized fan
power savings, and the reason enclosure designers trade heat-sink area
against fan speed.

:class:`Fan` scales a nameplate operating point through the laws;
:func:`operating_point` solves for the speed a fan must run at to remove
a heat load through a given airflow path within a temperature budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cooling.thermal import AirflowPath, required_flow_m3_s


@dataclass(frozen=True)
class Fan:
    """One fan characterized at a nameplate operating point."""

    name: str
    rated_rpm: float
    rated_flow_m3_s: float
    rated_power_w: float
    max_rpm: float

    def __post_init__(self) -> None:
        if min(self.rated_rpm, self.rated_flow_m3_s, self.rated_power_w) <= 0:
            raise ValueError("rated values must be positive")
        if self.max_rpm < self.rated_rpm:
            raise ValueError("max rpm must be >= rated rpm")

    def flow_at(self, rpm: float) -> float:
        """Volumetric flow at a given speed (affinity: linear)."""
        self._check_rpm(rpm)
        return self.rated_flow_m3_s * rpm / self.rated_rpm

    def power_at(self, rpm: float) -> float:
        """Electrical power at a given speed (affinity: cubic)."""
        self._check_rpm(rpm)
        return self.rated_power_w * (rpm / self.rated_rpm) ** 3

    def rpm_for_flow(self, flow_m3_s: float) -> float:
        """Speed needed for a target flow; raises if beyond max rpm."""
        if flow_m3_s < 0:
            raise ValueError("flow must be >= 0")
        rpm = self.rated_rpm * flow_m3_s / self.rated_flow_m3_s
        if rpm > self.max_rpm:
            raise ValueError(
                f"fan {self.name} cannot deliver {flow_m3_s:.4f} m^3/s "
                f"(needs {rpm:.0f} rpm, max {self.max_rpm:.0f})"
            )
        return rpm

    def _check_rpm(self, rpm: float) -> None:
        if not 0 <= rpm <= self.max_rpm:
            raise ValueError(f"rpm must be in [0, {self.max_rpm}]")


@dataclass(frozen=True)
class OperatingPoint:
    """A solved cooling operating point."""

    rpm: float
    flow_m3_s: float
    fan_power_w: float
    pressure_pa: float

    @property
    def efficiency_w_per_w(self) -> float:
        """Watts of heat removed per watt of fan power (set at solve time)."""
        return self._heat_w / self.fan_power_w if self.fan_power_w > 0 else float("inf")

    _heat_w: float = 0.0


def operating_point(
    fan: Fan,
    path: AirflowPath,
    heat_w: float,
    delta_t_k: float,
) -> OperatingPoint:
    """Solve for the fan speed that removes ``heat_w`` through ``path``.

    The flow requirement comes from the air heat balance; the affinity
    laws give the rpm and electrical power; the path gives the pressure
    the fan must develop at that flow.
    """
    flow = required_flow_m3_s(heat_w, delta_t_k)
    rpm = fan.rpm_for_flow(flow)
    return OperatingPoint(
        rpm=rpm,
        flow_m3_s=flow,
        fan_power_w=fan.power_at(rpm),
        pressure_pa=path.pressure_drop_pa(flow),
        _heat_w=heat_w,
    )


def speed_margin(fan: Fan, path: AirflowPath, heat_w: float, delta_t_k: float) -> float:
    """Headroom to the fan's max speed at the solved operating point.

    Returns ``(max_rpm - rpm) / max_rpm``; designers keep ~30% margin for
    altitude, filter clogging, and inlet-temperature excursions.
    """
    point = operating_point(fan, path, heat_w, delta_t_k)
    return (fan.max_rpm - point.rpm) / fan.max_rpm
