"""Packaging and cooling models (paper section 3.3).

Two novel packaging designs are modelled against a conventional enclosure:

- *Dual-entry enclosures with directed airflow*: blades insert from front
  and back onto a midplane; cold air is directed vertically through all
  blades in parallel (a parallel connection of thermal resistances instead
  of a serial one).  Shorter flow length, lower pre-heat and reduced
  pressure drop give ~50% better cooling efficiency and allow 320 systems
  per rack (40 blades of 75 W in a 5U enclosure).

- *Board-level aggregated heat removal*: small server modules interspersed
  with planar heat pipes (3x copper conductivity) that move heat to one
  central optimized heat sink.  With four 25 W modules per carrier blade
  this allows 1250 systems per rack and roughly 4x cooling efficiency.
"""

from repro.cooling.thermal import (
    AirflowPath,
    HeatPipe,
    ThermalCircuit,
    fan_power_w,
)
from repro.cooling.enclosure import (
    EnclosureDesign,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
    AGGREGATED_MICROBLADE,
)
from repro.cooling.rack import RackPacking, pack_rack
from repro.cooling.fanlaws import Fan, operating_point, speed_margin

__all__ = [
    "AirflowPath",
    "HeatPipe",
    "ThermalCircuit",
    "fan_power_w",
    "EnclosureDesign",
    "CONVENTIONAL_ENCLOSURE",
    "DUAL_ENTRY_ENCLOSURE",
    "AGGREGATED_MICROBLADE",
    "RackPacking",
    "pack_rack",
    "Fan",
    "operating_point",
    "speed_margin",
]
