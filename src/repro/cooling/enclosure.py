"""Enclosure designs: conventional, dual-entry, aggregated microblade.

Each :class:`EnclosureDesign` derives its cooling-efficiency gain from the
first-order models in :mod:`repro.cooling.thermal` and reports the rack
density and the factor by which server fan power (and fan/heat-sink
hardware cost) shrinks relative to the conventional front-to-back 1U
design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cooling.thermal import AirflowPath, HeatPipe, ThermalCircuit, fan_power_w

#: Reference per-server heat load used when comparing designs, watts.
_REFERENCE_HEAT_W = 75.0
#: Allowed air temperature rise through the enclosure, kelvin.
_DELTA_T_K = 12.0


@dataclass(frozen=True)
class EnclosureDesign:
    """One packaging design and its derived cooling characteristics."""

    name: str
    description: str
    airflow: AirflowPath
    systems_per_rack: int
    #: Convective resistance of the per-server heat sink arrangement, K/W.
    convection_k_w: float
    #: Conduction resistance junction->sink (heat pipes reduce this), K/W.
    conduction_k_w: float

    def fan_power_per_server_w(self, heat_w: float = _REFERENCE_HEAT_W) -> float:
        """Fan power to remove ``heat_w`` from one server."""
        return fan_power_w(self.airflow, heat_w, _DELTA_T_K)

    def thermal_circuit(self) -> ThermalCircuit:
        return ThermalCircuit(
            conduction_k_w=self.conduction_k_w, convection_k_w=self.convection_k_w
        )

    def cooling_efficiency_vs(self, baseline: "EnclosureDesign") -> float:
        """Cooling efficiency relative to ``baseline``.

        Defined as removable heat per watt of fan power within the same
        junction-temperature budget: combines the airflow (fan power) gain
        and the thermal-resistance (heat removal) gain.
        """
        heat_ratio = (
            baseline.thermal_circuit().total_k_w / self.thermal_circuit().total_k_w
        )
        fan_ratio = baseline.fan_power_per_server_w() / self.fan_power_per_server_w()
        # Geometric mean: efficiency gains come half from moving more heat
        # per degree, half from spending less fan power per unit of air.
        return (heat_ratio * fan_ratio) ** 0.5

    def fan_power_factor(self, baseline: "EnclosureDesign") -> float:
        """Multiplier on the baseline's fan power for equal heat removal."""
        return 1.0 / self.cooling_efficiency_vs(baseline)


#: Conventional 1U "pizza box" rack: front-to-back serial airflow across
#: the full chassis depth, one heat sink per CPU, 40 servers in 42U.
CONVENTIONAL_ENCLOSURE = EnclosureDesign(
    name="conventional",
    description="1U servers, front-to-back airflow, 40 per rack",
    airflow=AirflowPath(flow_length_m=0.70, inlet_area_m2=0.012, parallel_paths=1),
    systems_per_rack=40,
    convection_k_w=0.55,
    conduction_k_w=0.45,  # conventional copper spreader + per-CPU sink
)

#: Dual-entry enclosure: blades insert front and back onto a midplane;
#: air flows vertically through all blades in parallel (short flow length,
#: low pre-heat).  40 blades of 75 W per 5U enclosure -> 320 per rack.
DUAL_ENTRY_ENCLOSURE = EnclosureDesign(
    name="dual-entry",
    description=(
        "dual-entry 5U enclosure with directed vertical airflow; "
        "40 blades per enclosure, 320 systems per rack"
    ),
    airflow=AirflowPath(flow_length_m=0.25, inlet_area_m2=0.008, parallel_paths=2),
    systems_per_rack=320,
    convection_k_w=0.42,  # lower pre-heat: sinks see near-inlet air
    conduction_k_w=0.45,
)

#: Aggregated microblades: 25 W modules interspersed with planar heat
#: pipes feeding one large optimized heat sink; four modules per carrier
#: blade -> 1250 systems per rack.
_MICRO_HEAT_PIPE = HeatPipe(length_m=0.09, cross_section_m2=5.0e-4)

AGGREGATED_MICROBLADE = EnclosureDesign(
    name="aggregated-microblade",
    description=(
        "25 W microblade modules with planar heat pipes (3x copper) "
        "aggregated into one optimized heat sink; 1250 systems per rack"
    ),
    airflow=AirflowPath(flow_length_m=0.25, inlet_area_m2=0.008, parallel_paths=2),
    systems_per_rack=1250,
    # One large shared sink: much more convective area per watt.
    convection_k_w=0.16,
    conduction_k_w=_MICRO_HEAT_PIPE.conduction_resistance_k_w,
)
