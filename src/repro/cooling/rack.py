"""Rack packing: how many systems fit, and at what power density.

Supports the paper's section 3.2/3.3 observations: a standard 42U rack of
srvr1 consumes 13.6 kW while emb1 consumes only 2.7 kW; the dual-entry
enclosure raises density to 320 low-power blades per rack, and aggregated
microblades to 1250 systems per rack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cooling.enclosure import EnclosureDesign
from repro.costmodel.rack import RackConfig, STANDARD_RACK


@dataclass(frozen=True)
class RackPacking:
    """One packed rack: density, power, and the derived RackConfig."""

    enclosure: EnclosureDesign
    server_power_w: float
    switch_rack_power_w: float
    switch_rack_cost_usd: float

    @property
    def systems_per_rack(self) -> int:
        return self.enclosure.systems_per_rack

    @property
    def rack_power_kw(self) -> float:
        """Total rack power in kilowatts (servers + switches)."""
        return (
            self.systems_per_rack * self.server_power_w + self.switch_rack_power_w
        ) / 1000.0

    def rack_config(self) -> RackConfig:
        """Equivalent cost-model rack configuration."""
        return RackConfig(
            servers_per_rack=self.systems_per_rack,
            switch_rack_cost_usd=self.switch_rack_cost_usd,
            switch_rack_power_w=self.switch_rack_power_w,
        )

    def racks_for(self, servers: int) -> int:
        """Racks needed to house ``servers`` systems."""
        if servers < 0:
            raise ValueError("server count must be >= 0")
        per = self.systems_per_rack
        return -(-servers // per) if servers else 0


def pack_rack(
    enclosure: EnclosureDesign,
    server_power_w: float,
    base_rack: RackConfig = STANDARD_RACK,
) -> RackPacking:
    """Pack one rack with the given enclosure design.

    Switch cost and power scale with the number of 40-server groups so
    the per-server network share stays constant (conservative: denser
    packaging is not credited with cheaper networking).
    """
    if server_power_w < 0:
        raise ValueError("server power must be >= 0")
    groups = enclosure.systems_per_rack / base_rack.servers_per_rack
    return RackPacking(
        enclosure=enclosure,
        server_power_w=server_power_w,
        switch_rack_power_w=base_rack.switch_rack_power_w * groups,
        switch_rack_cost_usd=base_rack.switch_rack_cost_usd * groups,
    )
