"""Core analysis layer: metrics, efficiency tables, and unified designs.

- :mod:`~repro.core.metrics` -- Perf/W, Perf/Inf-$, Perf/P&C-$ and
  Perf/TCO-$ metrics with harmonic-mean aggregation (paper section 2.2).
- :mod:`~repro.core.efficiency` -- relative-to-baseline efficiency tables
  in the format of Figure 2(c).
- :mod:`~repro.core.designs` -- complete server designs combining a
  platform, a cost bill, packaging/cooling, memory sharing, and storage;
  includes the unified N1 and N2 designs of section 3.6.
- :mod:`~repro.core.analysis` -- the "putting it all together" evaluation
  that scores designs against baselines.
"""

from repro.core.metrics import (
    EfficiencyMetrics,
    harmonic_mean,
    relative_efficiency,
)
from repro.core.efficiency import EfficiencyTable, build_efficiency_tables
from repro.core.designs import (
    BaselineDesign,
    UnifiedDesign,
    baseline_design,
    n1_design,
    n2_design,
)
from repro.core.analysis import DesignEvaluation, evaluate_designs

__all__ = [
    "EfficiencyMetrics",
    "harmonic_mean",
    "relative_efficiency",
    "EfficiencyTable",
    "build_efficiency_tables",
    "BaselineDesign",
    "UnifiedDesign",
    "baseline_design",
    "n1_design",
    "n2_design",
    "DesignEvaluation",
    "evaluate_designs",
]
