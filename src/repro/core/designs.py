"""Complete server designs, including the unified N1 and N2 (section 3.6).

A design bundles everything needed to evaluate Perf/TCO-$:

- a *platform* (performance model) and a *bill* (cost/power model),
- an *enclosure* (packaging/cooling: fan power/cost factor and rack
  density),
- an optional *memory-provisioning scheme* (section 3.4) with its assumed
  slowdown, and
- an optional *disk configuration* (section 3.5) with its simulator disk
  model.

The two unified designs:

- **N1** (near-term): mobile blades (mobl) in dual-entry enclosures with
  directed airflow.  No memory sharing or flash caching.
- **N2** (longer-term): embedded blades (emb1) as aggregated-cooling
  microblades, with dynamic memory-blade provisioning and remote
  low-power disks behind flash caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cooling.enclosure import (
    AGGREGATED_MICROBLADE,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
    EnclosureDesign,
)
from repro.cooling.rack import pack_rack
from repro.costmodel.catalog import server_bill
from repro.costmodel.components import Component, ComponentSpec, ServerBill
from repro.costmodel.power import PowerModel
from repro.costmodel.rack import RackConfig, STANDARD_RACK
from repro.costmodel.tco import TcoBreakdown, TcoModel
from repro.flashcache.analysis import DiskConfiguration, disk_configuration
from repro.memsim.provisioning import (
    ASSUMED_SLOWDOWN,
    DYNAMIC_PROVISIONING,
    ProvisioningScheme,
    provisioned_memory_spec,
)
from repro.platforms.catalog import platform as _platform
from repro.platforms.platform import Platform

#: Fraction of the POWER_FANS component that is fans/heat sinks (the rest
#: is the power supply, which packaging changes do not shrink).
FAN_FRACTION = 0.5


@dataclass(frozen=True)
class BaselineDesign:
    """A stock Table 2 system in conventional 1U packaging."""

    name: str
    platform_name: str

    @property
    def platform(self) -> Platform:
        return _platform(self.platform_name)

    def bill(self) -> ServerBill:
        return server_bill(self.platform_name)

    def rack(self) -> RackConfig:
        return STANDARD_RACK

    @property
    def memory_slowdown(self) -> float:
        return 1.0

    def memory_slowdown_for(self, benchmark: str) -> float:
        """Per-benchmark slowdown multiplier (baselines never page)."""
        return 1.0

    def disk_model_for(self, workload_name: str):
        """Simulator disk model override (None = platform default)."""
        return None

    def tco_breakdown(self) -> TcoBreakdown:
        model = TcoModel(power_model=PowerModel(rack=self.rack()))
        return model.breakdown(self.bill())


@dataclass(frozen=True)
class UnifiedDesign:
    """A composed design: platform + packaging + memory + disk choices."""

    name: str
    platform_name: str
    enclosure: EnclosureDesign
    memory_scheme: Optional[ProvisioningScheme] = None
    disk_config: Optional[DiskConfiguration] = None
    description: str = ""
    #: Measure the paging slowdown per benchmark from its exact-LRU
    #: miss-ratio curve instead of assuming the paper's uniform 2%.
    measured_memory: bool = False

    @property
    def platform(self) -> Platform:
        return _platform(self.platform_name)

    @property
    def memory_slowdown(self) -> float:
        """Uniform CPU slowdown from remote-memory paging (paper: 2%)."""
        return 1.0 + ASSUMED_SLOWDOWN if self.memory_scheme else 1.0

    def memory_slowdown_for(self, benchmark: str) -> float:
        """Per-benchmark slowdown multiplier.

        Default: the paper's assumed uniform slowdown.  With
        ``measured_memory`` set, benchmarks that have a page-trace spec
        use the slowdown measured off their memoized LRU miss-ratio
        curve at this scheme's local fraction (exact-LRU lower bracket,
        PCIe x4 latency); benchmarks without a trace keep the assumed
        value.
        """
        if self.memory_scheme is None:
            return 1.0
        if not self.measured_memory:
            return self.memory_slowdown
        from repro.memsim.trace import WORKLOAD_TRACES
        from repro.memsim.twolevel import measured_slowdown

        if benchmark not in WORKLOAD_TRACES:
            return self.memory_slowdown
        return 1.0 + measured_slowdown(
            benchmark, self.memory_scheme.local_fraction
        )

    def disk_model_for(self, workload_name: str):
        if self.disk_config is None:
            return None
        return self.disk_config.make_disk_model(workload_name)

    def bill(self) -> ServerBill:
        """Base bill with packaging, memory, and disk deltas applied."""
        bill = server_bill(self.platform_name)
        overrides = {}

        # Packaging: the fan share of POWER_FANS shrinks with cooling
        # efficiency (fewer/smaller fans, shared heat sinks).
        fan_factor = self.enclosure.fan_power_factor(CONVENTIONAL_ENCLOSURE)
        pf = bill.components[Component.POWER_FANS]
        scale = (1.0 - FAN_FRACTION) + FAN_FRACTION * fan_factor
        overrides["power_fans"] = ComponentSpec(
            cost_usd=pf.cost_usd * scale, power_w=pf.power_w * scale
        )

        if self.memory_scheme is not None:
            overrides["memory"] = provisioned_memory_spec(
                bill.components[Component.MEMORY], self.memory_scheme
            )

        if self.disk_config is not None:
            overrides["disk"] = self.disk_config.disk_component()

        return bill.replace(name=self.name, **overrides)

    def rack(self) -> RackConfig:
        """Rack configuration at the enclosure's density."""
        return pack_rack(self.enclosure, self.bill().power_w).rack_config()

    def tco_breakdown(self) -> TcoBreakdown:
        model = TcoModel(power_model=PowerModel(rack=self.rack()))
        return model.breakdown(self.bill())


def baseline_design(platform_name: str) -> BaselineDesign:
    """A stock Table 2 system as a design (srvr1, srvr2, desk, ...)."""
    return BaselineDesign(name=platform_name, platform_name=platform_name)


def n1_design() -> UnifiedDesign:
    """N1: mobile blades + dual-entry enclosures with directed airflow."""
    return UnifiedDesign(
        name="N1",
        platform_name="mobl",
        enclosure=DUAL_ENTRY_ENCLOSURE,
        description=(
            "near-term: mobile blades in dual-entry enclosures with "
            "directed airflow; no memory sharing or flash caching"
        ),
    )


def n2_design() -> UnifiedDesign:
    """N2: embedded microblades + aggregated cooling + memory sharing +
    remote low-power disks with flash caching."""
    return UnifiedDesign(
        name="N2",
        platform_name="emb1",
        enclosure=AGGREGATED_MICROBLADE,
        memory_scheme=DYNAMIC_PROVISIONING,
        disk_config=disk_configuration("remote-laptop+flash"),
        description=(
            "longer-term: embedded microblades with aggregated cooling, "
            "dynamic memory-blade provisioning, and SAN laptop disks "
            "behind flash caches"
        ),
    )
