"""Relative efficiency tables in the format of Figure 2(c).

An :class:`EfficiencyTable` holds one metric block (e.g. Perf/TCO-$):
rows are benchmarks plus the harmonic-mean row, columns are systems, and
every cell is relative to the baseline system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.metrics import EfficiencyMetrics, harmonic_mean

#: Row label of the cross-benchmark aggregate.
HMEAN_ROW = "HMean"


@dataclass(frozen=True)
class EfficiencyTable:
    """One metric block: ``{benchmark: {system: value_relative_to_baseline}}``."""

    metric: str
    baseline: str
    cells: Dict[str, Dict[str, float]]

    @property
    def benchmarks(self) -> List[str]:
        return [row for row in self.cells if row != HMEAN_ROW]

    @property
    def systems(self) -> List[str]:
        first = next(iter(self.cells.values()))
        return list(first)

    def value(self, benchmark: str, system: str) -> float:
        return self.cells[benchmark][system]

    def hmean(self, system: str) -> float:
        return self.cells[HMEAN_ROW][system]

    def render(self, percent: bool = True) -> str:
        """Plain-text rendering in the style of the paper's tables."""
        systems = self.systems
        header = f"{self.metric:<12}" + "".join(f"{s:>11}" for s in systems)
        lines = [header]
        for bench, row in self.cells.items():
            cells = "".join(
                f"{row[s] * 100:>10.0f}%" if percent else f"{row[s]:>11.3f}"
                for s in systems
            )
            lines.append(f"{bench:<12}{cells}")
        return "\n".join(lines)


def build_efficiency_tables(
    metrics: Mapping[str, Mapping[str, EfficiencyMetrics]],
    baseline: str,
    metric_attributes: Mapping[str, str],
) -> Dict[str, EfficiencyTable]:
    """Build all metric blocks from per-(benchmark, system) metrics.

    ``metrics`` maps benchmark -> system -> :class:`EfficiencyMetrics`.
    ``metric_attributes`` maps display names (e.g. ``"Perf/TCO-$"``) to
    :class:`EfficiencyMetrics` property names.  Each block gets an HMean
    row: the harmonic mean of the per-benchmark relative values, matching
    the paper's aggregation.
    """
    benchmarks = list(metrics)
    if not benchmarks:
        raise ValueError("no benchmarks supplied")
    systems = list(next(iter(metrics.values())))

    tables: Dict[str, EfficiencyTable] = {}
    for metric_name, attribute in metric_attributes.items():
        cells: Dict[str, Dict[str, float]] = {}
        for bench in benchmarks:
            per_system = metrics[bench]
            base = getattr(per_system[baseline], attribute)
            if base <= 0:
                raise ValueError(
                    f"baseline {baseline} has non-positive {attribute} on {bench}"
                )
            cells[bench] = {
                system: getattr(per_system[system], attribute) / base
                for system in systems
            }
        cells[HMEAN_ROW] = {
            system: harmonic_mean(cells[bench][system] for bench in benchmarks)
            for system in systems
        }
        tables[metric_name] = EfficiencyTable(
            metric=metric_name, baseline=baseline, cells=cells
        )
    return tables
