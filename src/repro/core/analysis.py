"""Putting it all together: scoring designs against baselines.

``evaluate_designs`` runs the full pipeline for any set of designs
(baselines and unified designs alike): per-benchmark performance through
the simulator (or the analytic model), per-design cost/power through the
TCO model, then the four relative-efficiency tables of Figures 2(c) and
5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.designs import BaselineDesign, UnifiedDesign
from repro.core.efficiency import EfficiencyTable, build_efficiency_tables
from repro.core.metrics import METRIC_ATTRIBUTES, EfficiencyMetrics
from repro.perf.parallel import intra_jobs, pmap
from repro.simulator.performance import measure_performance
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import make_workload

Design = Union[BaselineDesign, UnifiedDesign]


def _measure_one(task: Tuple[Design, str, str, SimConfig]) -> float:
    """Module-level worker (picklable): score one (design, benchmark)."""
    design, bench, method, config = task
    workload = make_workload(bench)
    result = measure_performance(
        design.platform,
        workload,
        config=config,
        disk_model=design.disk_model_for(bench),
        memory_slowdown=design.memory_slowdown_for(bench),
        method=method,
    )
    return result.score


@dataclass
class DesignEvaluation:
    """All measurements for one design set."""

    designs: List[str]
    benchmarks: List[str]
    baseline: str
    #: benchmark -> design -> EfficiencyMetrics
    metrics: Dict[str, Dict[str, EfficiencyMetrics]]
    #: metric display name -> relative table
    tables: Dict[str, EfficiencyTable]

    def table(self, metric: str) -> EfficiencyTable:
        return self.tables[metric]

    def render(self, metrics: Optional[Sequence[str]] = None) -> str:
        names = list(metrics) if metrics is not None else list(self.tables)
        return "\n\n".join(self.tables[m].render() for m in names)


def evaluate_designs(
    designs: Sequence[Design],
    benchmarks: Iterable[str],
    baseline: str,
    method: str = "sim",
    config: SimConfig = SimConfig(),
    jobs: Optional[int] = None,
) -> DesignEvaluation:
    """Score every (design, benchmark) pair and build relative tables.

    The (benchmark, design) grid points are independent seeded runs, so
    with ``jobs > 1`` they are fanned out across worker processes and
    merged back in grid order -- scores are identical to the serial
    loop.  ``jobs=None`` uses the process-wide setting the CLI's
    ``--jobs`` installs (see :func:`repro.perf.parallel.set_intra_jobs`).
    """
    design_list = list(designs)
    names = [d.name for d in design_list]
    if baseline not in names:
        raise ValueError(f"baseline {baseline!r} not among designs {names}")
    bench_list = list(benchmarks)

    cost_inputs = {}
    for design in design_list:
        breakdown = design.tco_breakdown()
        cost_inputs[design.name] = (
            breakdown.consumed_power_w,
            breakdown.hardware_total_usd,
            breakdown.power_cooling_total_usd,
        )

    if jobs is None:
        jobs = intra_jobs()
    tasks = [
        (design, bench, method, config)
        for bench in bench_list
        for design in design_list
    ]
    scores = pmap(_measure_one, tasks, jobs=jobs)

    metrics: Dict[str, Dict[str, EfficiencyMetrics]] = {}
    grid = iter(scores)
    for bench in bench_list:
        per_design: Dict[str, EfficiencyMetrics] = {}
        for design in design_list:
            score = next(grid)
            power_w, inf_usd, pc_usd = cost_inputs[design.name]
            per_design[design.name] = EfficiencyMetrics(
                system=design.name,
                benchmark=bench,
                performance=score,
                power_w=power_w,
                infrastructure_usd=inf_usd,
                power_cooling_usd=pc_usd,
            )
        metrics[bench] = per_design

    tables = build_efficiency_tables(metrics, baseline, METRIC_ATTRIBUTES)
    return DesignEvaluation(
        designs=names,
        benchmarks=bench_list,
        baseline=baseline,
        metrics=metrics,
        tables=tables,
    )
