"""Performance/cost/power metrics (paper section 2.2).

The key metric for internet-sector environments is sustainable performance
per total cost of ownership (Perf/TCO-$).  The paper also reports
performance per watt (Perf/W), per infrastructure dollar (Perf/Inf-$), and
per power-and-cooling dollar (Perf/P&C-$).  Averages across benchmarks use
the harmonic mean of throughputs and reciprocal execution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; the paper's cross-benchmark aggregate.

    Raises ``ValueError`` on an empty input or non-positive values (a
    harmonic mean of a zero throughput is undefined).
    """
    items = list(values)
    if not items:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("harmonic mean requires positive values")
    return len(items) / sum(1.0 / v for v in items)


@dataclass(frozen=True)
class EfficiencyMetrics:
    """All four paper metrics for one (system, benchmark) pair."""

    system: str
    benchmark: str
    #: Performance score: RPS, or 1/execution-time for batch jobs.
    performance: float
    #: Average consumed power, watts (including per-server switch share).
    power_w: float
    #: Infrastructure (hardware) cost, dollars, including rack share.
    infrastructure_usd: float
    #: Burdened 3-year power-and-cooling cost, dollars.
    power_cooling_usd: float

    def __post_init__(self) -> None:
        if self.performance < 0:
            raise ValueError("performance must be >= 0")
        for name in ("power_w", "infrastructure_usd", "power_cooling_usd"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def tco_usd(self) -> float:
        """Total cost of ownership over the depreciation cycle."""
        return self.infrastructure_usd + self.power_cooling_usd

    @property
    def perf_per_watt(self) -> float:
        return self.performance / self.power_w

    @property
    def perf_per_inf_usd(self) -> float:
        return self.performance / self.infrastructure_usd

    @property
    def perf_per_pc_usd(self) -> float:
        return self.performance / self.power_cooling_usd

    @property
    def perf_per_tco_usd(self) -> float:
        return self.performance / self.tco_usd


#: The metric columns of Figure 2(c), by attribute name.
METRIC_ATTRIBUTES: Dict[str, str] = {
    "Perf": "performance",
    "Perf/Inf-$": "perf_per_inf_usd",
    "Perf/W": "perf_per_watt",
    "Perf/P&C-$": "perf_per_pc_usd",
    "Perf/TCO-$": "perf_per_tco_usd",
}


def relative_efficiency(
    metrics: Mapping[str, EfficiencyMetrics],
    baseline: str,
    attribute: str,
) -> Dict[str, float]:
    """Ratio of one metric attribute to the baseline system's.

    ``metrics`` maps system name to :class:`EfficiencyMetrics` (all for
    the same benchmark); ``attribute`` is an :class:`EfficiencyMetrics`
    property name such as ``"perf_per_tco_usd"``.
    """
    if baseline not in metrics:
        raise KeyError(f"baseline {baseline!r} not in metrics")
    base_value = getattr(metrics[baseline], attribute)
    if base_value <= 0:
        raise ValueError(f"baseline {attribute} must be positive")
    return {
        system: getattr(m, attribute) / base_value for system, m in metrics.items()
    }
