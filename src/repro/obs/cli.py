"""The ``repro-trace`` command: trace cluster runs and export the spans.

Examples::

    repro-trace --measure 400 --chrome traces.json --jsonl spans.jsonl
    repro-trace N2 --sample-rate 0.1 --metrics
    repro-trace srvr1 --no-faults --measure 200 --validate
    python -m repro.obs.cli --jobs 3 --chrome traces.json

Runs the section 3.6 designs (default: srvr1, N1, N2) through the
cluster simulator with per-request tracing enabled -- by default under
the accelerated fault profile and full degradation stack, the EXT-11
configuration -- prints each design's critical-path attribution table
and trace digest, and optionally writes the spans as a Chrome
trace-event file (loadable in Perfetto / ``chrome://tracing``) and as a
compact JSONL span log.

Everything is deterministic per seed: rerunning with the same arguments
reproduces the printed digests and the exported files byte-for-byte,
regardless of ``--jobs``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.critical_path import attribute_critical_path, format_attribution
from repro.obs.export import (
    chrome_trace,
    trace_digest,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.perf.parallel import merge_telemetry, pmap

_DESIGNS = ("srvr1", "N1", "N2")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace the unified-design clusters and export spans.",
    )
    parser.add_argument(
        "designs",
        nargs="*",
        default=list(_DESIGNS),
        help=f"designs to run (default: {' '.join(_DESIGNS)})",
    )
    parser.add_argument("--servers", type=int, default=6)
    parser.add_argument("--clients", type=int, default=6,
                        help="clients per server")
    parser.add_argument("--warmup", type=int, default=200,
                        help="warmup completions discarded per run")
    parser.add_argument("--measure", type=int, default=1800,
                        help="measured completions per run")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fault-seed", type=int, default=7)
    parser.add_argument("--sample-rate", type=float, default=1.0,
                        help="head-based sampling probability [0, 1]")
    parser.add_argument("--trace-seed", type=int, default=17,
                        help="sampling hash seed (decorrelates sampling)")
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="healthy runs (no fault injection or retry stack)",
    )
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (one design each)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a Chrome trace-event JSON file")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the compact span JSONL log")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the Chrome trace document (CI smoke gate)",
    )
    parser.add_argument("--metrics", action="store_true",
                        help="print the labeled metrics registry")
    args = parser.parse_args(argv)

    # Imported here so ``repro-trace --help`` stays instant and the obs
    # package never hard-depends on the experiments layer.
    from repro.experiments.trace_attribution import (
        TraceRunConfig,
        run_traced_design,
    )

    unknown = [d for d in args.designs if d not in _DESIGNS]
    if unknown:
        parser.error(
            f"unknown design(s) {', '.join(unknown)}; "
            f"choose from {', '.join(_DESIGNS)}"
        )
    configs = [
        TraceRunConfig(
            design=name,
            servers=args.servers,
            clients_per_server=args.clients,
            warmup=args.warmup,
            measure=args.measure,
            seed=args.seed,
            fault_seed=args.fault_seed,
            sample_rate=args.sample_rate,
            trace_seed=args.trace_seed,
            faults=not args.no_faults,
        )
        for name in args.designs
    ]
    payloads = pmap(run_traced_design, configs, jobs=args.jobs)

    groups = [(p["design"], p["tracer"].traces) for p in payloads]
    for payload in payloads:
        name = payload["design"]
        tracer = payload["tracer"]
        completed = tracer.completed_traces()
        print(f"=== {name} ===")
        print(
            f"requests={tracer.requests_seen} traces={len(tracer.traces)} "
            f"completed={len(completed)} "
            f"digest={trace_digest([(name, tracer.traces)])[:16]}"
        )
        result = payload["result"]
        print(
            f"{result.per_server_rps:.1f} rps/server, "
            f"p95 {result.qos_percentile_ms:.0f} ms, "
            f"p99 {result.p99_ms:.0f} ms"
        )
        print(format_attribution(attribute_critical_path(completed)))
        if args.metrics:
            print(payload["metrics"].render())
        print()

    if args.metrics and len(payloads) > 1:
        combined = merge_telemetry(p["metrics"] for p in payloads)
        print("=== combined (all designs, lossless merge) ===")
        print(combined.render())
        print()

    if args.jsonl:
        write_spans_jsonl(groups, args.jsonl)
        print(f"wrote span log: {args.jsonl}")
    if args.chrome:
        write_chrome_trace(groups, args.chrome)
        print(f"wrote Chrome trace: {args.chrome}")
    if args.validate:
        if args.chrome:
            with open(args.chrome, encoding="utf-8") as handle:
                document = json.load(handle)
        else:
            document = chrome_trace(groups)
        problems = validate_chrome_trace(document)
        if problems:
            for problem in problems:
                print(f"invalid Chrome trace: {problem}", file=sys.stderr)
            return 1
        print("Chrome trace document is valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
