"""The span model for per-request distributed tracing.

A *trace* is one request's journey through the simulated serving stack,
from balancer admission to completion.  It is a tree of *spans*: typed,
timestamped intervals with parent/child links.  Span kinds name the
component that owned the interval (CPU, memory channel, remote-memory
blade, flash, disk, NIC), or a control-plane activity (queueing, retry
backoff, load shedding).

Spans carry a ``critical`` flag: the subset of spans marked critical
forms the *critical path* -- the chain of intervals that actually
delayed the request's completion.  Losing hedge attempts and timed-out
attempts still appear in the trace (their work is real and visible in
the Chrome-trace export) but are excluded from critical-path
attribution so tail latency is never double-counted.

Everything here is a plain accumulator: no clocks, no randomness, no
simulation imports.  The simulators drive it with their own simulated
timestamps, which keeps tracing deterministic per seed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class SpanKind:
    """Well-known span types (plain strings, open set).

    ``QUEUE``/``CPU``/``MEM``/``REMOTE_MEM``/``FLASH``/``DISK``/``NET``
    are component time; ``RETRY`` covers backoff waits and abandoned
    attempt waits (timeouts); ``SHED`` marks zero-duration drop events;
    ``ATTEMPT`` groups one dispatch attempt; ``REQUEST`` is the root.
    """

    REQUEST = "request"
    ATTEMPT = "attempt"
    QUEUE = "queue"
    CPU = "cpu"
    MEM = "mem"
    REMOTE_MEM = "remote_mem"
    FLASH = "flash"
    DISK = "disk"
    NET = "net"
    RETRY = "retry"
    SHED = "shed"
    #: Background redundancy-rebuild traffic on a shared link (kept out
    #: of COMPONENTS: rebuild streams are not request time; foreground
    #: spans delayed by rebuild carry a ``rebuild=True`` attribute).
    REBUILD = "rebuild"

    #: Component kinds a critical-path table reports time against.
    COMPONENTS = (QUEUE, CPU, MEM, REMOTE_MEM, FLASH, DISK, NET, RETRY)


class Span:
    """One timed interval in a trace (slotted: thousands per run)."""

    __slots__ = (
        "span_id", "parent_id", "kind", "name", "start_ms", "end_ms",
        "critical", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        kind: str,
        name: str,
        start_ms: float,
        critical: bool = True,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start_ms = start_ms
        #: ``None`` while open; set by :meth:`Trace.finish`.
        self.end_ms: Optional[float] = None
        self.critical = critical
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration_ms(self) -> float:
        """Span duration (0.0 while still open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (lazily allocates the dict)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.span_id} {self.kind}:{self.name} "
            f"[{self.start_ms:.3f}, {self.end_ms}] critical={self.critical})"
        )


class Trace:
    """One sampled request's span tree, under construction or finished.

    The first span started is the root.  Span ids are assigned
    sequentially per trace, so identical runs produce byte-identical
    serialized traces.
    """

    __slots__ = ("trace_id", "spans", "_next_id", "status")

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self._next_id = 0
        #: Terminal status ("ok", "gave_up", "shed", "truncated"...);
        #: ``None`` while the request is still in flight.
        self.status: Optional[str] = None

    # -- construction -------------------------------------------------

    def start(
        self,
        kind: str,
        now_ms: float,
        parent: Optional[Span] = None,
        name: Optional[str] = None,
        critical: bool = True,
    ) -> Span:
        """Open a span at ``now_ms`` under ``parent`` (root if None)."""
        if parent is None and self.spans:
            parent_id: Optional[int] = self.spans[0].span_id
        else:
            parent_id = parent.span_id if parent is not None else None
        span = Span(
            self._next_id, parent_id, kind, name or kind, now_ms, critical
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    @staticmethod
    def finish(span: Span, now_ms: float) -> Span:
        """Close ``span`` at ``now_ms``."""
        span.end_ms = now_ms
        return span

    def event(
        self,
        kind: str,
        now_ms: float,
        parent: Optional[Span] = None,
        name: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record a zero-duration event span (e.g. a shed decision)."""
        span = self.start(kind, now_ms, parent=parent, name=name)
        span.end_ms = now_ms
        if attrs:
            span.annotate(**attrs)
        return span

    def close(self, now_ms: float, status: str = "ok") -> None:
        """Finish the root span and mark the trace terminal.

        Any non-root span still open -- a losing hedge attempt still in
        flight, an attempt stranded on a crashed server -- is cut off at
        ``now_ms`` and demoted to non-critical: its work did not gate
        this completion, and leaving it open would wrongly mark the
        whole trace truncated.
        """
        if self.status is not None:
            return
        self.status = status
        root = self.root
        for span in self.spans:
            if span.end_ms is None:
                span.end_ms = now_ms
                if span is not root:
                    span.critical = False
                    span.annotate(cut_off=True)

    # -- inspection ---------------------------------------------------

    @property
    def root(self) -> Optional[Span]:
        return self.spans[0] if self.spans else None

    @property
    def duration_ms(self) -> float:
        """End-to-end latency of the request (root span duration)."""
        root = self.root
        return root.duration_ms if root is not None else 0.0

    @property
    def complete(self) -> bool:
        """Closed with every span finished (safe for attribution)."""
        return self.status is not None and all(
            s.end_ms is not None for s in self.spans
        )

    def children_of(self, span: Span) -> Iterator[Span]:
        for candidate in self.spans:
            if candidate.parent_id == span.span_id:
                yield candidate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(id={self.trace_id}, spans={len(self.spans)}, "
            f"status={self.status!r})"
        )
