"""Labeled metrics registry backed by the telemetry accumulators.

Components register named, labeled instruments instead of growing
ad-hoc counter fields:

- :class:`Counter` -- monotonically increasing float;
- :class:`Gauge` -- last-written value (merge takes the max);
- histograms -- :class:`~repro.simulator.telemetry.LatencyHistogram`;
- series -- :class:`~repro.simulator.telemetry.TimeSeries`.

Instruments are keyed on ``(name, sorted labels)``; asking for the same
key returns the same instrument, so independent components naturally
accumulate into shared metrics.  :meth:`MetricsRegistry.merge` folds a
second registry in (the ``--jobs N`` per-worker pattern: each worker
fills its own registry, the parent merges them in request order), using
the lossless ``merge()`` of the underlying accumulators -- mismatched
histogram/series configurations raise rather than silently degrade.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.simulator.telemetry import LatencyHistogram, TimeSeries

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-written value (e.g. peak queue depth, final utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Counters, gauges, histograms, and time series keyed on (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Any] = {}

    # -- registration -------------------------------------------------

    def _get_or_create(self, name: str, labels: Dict[str, Any], factory, kind):
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = factory()
            self._metrics[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(self, name: str, **labels: Any) -> LatencyHistogram:
        return self._get_or_create(
            name, labels, LatencyHistogram, LatencyHistogram
        )

    def series(
        self, name: str, bucket_ms: float = 500.0, **labels: Any
    ) -> TimeSeries:
        return self._get_or_create(
            name, labels, lambda: TimeSeries(bucket_ms=bucket_ms), TimeSeries
        )

    # -- inspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterator[Tuple[str, Dict[str, str], Any]]:
        """(name, labels, instrument) in sorted key order."""
        for (name, labels) in sorted(self._metrics):
            yield name, dict(labels), self._metrics[(name, labels)]

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The registered instrument, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def find(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """Every ``(labels, instrument)`` registered under ``name``.

        Sorted by label key, so iteration order is deterministic.  This
        is the label-enumeration query the per-server instruments need
        ("give me ``cluster.attempt_ms`` for *every* server") that
        :meth:`get` -- which requires the exact label set -- cannot
        answer.
        """
        return [
            (dict(labels), self._metrics[(metric_name, labels)])
            for (metric_name, labels) in sorted(self._metrics)
            if metric_name == name
        ]

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Scalar value of a counter/gauge (None if unregistered)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return None
        if not isinstance(instrument, (Counter, Gauge)):
            raise TypeError(f"metric {name!r} is not a scalar instrument")
        return instrument.value

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-friendly dump of every instrument's current state."""
        out: List[Dict[str, Any]] = []
        for name, labels, instrument in self.items():
            entry: Dict[str, Any] = {"name": name, "labels": labels}
            if isinstance(instrument, Counter):
                entry["type"] = "counter"
                entry["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                entry["type"] = "gauge"
                entry["value"] = instrument.value
            elif isinstance(instrument, LatencyHistogram):
                entry["type"] = "histogram"
                entry["count"] = instrument.count
                entry["mean_ms"] = instrument.mean_ms
                entry["max_ms"] = instrument.max_ms
                entry["p50_ms"] = instrument.percentile_ms(0.50, default=None)
                entry["p95_ms"] = instrument.percentile_ms(0.95, default=None)
                entry["p99_ms"] = instrument.percentile_ms(0.99, default=None)
            elif isinstance(instrument, TimeSeries):
                entry["type"] = "series"
                entry["bucket_ms"] = instrument.bucket_ms
                entry["points"] = instrument.series()
            else:  # pragma: no cover - defensive
                entry["type"] = type(instrument).__name__
            out.append(entry)
        return out

    def render(self) -> str:
        """Plain-text dump (one line per instrument) for CLI output."""
        lines = []
        for entry in self.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in entry["labels"].items())
            label_text = f"{{{labels}}}" if labels else ""
            if entry["type"] in ("counter", "gauge"):
                body = f"{entry['value']:g}"
            elif entry["type"] == "histogram":
                p99 = entry["p99_ms"]
                body = (
                    f"count={entry['count']} mean={entry['mean_ms']:.2f}ms "
                    f"p99={'n/a' if p99 is None else f'{p99:.2f}ms'}"
                )
            else:
                body = f"buckets={len(entry.get('points', []))}"
            lines.append(f"{entry['name']}{label_text} {body}")
        return "\n".join(lines)

    # -- combination --------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (lossless; returns self).

        Counters add, gauges keep the max, histograms and series merge
        via their lossless ``merge()`` (raising on mismatched bucket
        configuration, never silently rebinning).
        """
        for (name, labels), theirs in sorted(other._metrics.items()):
            key = (name, labels)
            mine = self._metrics.get(key)
            if mine is None:
                # New key: adopt a deep copy so later merges into either
                # registry cannot alias the same accumulator.
                self._metrics[key] = copy.deepcopy(theirs)
                continue
            if type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} vs {type(theirs).__name__}"
                )
            if isinstance(mine, Counter):
                mine.value += theirs.value
            elif isinstance(mine, Gauge):
                mine.value = max(mine.value, theirs.value)
            else:
                mine.merge(theirs)
        return self
