"""Trace exporters: compact JSONL span logs and Chrome trace-event JSON.

Two formats, both deterministic byte-for-byte given the same traces:

- **span JSONL** -- one JSON object per span (trace id, span id, parent,
  kind, timestamps, critical flag, attributes), sorted keys, one line
  per span in creation order.  :func:`trace_digest` hashes this form,
  which is what the determinism tests compare across seeds and
  ``--jobs`` widths.
- **Chrome trace-event JSON** -- the ``{"traceEvents": [...]}`` format
  Perfetto and ``chrome://tracing`` load directly.  Each trace group
  (e.g. one design) becomes a process, each trace a thread, spans become
  complete (``"ph": "X"``) events and zero-duration spans become instant
  (``"ph": "i"``) events.  Timestamps are microseconds, as the format
  requires.

:func:`validate_chrome_trace` is the minimal schema check the CI
``trace-smoke`` job runs against the emitted file.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.span import Trace

#: ``(label, traces)`` groups; each label becomes one Chrome "process".
TraceGroups = Sequence[Tuple[str, Sequence[Trace]]]


def span_records(
    traces: Iterable[Trace], group: Optional[str] = None
) -> Iterable[Dict[str, Any]]:
    """Flat JSON-friendly span records in deterministic order."""
    for trace in traces:
        for span in trace.spans:
            record: Dict[str, Any] = {
                "trace_id": trace.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "kind": span.kind,
                "name": span.name,
                "start_ms": span.start_ms,
                "end_ms": span.end_ms,
                "critical": span.critical,
                "status": trace.status,
            }
            if group is not None:
                record["group"] = group
            if span.attrs:
                record["attrs"] = span.attrs
            yield record


def spans_jsonl(groups: TraceGroups) -> str:
    """The compact span log: one sorted-key JSON object per line."""
    lines = []
    for label, traces in groups:
        for record in span_records(traces, group=label):
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
    return "\n".join(lines) + ("\n" if lines else "")


def trace_digest(groups: TraceGroups) -> str:
    """SHA-256 of the span JSONL -- the determinism-test fingerprint."""
    return hashlib.sha256(spans_jsonl(groups).encode("utf-8")).hexdigest()


def write_spans_jsonl(groups: TraceGroups, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_jsonl(groups))
    return path


def chrome_trace(groups: TraceGroups) -> Dict[str, Any]:
    """The Chrome trace-event document for ``groups``.

    Loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: every group is a process (named via a metadata
    event), every trace a thread, every span a complete event with its
    kind as the category; zero-duration spans render as instant events.
    """
    events: List[Dict[str, Any]] = []
    for pid, (label, traces) in enumerate(groups, start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for trace in traces:
            tid = trace.trace_id
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"request {trace.trace_id}"},
                }
            )
            for span in trace.spans:
                args: Dict[str, Any] = {
                    "span_id": span.span_id,
                    "critical": span.critical,
                }
                if span.attrs:
                    args.update(span.attrs)
                start_us = span.start_ms * 1000.0
                end_ms = span.end_ms if span.end_ms is not None else span.start_ms
                duration_us = (end_ms - span.start_ms) * 1000.0
                if duration_us <= 0.0:
                    events.append(
                        {
                            "name": span.name,
                            "cat": span.kind,
                            "ph": "i",
                            "s": "t",
                            "ts": start_us,
                            "pid": pid,
                            "tid": tid,
                            "args": args,
                        }
                    )
                else:
                    events.append(
                        {
                            "name": span.name,
                            "cat": span.kind,
                            "ph": "X",
                            "ts": start_us,
                            "dur": duration_us,
                            "pid": pid,
                            "tid": tid,
                            "args": args,
                        }
                    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(groups: TraceGroups, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(groups), handle, sort_keys=True)
        handle.write("\n")
    return path


#: Keys required on every non-metadata trace event, by phase.
_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ts", "s", "pid", "tid"),
    "M": ("name", "pid", "args"),
}


def validate_chrome_trace(document: Any) -> List[str]:
    """Minimal schema check of a Chrome trace-event document.

    Returns a list of human-readable problems (empty = valid).  Checks
    the envelope, the per-phase required keys, and that timestamps and
    durations are non-negative numbers -- enough to guarantee Perfetto
    will load the file, without chasing the full (enormous) spec.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        for key in required:
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0
            ):
                problems.append(f"{where}: {key} must be a number >= 0")
    return problems
