"""Per-request tracer with deterministic head-based sampling.

The :class:`Tracer` is the object the simulators accept: it decides per
request id whether to record a trace (head-based sampling, so the whole
span tree either exists or doesn't), hands out :class:`~repro.obs.span.Trace`
recorders, and collects finished traces for analysis and export.

Two properties matter for the reproduction pipeline:

- **determinism** -- the sampling decision is a pure hash of
  ``(request_id, seed)``; no RNG state is consumed, so a traced run
  produces bit-identical simulation results to an untraced one, and two
  runs with the same seed produce byte-identical span logs;
- **bounded overhead** -- with ``sample_rate=0.0`` the per-request cost
  is one attribute load and one comparison, and the instrumented hot
  paths guard every further touch behind ``trace is not None``, so the
  zero-sampling path stays within the ``trace_overhead`` benchmark's
  budget (see ``repro-bench``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.obs.span import Span, SpanKind, Trace

_MASK64 = (1 << 64) - 1

#: Ignore queue gaps shorter than this (float noise), ms.
_GAP_EPS_MS = 1e-9


def _hash01(request_id: int, seed: int) -> float:
    """SplitMix64-style hash of (request_id, seed) into [0, 1)."""
    x = (request_id * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / float(1 << 64)


def record_stage(
    trace: Trace,
    parent: Optional[Span],
    cursor_ms: float,
    now_ms: float,
    kind: str,
    service_ms: float,
    name: Optional[str] = None,
) -> Span:
    """Record one completed service stage, retroactively.

    The simulators' FCFS resources serve contiguously once started, so
    at the stage-completion callback the service interval is exactly
    ``[now - service, now]`` -- no hot-path hook at service start is
    needed.  ``cursor_ms`` is where the previous stage ended; any gap up
    to the service start was time spent waiting in the resource's queue
    and is recorded as a ``queue`` span.  Returns the stage span; the
    caller advances its cursor to ``now_ms``.
    """
    start = now_ms - service_ms
    if start < cursor_ms:
        start = cursor_ms
    if start - cursor_ms > _GAP_EPS_MS:
        Trace.finish(
            trace.start(SpanKind.QUEUE, cursor_ms, parent=parent, name="queue"),
            start,
        )
    span = trace.start(kind, start, parent=parent, name=name)
    span.end_ms = now_ms
    return span


def record_stage_parts(
    trace: Trace,
    parent: Optional[Span],
    cursor_ms: float,
    now_ms: float,
    parts: Sequence[Tuple[str, str, float]],
    total_ms: float,
) -> None:
    """Like :func:`record_stage` for a stage made of typed pieces.

    ``parts`` are ``(span kind, label, ms)`` tuples (a disk model's
    ``service_components``) served back to back inside the stage's
    contiguous service interval, e.g. a flash hit followed by nothing,
    or a miss's backing-disk read.
    """
    start = now_ms - total_ms
    if start < cursor_ms:
        start = cursor_ms
    if start - cursor_ms > _GAP_EPS_MS:
        Trace.finish(
            trace.start(SpanKind.QUEUE, cursor_ms, parent=parent, name="queue"),
            start,
        )
    at = start
    for kind, label, ms in parts:
        if ms <= 0.0:
            continue
        span = trace.start(kind, at, parent=parent, name=label)
        span.end_ms = at + ms
        at += ms


class Tracer:
    """Samples requests and collects their span trees.

    ``sample_rate`` is the head-based sampling probability; ``seed``
    decorrelates the sampled subset from the simulation seed without
    touching any RNG stream.  Finished (and, after :meth:`finalize`,
    truncated) traces accumulate in :attr:`traces` in request-id issue
    order.
    """

    def __init__(self, sample_rate: float = 1.0, seed: int = 0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self.seed = seed
        self.traces: List[Trace] = []
        #: Requests that consulted the sampler (traced or not).
        self.requests_seen = 0

    def sampled(self, request_id: int) -> bool:
        """Deterministic head-based sampling decision for one request."""
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return _hash01(request_id, self.seed) < rate

    def begin(
        self,
        request_id: int,
        now_ms: float,
        name: str = "request",
        kind: str = SpanKind.REQUEST,
    ) -> Optional[Trace]:
        """Start a trace for ``request_id`` if it is sampled, else None."""
        self.requests_seen += 1
        if not self.sampled(request_id):
            return None
        trace = Trace(request_id)
        trace.start(kind, now_ms, name=name)
        self.traces.append(trace)
        return trace

    def finalize(self, now_ms: float) -> None:
        """Close every still-open trace/span at the end of a run.

        In-flight requests at simulation stop (and attempts stranded on
        a crashed server) leave open spans; they are closed at ``now_ms``
        and the trace is marked ``truncated`` so attribution skips it.
        """
        for trace in self.traces:
            open_spans = [s for s in trace.spans if s.end_ms is None]
            if trace.status is None or open_spans:
                for span in open_spans:
                    span.end_ms = now_ms
                    span.annotate(truncated=True)
                if trace.status is None:
                    trace.close(now_ms, status="truncated")
                else:
                    trace.status = "truncated"

    def completed_traces(self) -> List[Trace]:
        """Traces that closed normally (attribution's input)."""
        return [
            t for t in self.traces if t.complete and t.status != "truncated"
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(rate={self.sample_rate}, seed={self.seed}, "
            f"traces={len(self.traces)})"
        )
