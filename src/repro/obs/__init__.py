"""repro.obs -- observability for the simulated serving stack.

Per-request distributed tracing (:class:`Tracer`, :class:`Trace`,
:class:`Span`), a labeled metrics registry (:class:`MetricsRegistry`),
critical-path tail-latency attribution
(:func:`attribute_critical_path`), and deterministic exporters
(span JSONL and Chrome trace-event JSON, see :mod:`repro.obs.export`).

The simulators accept an optional ``tracer``/``metrics`` pair; passing
neither leaves behaviour and performance unchanged (the ``trace_overhead``
benchmark in ``repro-bench`` gates this).  Tracing never consumes RNG
state, so traced and untraced runs of the same seed produce identical
simulation results.
"""

from repro.obs.critical_path import (
    COMPONENT_ORDER,
    OTHER,
    Attribution,
    attribute_critical_path,
    exclusive_times,
    format_attribution,
)
from repro.obs.export import (
    chrome_trace,
    spans_jsonl,
    trace_digest,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.span import Span, SpanKind, Trace
from repro.obs.tracer import Tracer

__all__ = [
    "Attribution",
    "COMPONENT_ORDER",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "OTHER",
    "Span",
    "SpanKind",
    "Trace",
    "Tracer",
    "attribute_critical_path",
    "chrome_trace",
    "exclusive_times",
    "format_attribution",
    "spans_jsonl",
    "trace_digest",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
