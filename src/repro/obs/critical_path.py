"""Critical-path decomposition of traced request latency.

Walks one trace's span tree along its *critical* spans and charges every
millisecond of end-to-end latency to exactly one component kind:

- a span's **exclusive time** is its duration minus the duration of its
  critical children (losing hedge attempts and timed-out attempts are
  marked non-critical by the instrumentation, so concurrent wasted work
  is never double-counted);
- exclusive time is attributed to the span's kind (queue, cpu,
  remote_mem, flash, disk, net, retry, ...);
- whatever the root's critical children do not cover -- dispatch
  decisions, hedge waits before the winning attempt started -- lands in
  the ``other`` bucket.

By construction the per-kind exclusive times of one trace sum *exactly*
to its end-to-end latency (the property test in
``tests/obs/test_critical_path.py`` holds this to float tolerance), so
the aggregated attribution shares always total 100%.

Aggregation answers the paper-level question "what fraction of this
design's p99 is the memory blade?": for each requested percentile the
traces at or beyond that latency are averaged per component, giving a
p50/p95/p99 attribution table per design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.obs.span import Span, SpanKind, Trace

#: Kind charged with root-exclusive time (uninstrumented gaps).
OTHER = "other"

#: Canonical row order of attribution tables.
COMPONENT_ORDER: Tuple[str, ...] = SpanKind.COMPONENTS + (OTHER,)


def exclusive_times(trace: Trace) -> Dict[str, float]:
    """Per-kind exclusive milliseconds along the trace's critical path.

    The returned values sum to ``trace.duration_ms`` exactly (up to
    float rounding): every span contributes its duration minus its
    critical children's, and the root's own kind is reported as
    ``other`` so structural spans never masquerade as component time.
    """
    root = trace.root
    if root is None:
        return {}
    children: Dict[int, List[Span]] = {}
    for span in trace.spans:
        if span.parent_id is not None and span.critical:
            children.setdefault(span.parent_id, []).append(span)

    times: Dict[str, float] = {}
    stack: List[Span] = [root]
    while stack:
        span = stack.pop()
        kids = children.get(span.span_id, ())
        exclusive = span.duration_ms - sum(k.duration_ms for k in kids)
        kind = span.kind
        if kind in (SpanKind.REQUEST, SpanKind.ATTEMPT):
            # Structural spans: their uncovered remainder is overhead
            # the instrumentation did not type, not component time.
            kind = OTHER
        times[kind] = times.get(kind, 0.0) + exclusive
        stack.extend(kids)
    return times


@dataclass(frozen=True)
class Attribution:
    """Mean critical-path composition of the traces at/beyond a percentile."""

    percentile: float
    #: Nearest-rank latency at the percentile, ms.
    latency_ms: float
    #: Traces with end-to-end latency >= ``latency_ms`` (the tail set).
    trace_count: int
    #: Mean exclusive milliseconds per component over the tail set.
    components: Dict[str, float]

    @property
    def total_ms(self) -> float:
        return sum(self.components.values())

    def shares(self) -> Dict[str, float]:
        """Component fractions of the tail's mean latency (sum to 1.0)."""
        total = self.total_ms
        if total <= 0:
            return {kind: 0.0 for kind in self.components}
        return {kind: ms / total for kind, ms in self.components.items()}


def attribute_critical_path(
    traces: Iterable[Trace],
    percentiles: Sequence[float] = (0.50, 0.95, 0.99),
) -> List[Attribution]:
    """Aggregate per-trace decompositions into a percentile table.

    Only complete, non-truncated traces participate.  For percentile
    ``p`` the tail set is every trace whose latency is at or beyond the
    nearest-rank ``p``-quantile, which is the population whose latency
    the "where did the tail go" question is about.
    """
    rows: List[Tuple[float, Dict[str, float]]] = []
    for trace in traces:
        if not trace.complete or trace.status == "truncated":
            continue
        rows.append((trace.duration_ms, exclusive_times(trace)))
    if not rows:
        return []
    rows.sort(key=lambda item: item[0])
    latencies = [latency for latency, _ in rows]

    attributions = []
    for percentile in percentiles:
        if not 0 < percentile <= 1:
            raise ValueError("percentiles must be in (0, 1]")
        rank = max(0, math.ceil(percentile * len(rows)) - 1)
        threshold = latencies[rank]
        tail = rows[rank:]
        sums: Dict[str, float] = {}
        for _, components in tail:
            for kind, ms in components.items():
                sums[kind] = sums.get(kind, 0.0) + ms
        count = len(tail)
        attributions.append(
            Attribution(
                percentile=percentile,
                latency_ms=threshold,
                trace_count=count,
                components={k: v / count for k, v in sorted(sums.items())},
            )
        )
    return attributions


def format_attribution(attributions: Sequence[Attribution]) -> str:
    """Plain-text table: one row per percentile, one column per component."""
    if not attributions:
        return "(no complete traces)"
    kinds = [
        kind
        for kind in COMPONENT_ORDER
        if any(a.components.get(kind, 0.0) > 0 for a in attributions)
    ]
    extras = sorted(
        {
            kind
            for a in attributions
            for kind, ms in a.components.items()
            if ms > 0 and kind not in COMPONENT_ORDER
        }
    )
    kinds.extend(extras)
    headers = ["pXX", "latency", "traces"] + kinds
    rows = []
    for a in attributions:
        shares = a.shares()
        rows.append(
            [f"p{a.percentile * 100:g}", f"{a.latency_ms:.1f} ms", a.trace_count]
            + [f"{shares.get(kind, 0.0):.1%}" for kind in kinds]
        )
    return format_table(headers, rows)
