"""Multi-server cluster simulation with a front-end load balancer.

Validates the paper's simplifying assumption that "cluster-level
performance can be approximated by the aggregation of single-machine
benchmarks" (section 4, Metrics & models): a cluster of ``n`` simulated
servers behind a dispatcher should sustain close to ``n`` times the
single-server QoS-constrained throughput, with round-robin slightly worse
than least-outstanding dispatch at the tail.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memsim.remote_memory import RemoteMemoryModel
from repro.platforms.platform import Platform
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.simulator.server_sim import DiskModel, PlatformDiskModel
from repro.workloads.base import Workload
from repro.workloads.qos import QosTracker


class Dispatch(enum.Enum):
    """Load-balancer policy."""

    ROUND_ROBIN = "round-robin"
    LEAST_OUTSTANDING = "least-outstanding"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ClusterResult:
    """Aggregate measurements of one cluster run."""

    servers: int
    throughput_rps: float
    mean_response_ms: float
    qos_percentile_ms: float
    qos_met: bool
    per_server_rps: float
    #: Completions per server (dispatch balance check).
    server_completions: List[int]

    @property
    def imbalance(self) -> float:
        """Max/mean completions across servers (1.0 = perfectly even)."""
        mean = sum(self.server_completions) / len(self.server_completions)
        return max(self.server_completions) / mean if mean else 1.0


class _Server:
    """One server's resources inside the cluster simulation."""

    def __init__(self, sim: Simulation, platform: Platform, disk_model: DiskModel):
        self.cpu = Resource(sim, "cpu", platform.cpu.total_cores)
        self.mem = Resource(sim, "mem", platform.memory.channels)
        self.disk = Resource(sim, "disk", 1)
        self.nic = Resource(sim, "nic", 1)
        self.disk_model = disk_model
        self.outstanding = 0
        self.completions = 0
        self.up = True


class ClusterSimulator:
    """N identical servers behind a load balancer, closed client pool."""

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        servers: int,
        clients_per_server: int,
        dispatch: Dispatch = Dispatch.LEAST_OUTSTANDING,
        seed: int = 1,
        warmup_requests: int = 500,
        measure_requests: int = 4000,
        disk_model_factory=None,
        failures: Optional[Dict[int, float]] = None,
        recoveries: Optional[Dict[int, float]] = None,
        remote_memory: Optional[RemoteMemoryModel] = None,
    ):
        """``remote_memory`` attaches a shared memory blade: every request
        pays its expected remote-miss traffic on one blade-controller link
        shared by ALL servers in the cluster (the PCIe-contention effect
        the paper's trace methodology could not capture), plus the
        per-miss trap-handler CPU time on its own server.

        ``failures`` maps a server index to the simulated time (ms) at
        which it crashes; the balancer stops dispatching to it (requests
        already in flight complete -- the paper's software stack handles
        retry/replication above this level).  ``recoveries`` maps a
        server index to the time it comes back into rotation.  Failing
        every server (without recovery) is rejected."""
        if servers <= 0 or clients_per_server <= 0:
            raise ValueError("servers and clients_per_server must be positive")
        if failures:
            bad = [i for i in failures if not 0 <= i < servers]
            if bad:
                raise ValueError(f"failure indices out of range: {bad}")
            if len(failures) >= servers and not recoveries:
                raise ValueError("cannot fail every server")
            if any(t < 0 for t in failures.values()):
                raise ValueError("failure times must be >= 0")
        if recoveries:
            bad = [i for i in recoveries if not 0 <= i < servers]
            if bad:
                raise ValueError(f"recovery indices out of range: {bad}")
            for index, at_ms in recoveries.items():
                if failures is None or index not in failures:
                    raise ValueError(
                        f"server {index} has a recovery but no failure"
                    )
                if at_ms <= failures[index]:
                    raise ValueError(
                        f"server {index} recovery must follow its failure"
                    )
        self._platform = platform
        self._workload = workload
        self._servers = servers
        self._clients = clients_per_server * servers
        self._dispatch = dispatch
        self._seed = seed
        self._warmup = warmup_requests
        self._measure = measure_requests
        self._disk_model_factory = disk_model_factory or (
            lambda: PlatformDiskModel(platform)
        )
        self._failures = dict(failures or {})
        self._recoveries = dict(recoveries or {})
        self._remote_memory = remote_memory

    def _pick(
        self, servers: List[_Server], rr_state: Dict[str, int],
        rng: random.Random,
    ) -> _Server:
        if self._dispatch is Dispatch.ROUND_ROBIN:
            index = rr_state["next"]
            rr_state["next"] = (index + 1) % len(servers)
            return servers[index]
        # Least-outstanding with random tie-breaking (a deterministic
        # tie-break would systematically favour low-index servers).
        least = min(s.outstanding for s in servers)
        candidates = [s for s in servers if s.outstanding == least]
        return candidates[rng.randrange(len(candidates))]

    @staticmethod
    def _alive(servers: List[_Server]) -> List[_Server]:
        return [s for s in servers if s.up]

    def run(self) -> ClusterResult:
        sim = Simulation()
        rng = random.Random(self._seed)
        platform = self._platform
        profile = self._workload.profile
        servers = [
            _Server(sim, platform, self._disk_model_factory())
            for _ in range(self._servers)
        ]
        rr_state = {"next": 0}
        blade = (
            Resource(sim, "blade", 1) if self._remote_memory is not None else None
        )
        for index, at_ms in self._failures.items():
            def crash(i=index) -> None:
                servers[i].up = False
            sim.schedule(at_ms, crash)
        for index, at_ms in self._recoveries.items():
            def recover(i=index) -> None:
                servers[i].up = True
            sim.schedule(at_ms, recover)

        qos = QosTracker(profile.qos) if profile.qos else None
        responses: List[float] = []
        state = {"completions": 0, "t0": 0.0, "t1": 0.0, "done": False}

        def client_loop() -> None:
            if state["done"]:
                return
            think = (
                rng.expovariate(1.0 / profile.think_time_ms)
                if profile.think_time_ms > 0
                else 0.0
            )
            sim.schedule(think, issue)

        def issue() -> None:
            if state["done"]:
                return
            request = self._workload.sample(rng)
            demand = request.demand
            alive = self._alive(servers)
            server = self._pick(alive, rr_state, rng)
            server.outstanding += 1
            start = sim.now

            cpu_ms = platform.cpu_time_ms(
                demand.cpu_ms_ref,
                profile.cache_sensitivity,
                profile.inorder_ipc_factor,
                profile.stall_fraction,
            )
            blade_ms = 0.0
            if self._remote_memory is not None:
                cpu_ms += self._remote_memory.trap_cpu_ms(demand)
                blade_ms = self._remote_memory.link_time_ms(demand)
            mem_ms = platform.memory_channel_time_ms(demand.mem_ms_ref)
            disk_ms = server.disk_model.service_ms(demand, rng)
            net_ms = platform.net_time_ms(demand.net_bytes)

            def done() -> None:
                server.outstanding -= 1
                server.completions += 1
                _complete(start)

            def after_disk() -> None:
                server.nic.acquire(net_ms, done)

            def after_blade() -> None:
                server.disk.acquire(disk_ms, after_disk)

            def after_mem() -> None:
                if blade is not None and blade_ms > 0:
                    blade.acquire(blade_ms, after_blade)
                else:
                    after_blade()

            def after_cpu() -> None:
                server.mem.acquire(mem_ms, after_mem)

            slices = max(1, min(platform.cpu.total_cores, demand.cpu_parallelism))
            if slices == 1:
                server.cpu.acquire(cpu_ms, after_cpu)
            else:
                join = {"left": slices}

                def slice_done() -> None:
                    join["left"] -= 1
                    if join["left"] == 0:
                        after_cpu()

                for _ in range(slices):
                    server.cpu.acquire(cpu_ms / slices, slice_done)

        def _complete(start_ms: float) -> None:
            state["completions"] += 1
            if state["completions"] == self._warmup:
                state["t0"] = sim.now
            elif state["completions"] > self._warmup and not state["done"]:
                response = sim.now - start_ms
                responses.append(response)
                if qos is not None:
                    qos.record(response)
                if state["completions"] >= self._warmup + self._measure:
                    state["done"] = True
                    state["t1"] = sim.now
                    sim.stop()
                    return
            client_loop()

        for _ in range(self._clients):
            client_loop()
        sim.run()

        if not state["done"]:
            raise RuntimeError("cluster simulation ended before measurement")
        window_s = max(state["t1"] - state["t0"], 1e-9) / 1000.0
        throughput = len(responses) / window_s
        return ClusterResult(
            servers=self._servers,
            throughput_rps=throughput,
            mean_response_ms=sum(responses) / len(responses),
            qos_percentile_ms=(
                qos.percentile_ms() if qos and qos.count else 0.0
            ),
            qos_met=qos.satisfied() if qos else True,
            per_server_rps=throughput / self._servers,
            server_completions=[s.completions for s in servers],
        )
