"""Multi-server cluster simulation with a front-end load balancer.

Validates the paper's simplifying assumption that "cluster-level
performance can be approximated by the aggregation of single-machine
benchmarks" (section 4, Metrics & models): a cluster of ``n`` simulated
servers behind a dispatcher should sustain close to ``n`` times the
single-server QoS-constrained throughput, with round-robin slightly worse
than least-outstanding dispatch at the tail.

The balancer also carries the repository's graceful-degradation stack
(the paper: "high-availability ... moved into the application stack"):

- *health checking*: only servers whose full serving path (server, disk,
  NIC, enclosure PSU) is up receive new requests; if nothing is healthy
  the dispatcher backs off and re-probes instead of crashing;
- *timeouts and bounded retry*: with a :class:`RetryPolicy`, a request
  that does not complete within the timeout is re-dispatched with
  exponential backoff (optionally full-jitter), up to ``max_retries``
  extra attempts;
- *hedged dispatch*: optionally, a duplicate attempt is sent to a second
  server when the first is slow, and the first completion wins;
- *degraded modes*: a down memory blade switches every attached server
  to local-memory-only operation (capacity misses page in from disk); a
  down flash cache drops to the raw-disk path.

Faults come either from a scripted ``failures``/``recoveries`` schedule
or from stochastic per-component MTBF/MTTR processes
(:class:`repro.faults.FaultInjector`), both fully deterministic per seed.

On top of that sits the *overload-protection* stack
(:mod:`repro.cluster.overload`), enabled by passing an
:class:`~repro.cluster.overload.OverloadPolicy`:

- bounded per-server queues with reject-on-full dispatch;
- deadline-based shedding: an attempt whose timeout has expired (or
  provably cannot be met) is dropped the moment CPU service would
  start, instead of being served uselessly;
- admission control at the dispatcher (token-bucket rate limit plus
  adaptive shedding on observed queueing delay);
- a shared retry-token budget that caps retry amplification, and
  per-server circuit breakers that stop dispatch to a failing server;
- brownout mode: overloaded servers serve a reduced-demand variant.

The simulator runs *closed-loop* (a fixed client population with think
time, the paper's client-driver protocol) by default, or *open-loop*
(Poisson arrivals following a :class:`~repro.cluster.overload.SurgeSchedule`,
measured over a fixed time window) -- the regime where overload and
metastable retry storms actually occur.
"""

from __future__ import annotations

import enum
import hashlib
import pickle
import random
from dataclasses import dataclass, field, replace
from numbers import Real
from typing import Dict, List, Optional

from repro.cluster.overload import (
    AdmissionController,
    AdmissionVerdict,
    BreakerState,
    CircuitBreaker,
    OverloadPolicy,
    OverloadReport,
    RetryBudget,
    SurgeSchedule,
)
from repro.faults.failslow import (
    DetectionPolicy,
    DriftTable,
    FailSlowPlan,
    FailSlowReport,
    PeerComparisonDetector,
)
from repro.faults.injector import FaultInjector, schedule_maintenance
from repro.faults.model import ComponentType, FaultProfile
from repro.faults.recovery import (
    MaintenancePlan,
    RecoveryOrchestrator,
    RecoveryReport,
    RedundancyConfig,
)
from repro.memsim.remote_memory import RemoteMemoryModel
from repro.obs.span import SpanKind, Trace
from repro.obs.tracer import record_stage, record_stage_parts
from repro.perf.variates import exponential_sampler
from repro.platforms.platform import Platform
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.simulator.server_sim import DiskModel, PlatformDiskModel
from repro.simulator.telemetry import AvailabilityTracker, TimeSeries
from repro.workloads.base import Workload
from repro.workloads.qos import QosTracker

#: Dispatcher re-probe interval when no server is healthy, ms.
HEALTH_RECHECK_MS = 25.0

#: CPU service-time multiplier while the enclosure fan is down (thermal
#: throttling keeps the blades serving, slower, instead of tripping).
FAN_DEGRADED_THROTTLE = 1.5

#: Servers per enclosure-level failure domain (fan/PSU blast radius).
DEFAULT_ENCLOSURE_SIZE = 8


class Dispatch(enum.Enum):
    """Load-balancer policy."""

    ROUND_ROBIN = "round-robin"
    LEAST_OUTSTANDING = "least-outstanding"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout, bounded retry, and optional hedging."""

    #: Abandon an attempt that has not completed within this budget.
    timeout_ms: float = 1000.0
    #: Extra dispatch attempts after the first (0 = timeout only).
    max_retries: int = 2
    #: First retry delay; grows by ``backoff_factor`` per attempt.
    backoff_base_ms: float = 10.0
    backoff_factor: float = 2.0
    #: If set, send a duplicate attempt to another server once a request
    #: has been outstanding this long (first completion wins).
    hedge_after_ms: Optional[float] = None
    #: Full-jitter backoff: each delay is drawn uniformly from
    #: ``[0, deterministic backoff]`` using the simulation's seeded RNG,
    #: decorrelating the retry waves that synchronized timeouts would
    #: otherwise re-dispatch in lockstep.  Deterministic per seed.
    jitter: bool = False

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ms < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ValueError("hedge delay must be positive")

    def backoff_ms(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Delay before re-dispatching attempt number ``attempt + 1``.

        Without ``jitter`` (or without an ``rng``) the delay is the
        deterministic exponential ``base * factor**attempt``; with both,
        it is drawn uniformly from ``[0, that value]`` (full jitter).
        """
        ceiling = self.backoff_base_ms * self.backoff_factor ** max(attempt, 0)
        if self.jitter and rng is not None:
            return rng.uniform(0.0, ceiling)
        return ceiling


@dataclass
class FaultReport:
    """Fault- and retry-handling counters for one cluster run."""

    #: Injected hardware failures by component class value.
    injected_failures: Dict[str, int] = field(default_factory=dict)
    timeouts: int = 0
    retries: int = 0
    hedges: int = 0
    #: Hedged attempts whose RNG-picked target was quarantined by the
    #: gray-failure detector and were re-routed to a healthy peer.
    hedge_redirects: int = 0
    #: Hedge opportunities dropped because no server could accept the
    #: duplicate attempt (previously a silent return).
    hedges_dropped: int = 0
    #: Completions discarded because another attempt already won.
    wasted_completions: int = 0
    #: Requests abandoned after exhausting the retry budget.
    gave_up: int = 0
    #: In-flight requests voided by a server going down.
    lost_in_flight: int = 0
    #: Dispatcher stalls because no server was healthy.
    all_down_waits: int = 0
    #: Requests served in blade-down local-memory-only mode.
    degraded_requests: int = 0
    #: Requests served on the raw-disk path because flash was down.
    cache_bypassed_requests: int = 0
    #: Total time the memory blade spent down, ms.
    blade_downtime_ms: float = 0.0


@dataclass
class ClusterResult:
    """Aggregate measurements of one cluster run."""

    servers: int
    throughput_rps: float
    mean_response_ms: float
    qos_percentile_ms: float
    qos_met: bool
    per_server_rps: float
    #: Completions per server (dispatch balance check).
    server_completions: List[int]
    #: Fraction of measured requests exceeding the QoS limit.
    qos_violation_rate: float = 0.0
    #: Mean fraction of the run each server spent in rotation.
    availability: float = 1.0
    #: Fault-handling counters (None when the run injected no faults and
    #: used no retry/overload machinery).
    fault_report: Optional[FaultReport] = None
    #: New (first-attempt) requests offered per second in the window.
    offered_rps: float = 0.0
    #: Successfully served completions meeting the QoS limit, per second.
    goodput_rps: float = 0.0
    #: 99th-percentile response time of measured requests.
    p99_ms: float = 0.0
    #: Overload-protection counters and timelines (None for legacy
    #: closed-loop runs without an :class:`OverloadPolicy`).
    overload_report: Optional[OverloadReport] = None
    #: Gray-failure injection/detection summary (None when the run used
    #: neither a :class:`~repro.faults.failslow.FailSlowPlan` nor a
    #: :class:`~repro.faults.failslow.DetectionPolicy`).
    failslow_report: Optional[FailSlowReport] = None
    #: Redundancy/failover/rebuild and maintenance-drain summary (None
    #: when the run used neither a :class:`RedundancyConfig` nor a
    #: :class:`MaintenancePlan`).
    recovery_report: Optional[RecoveryReport] = None

    @property
    def imbalance(self) -> float:
        """Max/mean completions across servers (1.0 = perfectly even)."""
        if not self.server_completions:
            return 1.0
        mean = sum(self.server_completions) / len(self.server_completions)
        return max(self.server_completions) / mean if mean else 1.0

    def stream_digest(self) -> str:
        """SHA-256 over the behavioural measurements of the run.

        Excludes :attr:`failslow_report` -- the detector's own
        bookkeeping (evaluation counts, scores) necessarily differs
        between detection-on and detection-off runs even when the
        *served request stream* is identical -- and
        :attr:`recovery_report` for the same reason: the redundancy
        layer's audit and rebuild accounting exists only when enabled,
        while on a healthy fleet the served stream is bit-identical
        with redundancy on or off.  Everything the workload can observe
        (latencies, completions, fault/overload counters) is covered,
        so this is the equality the zero-RNG guarantee promises: on a
        healthy fleet, enabling scoring/ejection or replica/parity
        placement changes nothing the requests experienced.
        """
        payload = replace(self, failslow_report=None, recovery_report=None)
        return hashlib.sha256(
            pickle.dumps(payload, protocol=4)
        ).hexdigest()


class _RequestState:
    """Per-request record on the balancer's hot path.

    One is allocated per issued request (tens of thousands per run), so
    it is a slotted plain class rather than a dict: ~3x smaller and
    allocation-cheaper, which the alloc microbenchmark in
    :mod:`repro.perf.bench` tracks.
    """

    __slots__ = (
        "demand", "start", "attempts", "finished", "hedged", "trace",
        "trace_live",
    )

    def __init__(self, demand, start: float):
        self.demand = demand
        self.start = start
        self.attempts = 0
        self.finished = False
        self.hedged = False
        #: Sampled :class:`repro.obs.Trace` (None when untraced).
        self.trace = None
        #: Attempt spans still in flight -- used to decide whether a
        #: timeout wait sits on the critical path (it does not while a
        #: hedge is still running).
        self.trace_live = None


class _Attempt:
    """One dispatch attempt of a request (slotted: hot-path record).

    ``timer``/``hedge_timer`` hold :meth:`Simulation.schedule_timer`
    handles (0 = none) so a completed attempt cancels its pending
    timeout instead of leaving a dead event in the heap.
    """

    __slots__ = ("server", "epoch", "void", "done", "probe", "timer", "hedge_timer")

    def __init__(self, server: "_Server", epoch: int, probe: bool):
        self.server = server
        self.epoch = epoch
        self.void = False
        self.done = False
        self.probe = probe
        self.timer = 0
        self.hedge_timer = 0


class _Server:
    """One server's resources inside the cluster simulation."""

    __slots__ = (
        "index", "cpu", "mem", "disk", "nic", "disk_model", "outstanding",
        "completions", "up", "epoch", "down_components", "cpu_throttle",
        "blade_down", "draining",
    )

    def __init__(
        self, sim: Simulation, platform: Platform, disk_model: DiskModel,
        index: int,
    ):
        self.index = index
        self.cpu = Resource(sim, "cpu", platform.cpu.total_cores)
        self.mem = Resource(sim, "mem", platform.memory.channels)
        self.disk = Resource(sim, "disk", 1)
        self.nic = Resource(sim, "nic", 1)
        self.disk_model = disk_model
        self.outstanding = 0
        self.completions = 0
        self.up = True
        #: Bumped when the server drops out of rotation; attempts carry
        #: the epoch they were dispatched under, so completions from a
        #: pre-crash epoch are recognised as lost.
        self.epoch = 0
        #: Down components currently affecting this server (health = 0).
        self.down_components = 0
        #: CPU service-time multiplier (enclosure-fan thermal throttle).
        self.cpu_throttle = 1.0
        #: Attached memory blade unavailable (degraded local-only mode).
        self.blade_down = False
        #: In a maintenance-drain window: stays up (in-flight work
        #: completes) but receives no new dispatches or hedges.
        self.draining = False


def _scripted_time(label: str, index: int, at_ms: object) -> float:
    """Validate one scripted failure/recovery timestamp."""
    if isinstance(at_ms, bool) or not isinstance(at_ms, Real):
        raise TypeError(
            f"server {index} {label} must be a single time in ms, got "
            f"{type(at_ms).__name__!r}: the scripted schedule supports at "
            "most one failure and one recovery per server (a recovery "
            "followed by another failure is not representable); use "
            "repro.faults.FaultInjector for repeated fail/repair cycles"
        )
    return float(at_ms)


class ClusterSimulator:
    """N identical servers behind a load balancer.

    Closed-loop (client pool with think time) by default; open-loop
    (Poisson arrivals on a :class:`SurgeSchedule`) when ``arrivals`` is
    given.
    """

    def __init__(
        self,
        platform: Platform,
        workload: Workload,
        servers: int,
        clients_per_server: int,
        dispatch: Dispatch = Dispatch.LEAST_OUTSTANDING,
        seed: int = 1,
        warmup_requests: int = 500,
        measure_requests: int = 4000,
        disk_model_factory=None,
        failures: Optional[Dict[int, float]] = None,
        recoveries: Optional[Dict[int, float]] = None,
        remote_memory: Optional[RemoteMemoryModel] = None,
        faults: Optional[FaultProfile] = None,
        fault_seed: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        enclosure_size: int = DEFAULT_ENCLOSURE_SIZE,
        overload: Optional[OverloadPolicy] = None,
        arrivals: Optional[SurgeSchedule] = None,
        warmup_ms: float = 2000.0,
        measure_ms: float = 20_000.0,
        tracer=None,
        metrics=None,
        failslow: Optional[FailSlowPlan] = None,
        failslow_detection: Optional[DetectionPolicy] = None,
        redundancy: Optional[RedundancyConfig] = None,
        maintenance: Optional[MaintenancePlan] = None,
        engine: str = "scalar",
    ):
        """``remote_memory`` attaches a shared memory blade: every request
        pays its expected remote-miss traffic on one blade-controller link
        shared by ALL servers in the cluster (the PCIe-contention effect
        the paper's trace methodology could not capture), plus the
        per-miss trap-handler CPU time on its own server.

        ``failures`` maps a server index to the simulated time (ms) at
        which it crashes; the balancer stops dispatching to it.
        ``recoveries`` maps a server index to the time it comes back into
        rotation.  The scripted schedule is one-shot: at most one failure
        and one optional later recovery per server -- a recovery followed
        by a second failure cannot be expressed (pass ``faults`` for
        repeated, stochastic fail/repair cycles instead).  Failing every
        server (without recovery) is rejected.

        ``faults`` enables stochastic per-component fault injection from
        MTBF/MTTR processes (seeded by ``fault_seed``, default derived
        from ``seed``); servers, disks, NICs, the memory blade, flash
        caches, and enclosure fans/PSUs fail and repair over the run,
        with correlated blast radii for the shared components.

        ``retry`` adds per-request timeout, bounded retry with
        exponential backoff, and optional hedged dispatch.  With ``retry``
        (explicit, or the default one implied by ``faults``) a server
        going down *loses* its in-flight requests -- clients recover via
        timeout -- whereas without it the legacy behaviour is kept:
        in-flight requests complete, only new dispatches avoid the dead
        server.

        ``overload`` layers the protection stack of
        :mod:`repro.cluster.overload` over dispatch: bounded per-server
        queues, deadline shedding, admission control, a shared retry
        budget, per-server circuit breakers, and brownout mode.

        ``arrivals`` switches the simulator to open-loop mode: requests
        arrive in a Poisson stream whose rate follows the schedule
        (``clients_per_server`` is ignored), and measurement covers the
        fixed window ``[warmup_ms, warmup_ms + measure_ms)`` of simulated
        time.  Only requests *issued inside the window* are measured, so
        by construction goodput <= throughput <= offered load.  Shed or
        rejected requests are errors: they count toward offered load but
        never enter the latency distribution.

        ``tracer`` (a :class:`repro.obs.Tracer`) records a span tree for
        each sampled request -- queueing, CPU, memory, remote-memory
        link, flash/disk, NIC, retries, sheds -- without consuming any
        RNG state: traced and untraced runs of the same seed produce
        identical :class:`ClusterResult` values.  ``metrics`` (a
        :class:`repro.obs.MetricsRegistry`) collects labeled counters,
        response histograms, and per-server gauges alongside.

        ``failslow`` attaches gray-failure drift processes
        (:class:`~repro.faults.failslow.FailSlowPlan`): individual
        servers' CPU, NIC, remote-memory, and flash/disk service times
        degrade continuously as pure functions of simulated time,
        consuming no RNG state.  ``failslow_detection`` enables the
        peer-comparison detector
        (:class:`~repro.faults.failslow.DetectionPolicy`): per-server
        attempt latencies are scored against the fleet median, outliers
        are quarantined and probed back in, and (when the policy
        carries an adaptive-timeout sub-policy) the per-attempt timeout
        tracks the fleet's observed percentile instead of the static
        ``retry.timeout_ms``.  Detection requires ``retry`` so that
        timed-out attempts exist to observe.

        ``redundancy`` (a :class:`repro.faults.recovery.RedundancyConfig`)
        protects the remote working set with replica or parity placement
        across several enclosure blades behind the shared controller
        link: a scripted (or injected) blade failure re-routes remote
        reads to surviving copies instead of dropping to local paging,
        and repairs trigger background rebuild streams that contend with
        foreground traffic on the same blade-controller
        :class:`~repro.simulator.resources.Resource` under the config's
        :class:`~repro.faults.recovery.RebuildPolicy` throttle.  A
        ``policy=None`` config keeps today's unprotected degraded mode
        but still runs the scripted ``blade_faults`` storm.  None of
        this consumes RNG: with a healthy fleet (or ``redundancy=None``)
        the request stream is bit-identical either way.

        ``maintenance`` scripts drain windows (e.g. a rolling upgrade):
        a draining server finishes its in-flight work but receives no
        new dispatches or hedges, and the gray-failure detector (when
        present) drops it from the fleet median for the duration.

        ``engine`` selects the run implementation: ``"scalar"`` (the
        default) is the per-request callback path; ``"cohort"`` routes
        eligible open-loop configurations through the vectorized
        request-lifecycle kernels of
        :mod:`repro.perf.cluster_kernels`, which produce a bitwise
        identical :class:`ClusterResult` (``stream_digest()`` equality
        is a test invariant).  Configurations the kernels do not model
        (closed-loop mode, tracing, remote memory, faults, redundancy,
        maintenance drains, non-default disk models) fall back to the
        scalar path automatically; after :meth:`run`, ``engine_used``
        names the path taken and ``fallback_reason`` says why a cohort
        request fell back (``None`` otherwise)."""
        if servers <= 0 or clients_per_server <= 0:
            raise ValueError("servers and clients_per_server must be positive")
        if enclosure_size <= 0:
            raise ValueError("enclosure size must be positive")
        if arrivals is not None and (warmup_ms < 0 or measure_ms <= 0):
            raise ValueError("open-loop windows must be positive")
        if failures:
            failures = {
                i: _scripted_time("failure", i, t) for i, t in failures.items()
            }
            bad = [i for i in failures if not 0 <= i < servers]
            if bad:
                raise ValueError(f"failure indices out of range: {bad}")
            if len(failures) >= servers and not recoveries:
                raise ValueError("cannot fail every server")
            if any(t < 0 for t in failures.values()):
                raise ValueError("failure times must be >= 0")
        if recoveries:
            recoveries = {
                i: _scripted_time("recovery", i, t) for i, t in recoveries.items()
            }
            bad = [i for i in recoveries if not 0 <= i < servers]
            if bad:
                raise ValueError(f"recovery indices out of range: {bad}")
            for index, at_ms in recoveries.items():
                if failures is None or index not in failures:
                    raise ValueError(
                        f"server {index} has a recovery but no failure"
                    )
                if at_ms <= failures[index]:
                    raise ValueError(
                        f"server {index} recovery must follow its failure"
                    )
        self._platform = platform
        self._workload = workload
        self._servers = servers
        self._clients = clients_per_server * servers
        self._dispatch = dispatch
        self._seed = seed
        self._warmup = warmup_requests
        self._measure = measure_requests
        self._disk_model_factory = disk_model_factory or (
            lambda: PlatformDiskModel(platform)
        )
        self._failures = dict(failures or {})
        self._recoveries = dict(recoveries or {})
        self._remote_memory = remote_memory
        self._faults = faults
        self._fault_seed = (
            fault_seed if fault_seed is not None else seed ^ 0x5EED5EED
        )
        # Stochastic faults can strand in-flight requests, so they imply
        # a retry policy; scripted-only runs keep the legacy semantics
        # unless the caller asks for one.
        self._retry = retry if retry is not None else (
            RetryPolicy() if faults is not None else None
        )
        self._enclosure_size = enclosure_size
        # Open-loop runs always carry overload telemetry, even with every
        # protection layer off (the naive baseline needs the timelines).
        self._overload = overload if overload is not None else (
            OverloadPolicy.unprotected() if arrivals is not None else None
        )
        self._arrivals = arrivals
        self._warmup_ms = warmup_ms
        self._measure_ms = measure_ms
        self._tracer = tracer
        self._metrics = metrics
        self._failslow = failslow
        self._failslow_detection = failslow_detection
        if redundancy is not None and remote_memory is None:
            raise ValueError(
                "redundancy protects the remote working set; pass "
                "remote_memory alongside it"
            )
        if maintenance is not None:
            bad = [w.server for w in maintenance.windows
                   if not 0 <= w.server < servers]
            if bad:
                raise ValueError(
                    f"maintenance server indices out of range: {bad}"
                )
        self._redundancy = redundancy
        self._maintenance = maintenance
        if engine not in ("scalar", "cohort"):
            raise ValueError(f"unknown engine {engine!r}")
        self._engine = engine
        #: Set by :meth:`run`: which engine actually ran.
        self.engine_used: Optional[str] = None
        #: Set by :meth:`run` when ``engine="cohort"`` fell back.
        self.fallback_reason: Optional[str] = None
        if failslow is not None:
            # Validate server indices up front (table() re-checks).
            failslow.table(servers)

    @classmethod
    def sharded(cls, platform, workload_factory, servers, *args, **kwargs):
        """Build the cell-partitioned variant of this simulator.

        Returns a :class:`repro.perf.sharded.ShardedClusterSimulator`
        (imported lazily -- the perf layer imports this module), which
        partitions the cluster along enclosure/FailureDomain boundaries
        into cells simulated independently -- in worker processes when
        its ``run(shards=N)`` is given ``N > 1`` -- with per-cell
        telemetry folded back losslessly.  Takes a picklable
        ``workload_factory`` (a module-level callable returning the
        workload) instead of a workload instance, plus the arguments of
        :class:`ShardedClusterSimulator`; features that couple cells
        (``remote_memory``, stochastic ``faults``) are rejected there.
        """
        from repro.perf.sharded import ShardedClusterSimulator

        return ShardedClusterSimulator(
            platform, workload_factory, servers, *args, **kwargs
        )

    def _pick(
        self, servers: List[_Server], rr_state: Dict[str, int],
        rng: random.Random,
    ) -> _Server:
        if self._dispatch is Dispatch.ROUND_ROBIN:
            index = rr_state["next"] % len(servers)
            rr_state["next"] = (index + 1) % len(servers)
            return servers[index]
        # Least-outstanding with random tie-breaking (a deterministic
        # tie-break would systematically favour low-index servers).
        least = min(s.outstanding for s in servers)
        candidates = [s for s in servers if s.outstanding == least]
        return candidates[rng.randrange(len(candidates))]

    @staticmethod
    def _alive(servers: List[_Server]) -> List[_Server]:
        return [s for s in servers if s.up and not s.draining]

    def run(self) -> ClusterResult:
        """Run the simulation on the configured engine.

        ``engine="cohort"`` routes through the vectorized request
        lifecycle kernels when the configuration is eligible (open loop,
        no tracing/faults/remote memory/maintenance, default disk
        model), falling back to the scalar path -- with
        ``fallback_reason`` set -- otherwise.  Both paths produce the
        same ``ClusterResult.stream_digest()``.
        """
        if self._engine == "cohort":
            from repro.perf.cluster_kernels import cohort_supported, run_cohort

            ok, reason = cohort_supported(self)
            if ok:
                self.engine_used = "cohort"
                self.fallback_reason = None
                return run_cohort(self)
            self.fallback_reason = reason
        else:
            self.fallback_reason = None
        self.engine_used = "scalar"
        return self._run_scalar()

    def _run_scalar(self) -> ClusterResult:
        sim = Simulation()
        rng = random.Random(self._seed)
        # Stream-identical fast path for rng.expovariate: same values from
        # the same generator state, without the per-draw method dispatch.
        sample_exp = exponential_sampler(rng)
        platform = self._platform
        profile = self._workload.profile
        retry = self._retry
        policy = self._overload
        open_loop = self._arrivals is not None
        tracer = self._tracer
        metrics = self._metrics
        # Request sequence number, the tracer's deterministic sampling
        # key.  Only maintained when tracing is on.
        rid = [0]
        # Gray-failure machinery: drift lookups and the peer-comparison
        # detector.  Both are RNG-free -- drifts are pure functions of
        # simulated time, detection is a pure function of observed
        # latencies -- so enabling either leaves the seeded random
        # stream (and, on a healthy fleet, the request stream) intact.
        drift = (
            self._failslow.table(self._servers)
            if self._failslow is not None else None
        )
        detector: Optional[PeerComparisonDetector] = None
        if self._failslow_detection is not None:
            detector = PeerComparisonDetector(
                self._failslow_detection, self._servers, metrics=metrics
            )
        # Bound once: recording an attempt latency sits on the
        # per-completion hot path, so each server's histogram ``record``
        # is bound directly rather than routed through the detector.
        detector_record = (
            None
            if detector is None
            else tuple(hist.record for hist in detector.histograms)
        )
        detector_report = None if detector is None else detector.report
        servers = [
            _Server(sim, platform, self._disk_model_factory(), index)
            for index in range(self._servers)
        ]
        rr_state = {"next": 0}
        blade = (
            Resource(sim, "blade", 1) if self._remote_memory is not None else None
        )
        blade_state = {"up": True, "down_since": 0.0}
        report = FaultReport()

        # --- redundancy / recovery runtime -----------------------------
        # The N redundant blades are capacity/fault-domain state behind
        # the ONE shared blade-controller link above (the paper's single
        # controller per enclosure): foreground transfers and rebuild
        # chunks contend on the same Resource.  Healthy runs never enter
        # the failover branch, so redundancy-on is bit-identical to
        # redundancy-off until a blade actually fails (zero extra RNG).
        redundancy = self._redundancy
        maintenance = self._maintenance
        recovery: Optional[RecoveryOrchestrator] = None
        recovery_report: Optional[RecoveryReport] = None
        if redundancy is not None or (
            maintenance is not None and maintenance.windows
        ):
            recovery_report = RecoveryReport()
        if redundancy is not None and redundancy.policy is not None:
            server_ids = [f"server-{i}" for i in range(self._servers)]
            group = redundancy.build_group(server_ids)
            recovery = RecoveryOrchestrator(
                sim, blade, group, redundancy.rebuild,
                page_latency_us=self._remote_memory.page_latency_us,
                metrics=metrics, trace=tracer is not None,
                report=recovery_report,
            )
            if detector is not None:
                index_of = {sid: i for i, sid in enumerate(server_ids)}

                def _impairment(server_id: str, impaired: bool) -> None:
                    # Failed-over servers paying the data-loss paging
                    # penalty leave the hedge-routable set.
                    detector.set_drained(index_of[server_id], impaired)

                recovery.on_impairment = _impairment
        if redundancy is not None:
            for fault in redundancy.blade_faults:
                if recovery is not None:
                    sim.schedule_at(
                        fault.fail_ms,
                        lambda b=fault.blade: recovery.blade_failed(b),
                    )
                    if fault.repair_ms is not None:
                        sim.schedule_at(
                            fault.repair_ms,
                            lambda b=fault.blade: recovery.blade_repaired(b),
                        )
                else:
                    # Unprotected arm: the same storm, PR 1 degraded
                    # semantics -- every attached server drops to
                    # local-only paging for the outage.
                    def _unprotected_fail() -> None:
                        blade_state["up"] = False
                        blade_state["down_since"] = sim.now
                        recovery_report.blade_failures += 1
                        for s in servers:
                            s.blade_down = True

                    def _unprotected_repair() -> None:
                        blade_state["up"] = True
                        down = sim.now - blade_state["down_since"]
                        report.blade_downtime_ms += down
                        downtime = recovery_report.blade_downtime_ms
                        downtime[0] = downtime.get(0, 0.0) + down
                        recovery_report.blade_repairs += 1
                        for s in servers:
                            s.blade_down = False

                    sim.schedule_at(fault.fail_ms, _unprotected_fail)
                    if fault.repair_ms is not None:
                        sim.schedule_at(fault.repair_ms, _unprotected_repair)

        track_faults = self._faults is not None or bool(self._failures)
        tracker = AvailabilityTracker() if track_faults else None

        # --- overload-protection runtime -------------------------------
        overload_report: Optional[OverloadReport] = None
        admission: Optional[AdmissionController] = None
        retry_budget: Optional[RetryBudget] = None
        breakers: Optional[List[CircuitBreaker]] = None
        if policy is not None:
            bucket = policy.telemetry_bucket_ms
            overload_report = OverloadReport(
                completed=TimeSeries(bucket_ms=bucket),
                goodput=TimeSeries(bucket_ms=bucket),
                offered=TimeSeries(bucket_ms=bucket),
                breaker_open_series=TimeSeries(bucket_ms=bucket),
            )
            if policy.admission is not None:
                slo_ms = (
                    profile.qos.limit_ms if profile.qos is not None
                    else (retry.timeout_ms if retry is not None else 1000.0)
                )
                admission = AdmissionController(policy.admission, slo_ms, rng)
            if policy.retry_budget is not None:
                retry_budget = RetryBudget(policy.retry_budget)
            if policy.breaker is not None:
                def _on_open(now_ms: float, state_: BreakerState) -> None:
                    if state_ is BreakerState.OPEN:
                        overload_report.breaker_opens += 1
                        overload_report.breaker_open_series.record(now_ms)

                breakers = [
                    CircuitBreaker(policy.breaker, on_transition=_on_open)
                    for _ in servers
                ]

        def _rotation_observe(index: int, up: bool) -> None:
            if tracker is not None:
                tracker.observe(f"rotation/server{index}", sim.now, up=up)

        def take_down(index: int) -> None:
            server = servers[index]
            server.down_components += 1
            if server.down_components == 1:
                server.up = False
                _rotation_observe(index, up=False)
                if retry is not None:
                    # In-flight work on a dead server is lost; clients
                    # recover through their timeouts.
                    server.epoch += 1
                    report.lost_in_flight += server.outstanding
                    server.outstanding = 0

        def bring_up(index: int) -> None:
            server = servers[index]
            server.down_components = max(server.down_components - 1, 0)
            if server.down_components == 0 and not server.up:
                server.up = True
                _rotation_observe(index, up=True)

        if tracker is not None:
            for index in range(self._servers):
                tracker.observe(f"rotation/server{index}", 0.0, up=True)

        for index, at_ms in self._failures.items():
            sim.schedule(at_ms, lambda i=index: take_down(i))
        for index, at_ms in self._recoveries.items():
            sim.schedule(at_ms, lambda i=index: bring_up(i))

        injector: Optional[FaultInjector] = None
        if self._faults is not None:
            injector = self._inject_faults(
                sim, servers, blade_state, take_down, bring_up, tracker,
                report, recovery,
            )

        if maintenance is not None and maintenance.windows:
            drain_started: Dict[int, float] = {}

            def _drain(index: int) -> None:
                server = servers[index]
                if server.draining:
                    return
                server.draining = True
                drain_started[index] = sim.now
                recovery_report.drains += 1
                if detector is not None:
                    detector.set_drained(index, True)

            def _restore(index: int) -> None:
                server = servers[index]
                if not server.draining:
                    return
                server.draining = False
                recovery_report.drain_ms += sim.now - drain_started.pop(
                    index, sim.now
                )
                if detector is not None:
                    detector.set_drained(index, False)

            schedule_maintenance(
                sim, maintenance.windows, _drain, _restore,
                events=injector.events if injector is not None else None,
            )

        qos = QosTracker(profile.qos) if profile.qos else None
        responses: List[float] = []
        state = {
            "completions": 0, "t0": 0.0, "t1": 0.0, "done": False,
            "offered": 0, "good": 0, "measuring": False,
        }
        if open_loop:
            state["t0"] = self._warmup_ms
            state["t1"] = self._warmup_ms + self._measure_ms
            state["measuring"] = self._warmup_ms == 0.0

        def _measurement_active() -> bool:
            return state["measuring"] and not state["done"]

        if detector is not None:
            eval_interval = self._failslow_detection.eval_interval_ms

            def detector_tick() -> None:
                if state["done"]:
                    return
                for change in detector.evaluate(sim.now):
                    if change.reason == "readmitted" and breakers is not None:
                        # Breaker interplay: the failures the breaker saw
                        # were the gray failure's doing.  A re-admitted
                        # server starts with a clean breaker, or the old
                        # evidence would keep it dark long after probes
                        # proved it healthy.
                        breakers[change.server].reset(sim.now)
                sim.schedule(eval_interval, detector_tick)

            sim.schedule(eval_interval, detector_tick)

        def client_loop() -> None:
            if state["done"]:
                return
            think = (
                sample_exp(1.0 / profile.think_time_ms)
                if profile.think_time_ms > 0
                else 0.0
            )
            sim.schedule(think, issue)

        def issue() -> None:
            if state["done"]:
                return
            request = self._workload.sample(rng)
            rs = _RequestState(request.demand, sim.now)
            if tracer is not None:
                rs.trace = tracer.begin(rid[0], sim.now)
                rid[0] += 1
            if overload_report is not None:
                overload_report.offered.record(sim.now)
            if _measurement_active():
                state["offered"] += 1
            if retry_budget is not None:
                retry_budget.note_request()
            if admission is not None:
                verdict = admission.admit(sim.now)
                if verdict is not AdmissionVerdict.ADMIT:
                    if verdict is AdmissionVerdict.RATE_LIMITED:
                        overload_report.rate_limited += 1
                        shed_name = "rate-limited"
                    else:
                        overload_report.shed_admission += 1
                        shed_name = "admission-shed"
                    if rs.trace is not None:
                        rs.trace.event(SpanKind.SHED, sim.now, name=shed_name)
                        rs.trace.close(sim.now, status="shed")
                    abandon()
                    return
            dispatch_request(rs)

        def _allowed(server: _Server) -> bool:
            """Breaker and queue-cap gate for one candidate server."""
            if breakers is not None and not breakers[server.index].allow(sim.now):
                return False
            if (
                policy is not None
                and policy.queue_cap is not None
                and server.outstanding >= policy.queue_cap
            ):
                return False
            return True

        def dispatch_request(rs: _RequestState) -> None:
            if state["done"] or rs.finished:
                return
            alive = self._alive(servers)
            if not alive:
                # Health check: nobody can serve right now.  Back off and
                # re-probe; a repair or scripted recovery will unblock us.
                report.all_down_waits += 1
                trace = rs.trace
                if trace is not None and trace.status is None:
                    wait = trace.start(
                        SpanKind.RETRY, sim.now, name="health-wait"
                    )

                    def recheck(span=wait) -> None:
                        Trace.finish(span, sim.now)
                        dispatch_request(rs)

                    sim.schedule(HEALTH_RECHECK_MS, recheck)
                else:
                    sim.schedule(HEALTH_RECHECK_MS, lambda: dispatch_request(rs))
                return
            candidates = alive
            # Fast path: with nobody ejected or drained (always, on a
            # healthy fleet) every server is routable and there is
            # nobody to probe, so the filter below would be a no-op.
            if detector is not None and (
                detector.ejected_count or detector.drained_count
            ):
                routable = [
                    s for s in candidates if detector.routable(s.index)
                ]
                if routable:
                    candidates = routable
                    probe_index = detector.take_probe()
                    if probe_index is not None and servers[probe_index].up:
                        # Probation probe: route this request to the
                        # recovering server so it can prove itself.
                        rs.attempts += 1
                        start_attempt(rs, servers[probe_index])
                        return
                else:
                    # Every live server is quarantined: availability
                    # beats ejection, dispatch proceeds as if the
                    # detector were absent.
                    detector.report.quarantine_bypasses += 1
            if breakers is not None:
                candidates = [
                    s for s in candidates if breakers[s.index].allow(sim.now)
                ]
                if not candidates:
                    overload_report.breaker_rejections += 1
                    fast_fail(rs)
                    return
            if policy is not None and policy.queue_cap is not None:
                candidates = [
                    s for s in candidates if s.outstanding < policy.queue_cap
                ]
                if not candidates:
                    overload_report.rejected_queue_full += 1
                    fast_fail(rs)
                    return
            rs.attempts += 1
            start_attempt(rs, self._pick(candidates, rr_state, rng))

        def _schedule_backoff(rs: _RequestState, backoff: float) -> None:
            """Re-dispatch after backoff, tracing the wait when sampled.

            The backoff span is skipped while another attempt (a hedge)
            is still live -- the request is not actually blocked on the
            backoff then, and double-charging would push the trace's
            ``other`` share negative.
            """
            trace = rs.trace
            if trace is not None and trace.status is None and not rs.trace_live:
                span = trace.start(SpanKind.RETRY, sim.now, name="backoff")

                def redispatch() -> None:
                    Trace.finish(span, sim.now)
                    dispatch_request(rs)

                sim.schedule(backoff, redispatch)
            else:
                sim.schedule(backoff, lambda: dispatch_request(rs))

        def retry_or_give_up(rs: _RequestState) -> None:
            """After a failed attempt: bounded, budgeted retry or give up."""
            if state["done"] or rs.finished:
                return
            if retry is not None and rs.attempts <= retry.max_retries:
                if retry_budget is None or retry_budget.try_spend():
                    report.retries += 1
                    _schedule_backoff(rs, retry.backoff_ms(rs.attempts - 1, rng))
                    return
                overload_report.retries_denied += 1
            # Retry budget exhausted (or denied): give up and report the
            # request at its full elapsed time (a QoS casualty, not a
            # silent drop).
            rs.finished = True
            report.gave_up += 1
            trace = rs.trace
            if trace is not None and trace.status is None:
                # A request can reach give-up with no critical spans at
                # all: every timed-out attempt overlapped a then-live
                # hedge, so no timeout-wait was ever charged.  The
                # elapsed time was still all spent on failed attempts,
                # so the stretch no critical span covers is charged to
                # ``retry`` here rather than falling into ``other``.
                root = trace.root
                covered = root.start_ms
                for span in trace.spans:
                    if (
                        span.critical
                        and span.parent_id == root.span_id
                        and span.end_ms is not None
                    ):
                        covered = max(covered, span.end_ms)
                if sim.now - covered > 1e-9:
                    Trace.finish(
                        trace.start(
                            SpanKind.RETRY, covered, name="gave-up-wait"
                        ),
                        sim.now,
                    )
                trace.close(sim.now, status="gave_up")
            complete(rs.start, served=False)

        def fast_fail(rs: _RequestState) -> None:
            """A dispatch was refused outright (queue full / breakers open).

            Counts as an attempt; the client retries after backoff or
            sees an immediate error (which never enters the latency
            distribution -- it is shed load, not a slow response)."""
            rs.attempts += 1
            if retry is not None and rs.attempts <= retry.max_retries:
                if retry_budget is None or retry_budget.try_spend():
                    report.retries += 1
                    _schedule_backoff(rs, retry.backoff_ms(rs.attempts - 1, rng))
                    return
                overload_report.retries_denied += 1
            rs.finished = True
            if rs.trace is not None and rs.trace.status is None:
                rs.trace.event(SpanKind.SHED, sim.now, name="rejected")
                rs.trace.close(sim.now, status="rejected")
            abandon()

        def start_attempt(
            rs: _RequestState, server: _Server, hedge: bool = False
        ) -> None:
            demand = rs.demand
            brownout = (
                policy is not None
                and policy.brownout is not None
                and server.outstanding >= policy.brownout.enter_outstanding
            )
            if brownout:
                demand = demand.scaled(policy.brownout.demand_factor)
                overload_report.brownout_requests += 1
            probe = (
                breakers[server.index].note_dispatch(sim.now)
                if breakers is not None
                else False
            )
            attempt = _Attempt(server, server.epoch, probe)
            server.outstanding += 1
            dispatched_at = sim.now
            # Per-attempt timeout: static, or percentile-adaptive when
            # the detector carries an AdaptiveTimeoutPolicy (static stays
            # the hard ceiling).  Fixed at dispatch time so the attempt's
            # deadline does not move under it.
            if retry is None:
                attempt_timeout_ms = 0.0
            elif detector is None:
                attempt_timeout_ms = retry.timeout_ms
            else:
                # Inline read of the detector's cached adaptive timeout
                # (recomputed only when the fleet median moves): one
                # attribute load and one comparison per attempt.
                cached = detector.adaptive_timeout_ms
                if cached is None:
                    attempt_timeout_ms = retry.timeout_ms
                else:
                    attempt_timeout_ms = (
                        cached if cached < retry.timeout_ms else retry.timeout_ms
                    )
                    detector_report.last_adaptive_timeout_ms = attempt_timeout_ms

            trace = rs.trace
            if trace is not None and trace.status is None:
                aspan = trace.start(
                    SpanKind.ATTEMPT, dispatched_at,
                    name=f"attempt{rs.attempts}",
                )
                aspan.annotate(server=server.index)
                if hedge:
                    aspan.annotate(hedge=True)
                if brownout:
                    aspan.annotate(brownout=True)
                if rs.trace_live is None:
                    rs.trace_live = []
                rs.trace_live.append(aspan)
                cursor = [dispatched_at]
            else:
                aspan = None
                cursor = None

            def drop_live() -> None:
                if aspan is not None and aspan in (rs.trace_live or ()):
                    rs.trace_live.remove(aspan)

            cpu_ms = platform.cpu_time_ms(
                demand.cpu_ms_ref,
                profile.cache_sensitivity,
                profile.inorder_ipc_factor,
                profile.stall_fraction,
            ) * server.cpu_throttle
            blade_ms = 0.0
            degraded_disk_ms = 0.0
            failover_profile = None
            if self._remote_memory is not None:
                cpu_ms += self._remote_memory.trap_cpu_ms(demand)
                if recovery is not None and recovery.active:
                    # Redundant placement: a blade is down (or being
                    # rebuilt).  Reads split per the server's current
                    # service profile -- direct, failed over to
                    # surviving copies (amplified for parity
                    # reconstruction), or lost to the swap path.
                    prof = recovery.profile(server_ids[server.index])
                    if prof.healthy:
                        blade_ms = self._remote_memory.link_time_ms(demand)
                    else:
                        failover_profile = prof
                        blade_ms = self._remote_memory.failover_time_ms(
                            demand,
                            prof.direct_fraction,
                            prof.failover_fraction,
                            prof.amplification,
                        )
                        if prof.failover_fraction > 0.0:
                            recovery_report.failover_requests += 1
                        if prof.lost_fraction > 0.0:
                            degraded_disk_ms = (
                                self._remote_memory.residual_degraded_time_ms(
                                    demand, prof.lost_fraction
                                )
                            )
                            recovery_report.lossy_requests += 1
                            report.degraded_requests += 1
                elif server.blade_down:
                    # Blade down, unprotected: local-memory-only mode.
                    # Capacity misses page in from the swap path on the
                    # server's own disk instead of crossing the (dead)
                    # link.
                    degraded_disk_ms = self._remote_memory.degraded_time_ms(demand)
                    report.degraded_requests += 1
                else:
                    blade_ms = self._remote_memory.link_time_ms(demand)
            if drift is not None:
                # Gray-failure drift, evaluated once at dispatch time
                # (pure function of simulated time; zero RNG).
                lane = drift.cpu[server.index]
                if lane is not None:
                    cpu_ms *= DriftTable.scale(lane, dispatched_at)
                lane = drift.remote[server.index]
                if lane is not None and blade_ms > 0.0:
                    blade_ms *= DriftTable.scale(lane, dispatched_at)
            mem_ms = platform.memory_channel_time_ms(demand.mem_ms_ref)
            cache_was_bypassed = not getattr(server.disk_model, "available", True)
            # Traced attempts ask the disk model for its typed breakdown
            # (flash hit vs backing disk); untraced attempts take the
            # plain total.  Both consume identical RNG draws because
            # ``service_ms`` delegates to ``service_components``.
            disk_parts = None
            if aspan is not None:
                parts_fn = getattr(server.disk_model, "service_components", None)
                if parts_fn is not None:
                    disk_parts = parts_fn(demand, rng)
                    disk_service = sum(part[2] for part in disk_parts)
                else:
                    disk_service = server.disk_model.service_ms(demand, rng)
                disk_parts = list(disk_parts) if disk_parts else (
                    [("disk", "disk", disk_service)] if disk_service > 0 else []
                )
            else:
                disk_service = server.disk_model.service_ms(demand, rng)
            if drift is not None:
                lane = drift.flash[server.index]
                if lane is not None:
                    # Scale the flash/disk *total* once in both paths:
                    # float multiplication does not distribute over the
                    # per-part sum, so scaling parts and summing would
                    # let traced and untraced attempts drift apart
                    # bitwise.  The per-part breakdown is display-only.
                    flash_mult = DriftTable.scale(lane, dispatched_at)
                    disk_service *= flash_mult
                    if disk_parts:
                        disk_parts = [
                            (kind, name, ms * flash_mult)
                            for kind, name, ms in disk_parts
                        ]
            if disk_parts is not None and degraded_disk_ms > 0.0:
                disk_parts.append(("disk", "degraded-swap", degraded_disk_ms))
            disk_ms = disk_service + degraded_disk_ms
            if cache_was_bypassed:
                report.cache_bypassed_requests += 1
            net_ms = platform.net_time_ms(demand.net_bytes)
            if drift is not None:
                lane = drift.nic[server.index]
                if lane is not None:
                    net_ms *= DriftTable.scale(lane, dispatched_at)

            def lost() -> bool:
                return attempt.epoch != server.epoch

            def record_outcome(ok: bool) -> None:
                if breakers is not None:
                    breaker = breakers[server.index]
                    if ok:
                        breaker.record_success(sim.now, attempt.probe)
                    else:
                        breaker.record_failure(sim.now, attempt.probe)

            def cancel_timers() -> None:
                # The attempt reached a terminal state before its timers
                # fired; reclaim the dead heap entries (the guarded
                # callbacks would have been no-ops, so behaviour is
                # unchanged -- the heap just stays small).
                if attempt.timer:
                    sim.cancel(attempt.timer)
                    attempt.timer = 0
                if attempt.hedge_timer:
                    sim.cancel(attempt.hedge_timer)
                    attempt.hedge_timer = 0

            def done() -> None:
                if lost():
                    return
                server.outstanding -= 1
                attempt.done = True
                cancel_timers()
                if attempt.void:
                    return
                record_outcome(ok=True)
                if recovery is not None:
                    # Feed the rebuild throttle's backpressure EWMA.
                    recovery.observe_foreground(sim.now - dispatched_at)
                if detector_record is not None:
                    # Wasted completions still score: the attempt's
                    # latency is evidence of the server's speed whether
                    # or not it won the race.
                    detector_record[server.index](sim.now - dispatched_at)
                if rs.finished:
                    report.wasted_completions += 1
                    return
                rs.finished = True
                server.completions += 1
                if aspan is not None and trace.status is None:
                    record_stage(
                        trace, aspan, cursor[0], sim.now, SpanKind.NET, net_ms
                    )
                    Trace.finish(aspan, sim.now)
                    drop_live()
                    trace.close(sim.now, status="ok")
                complete(rs.start, served=True)

            def after_disk() -> None:
                if lost():
                    return
                if aspan is not None and trace.status is None:
                    record_stage_parts(
                        trace, aspan, cursor[0], sim.now, disk_parts, disk_ms
                    )
                    cursor[0] = sim.now
                server.nic.acquire(net_ms, done)

            def after_blade() -> None:
                if lost():
                    return
                server.disk.acquire(disk_ms, after_disk)

            def after_mem() -> None:
                if lost():
                    return
                if aspan is not None and trace.status is None:
                    record_stage(
                        trace, aspan, cursor[0], sim.now, SpanKind.MEM, mem_ms
                    )
                    cursor[0] = sim.now
                if blade is not None and blade_ms > 0 and blade_state["up"]:
                    if aspan is None:
                        blade.acquire(blade_ms, after_blade)
                    else:
                        def traced_after_blade() -> None:
                            if lost():
                                return
                            if trace.status is None:
                                span = record_stage(
                                    trace, aspan, cursor[0], sim.now,
                                    SpanKind.REMOTE_MEM, blade_ms,
                                    name="blade-link",
                                )
                                span.annotate(
                                    **self._remote_memory.span_attrs(demand)
                                )
                                if failover_profile is not None:
                                    span.annotate(
                                        failover=round(
                                            failover_profile.failover_fraction,
                                            4,
                                        ),
                                        lost=round(
                                            failover_profile.lost_fraction, 4
                                        ),
                                    )
                                if recovery is not None and recovery.rebuilding:
                                    # Attribution hook: this transfer
                                    # shared the link with an active
                                    # rebuild stream.
                                    span.annotate(rebuild=True)
                                cursor[0] = sim.now
                            after_blade()

                        blade.acquire(blade_ms, traced_after_blade)
                else:
                    after_blade()

            def after_cpu() -> None:
                if lost():
                    return
                if aspan is not None and trace.status is None:
                    # One slice: the contiguous-service interval is
                    # exact.  Sliced requests report the last slice's
                    # share and annotate the fan-out.
                    span = record_stage(
                        trace, aspan, cursor[0], sim.now, SpanKind.CPU,
                        cpu_ms / slices,
                    )
                    if slices > 1:
                        span.annotate(slices=slices)
                    cursor[0] = sim.now
                server.mem.acquire(mem_ms, after_mem)

            service_floor_ms = cpu_ms + mem_ms + blade_ms + disk_ms + net_ms

            def cpu_gate() -> bool:
                """Called when a CPU core would start serving this attempt.

                Feeds the observed queueing delay to admission control
                and, with deadline shedding, drops stale work: an attempt
                whose timeout already fired while it queued, or whose
                remaining budget cannot cover even the raw service time,
                is cancelled instead of served uselessly."""
                if lost():
                    return False
                if admission is not None:
                    admission.observe_delay(sim.now - dispatched_at)
                if policy is None or not policy.deadline_shedding:
                    return True
                if attempt.void:
                    # Timed out while queued; the timeout handler already
                    # arranged the retry -- just shed the stale work.
                    overload_report.shed_deadline += 1
                    server.outstanding -= 1
                    if aspan is not None and trace.status is None:
                        trace.event(
                            SpanKind.SHED, sim.now, parent=aspan,
                            name="stale-shed",
                        )
                    return False
                if retry is not None and (
                    sim.now - dispatched_at + service_floor_ms
                    > attempt_timeout_ms
                ):
                    # Provably cannot meet the deadline: fail fast now
                    # rather than waiting for the timeout to notice.
                    attempt.void = True
                    overload_report.shed_deadline += 1
                    server.outstanding -= 1
                    if aspan is not None and trace.status is None:
                        # The whole attempt so far was queueing; charge
                        # it to the critical path as queue time unless a
                        # hedge is still covering the request.
                        aspan.critical = False
                        Trace.finish(aspan, sim.now)
                        aspan.annotate(shed="deadline")
                        drop_live()
                        if not rs.trace_live:
                            Trace.finish(
                                trace.start(
                                    SpanKind.QUEUE, dispatched_at,
                                    name="shed-wait",
                                ),
                                sim.now,
                            )
                        trace.event(
                            SpanKind.SHED, sim.now, name="deadline-shed"
                        )
                    record_outcome(ok=False)
                    cancel_timers()
                    retry_or_give_up(rs)
                    return False
                return True

            gate = cpu_gate if policy is not None else None
            slices = max(1, min(platform.cpu.total_cores, demand.cpu_parallelism))
            if slices == 1:
                server.cpu.acquire(cpu_ms, after_cpu, on_start=gate)
            else:
                join = {"left": slices}

                def slice_done() -> None:
                    join["left"] -= 1
                    if join["left"] == 0:
                        after_cpu()

                # The gate decides once, on the first slice to reach a
                # core; cancelling it abandons the whole attempt (the
                # other slices see the void flag).
                decision = {"made": False, "serve": True}

                def slice_gate() -> bool:
                    if not decision["made"]:
                        decision["made"] = True
                        decision["serve"] = gate() if gate is not None else True
                        if not decision["serve"]:
                            join["left"] = -1
                    elif join["left"] < 0:
                        return False
                    return decision["serve"]

                for _ in range(slices):
                    server.cpu.acquire(
                        cpu_ms / slices, slice_done,
                        on_start=slice_gate if gate is not None else None,
                    )

            if retry is None:
                return

            def on_timeout() -> None:
                if (
                    state["done"] or rs.finished or attempt.done
                    or attempt.void
                ):
                    return
                attempt.void = True
                report.timeouts += 1
                if recovery is not None:
                    # A timeout is a floor on the foreground latency --
                    # the strongest backpressure evidence there is.
                    recovery.observe_foreground(attempt_timeout_ms)
                if detector_record is not None:
                    # A timeout is a floor on the true latency -- strong
                    # evidence, recorded at the timeout value.
                    detector_record[server.index](attempt_timeout_ms)
                if aspan is not None and trace.status is None:
                    # The abandoned attempt's work leaves the critical
                    # path; the wait it cost the request becomes a retry
                    # span -- unless a hedge is still live, in which case
                    # the request was never actually blocked on it.
                    aspan.critical = False
                    if aspan.end_ms is None:
                        Trace.finish(aspan, sim.now)
                    aspan.annotate(timeout=True)
                    drop_live()
                    if not rs.trace_live:
                        Trace.finish(
                            trace.start(
                                SpanKind.RETRY, dispatched_at,
                                name="timeout-wait",
                            ),
                            sim.now,
                        )
                record_outcome(ok=False)
                retry_or_give_up(rs)

            attempt.timer = sim.schedule_timer(attempt_timeout_ms, on_timeout)

            if retry.hedge_after_ms is None or hedge or rs.hedged:
                return

            def maybe_hedge() -> None:
                if (
                    state["done"] or rs.finished or attempt.done
                    or attempt.void or rs.hedged
                ):
                    return
                alive = self._alive(servers)
                others = [
                    s for s in alive if s is not server and _allowed(s)
                ] or [s for s in alive if _allowed(s)]
                if not others:
                    # No server can take the duplicate; count the missed
                    # hedge instead of vanishing silently.
                    report.hedges_dropped += 1
                    return
                rs.hedged = True
                rs.attempts += 1
                report.hedges += 1
                # Pick with the shared RNG from the naive candidate set
                # first (identical draw sequence whether or not detection
                # is on), then redirect deterministically if the pick
                # landed on a quarantined/probation server: a hedge's
                # whole point is a *fast* second opinion.
                target = self._pick(others, rr_state, rng)
                if (
                    detector is not None
                    and (detector.ejected_count or detector.drained_count)
                    and not detector.routable(target.index)
                ):
                    routable = [
                        s for s in others if detector.routable(s.index)
                    ]
                    if routable:
                        target = min(
                            routable,
                            key=lambda s: (s.outstanding, s.index),
                        )
                        report.hedge_redirects += 1
                start_attempt(rs, target, hedge=True)

            attempt.hedge_timer = sim.schedule_timer(
                retry.hedge_after_ms, maybe_hedge
            )

        def _record_response(start_ms: float, served: bool) -> None:
            response = sim.now - start_ms
            responses.append(response)
            if qos is not None:
                qos.record(response)
            good = served and (
                qos is None or response <= profile.qos.limit_ms
            )
            if good:
                state["good"] += 1
            if metrics is not None:
                metrics.histogram("cluster.response_ms").record(response)
                metrics.counter(
                    "cluster.requests",
                    outcome="served" if served else "gave_up",
                ).inc()

        def complete(start_ms: float, served: bool = True) -> None:
            """A request finished: served, or given up after timeouts."""
            if overload_report is not None and served:
                overload_report.completed.record(sim.now)
                if qos is None or sim.now - start_ms <= profile.qos.limit_ms:
                    overload_report.goodput.record(sim.now)
            if open_loop:
                if not state["done"] and start_ms >= state["t0"]:
                    _record_response(start_ms, served)
                return
            state["completions"] += 1
            if state["completions"] == self._warmup:
                state["t0"] = sim.now
                state["measuring"] = True
            elif state["completions"] > self._warmup and not state["done"]:
                _record_response(start_ms, served)
                if state["completions"] >= self._warmup + self._measure:
                    state["done"] = True
                    state["t1"] = sim.now
                    sim.stop()
                    return
            client_loop()

        def abandon() -> None:
            """A request was shed/rejected: an error, not a latency sample."""
            if open_loop:
                return
            state["completions"] += 1
            if state["completions"] == self._warmup:
                state["t0"] = sim.now
                state["measuring"] = True
            elif state["completions"] >= self._warmup + self._measure:
                state["done"] = True
                state["t1"] = sim.now
                sim.stop()
                return
            client_loop()

        if open_loop:
            schedule = self._arrivals

            def schedule_arrival() -> None:
                if state["done"]:
                    return
                rate_per_ms = schedule.rate_rps(sim.now) / 1000.0
                sim.schedule(sample_exp(rate_per_ms), arrive)

            def arrive() -> None:
                if state["done"]:
                    return
                schedule_arrival()
                issue()

            def begin_measurement() -> None:
                state["measuring"] = True

            def end_run() -> None:
                state["done"] = True
                sim.stop()

            if self._warmup_ms > 0:
                sim.schedule_at(self._warmup_ms, begin_measurement)
            sim.schedule_at(state["t1"], end_run)
            schedule_arrival()
        else:
            for _ in range(self._clients):
                client_loop()
        sim.run()

        if not state["done"]:
            raise RuntimeError("cluster simulation ended before measurement")
        if not blade_state["up"]:
            down = sim.now - blade_state["down_since"]
            report.blade_downtime_ms += down
            blade_state["down_since"] = sim.now
            if recovery_report is not None and recovery is None:
                downtime = recovery_report.blade_downtime_ms
                downtime[0] = downtime.get(0, 0.0) + down
        if tracker is not None:
            tracker.finalize(sim.now)
        if recovery is not None:
            recovery.finalize(sim.now)
        if maintenance is not None and maintenance.windows:
            # Windows still open when measurement ended.
            for index, since in list(drain_started.items()):
                recovery_report.drain_ms += sim.now - since
                drain_started.pop(index)
        if injector is not None:
            report.injected_failures = {
                ctype.value: count
                for ctype, count in injector.failure_counts.items()
            }
        if tracer is not None:
            tracer.finalize(sim.now)
        failslow_report: Optional[FailSlowReport] = None
        if detector is not None:
            failslow_report = detector.finalize(sim.now)
        if self._failslow is not None:
            if failslow_report is None:
                failslow_report = FailSlowReport()
            failslow_report.drifting_servers = self._failslow.drifting_servers
        window_s = max(state["t1"] - state["t0"], 1e-9) / 1000.0
        throughput = len(responses) / window_s
        if metrics is not None:
            metrics.counter("cluster.timeouts").inc(report.timeouts)
            metrics.counter("cluster.retries").inc(report.retries)
            metrics.counter("cluster.hedges").inc(report.hedges)
            metrics.counter("cluster.gave_up").inc(report.gave_up)
            metrics.counter("cluster.lost_in_flight").inc(report.lost_in_flight)
            metrics.gauge("cluster.throughput_rps").set(throughput)
            if failslow_report is not None:
                metrics.counter("cluster.failslow.ejections").inc(
                    failslow_report.ejections
                )
                metrics.counter("cluster.failslow.readmissions").inc(
                    failslow_report.readmissions
                )
                metrics.counter("cluster.failslow.probes").inc(
                    failslow_report.probes
                )
            for server in servers:
                metrics.gauge(
                    "cluster.completions", server=server.index
                ).set(server.completions)
                cache = getattr(server.disk_model, "cache", None)
                if cache is not None:
                    cache.export_metrics(metrics, server=server.index)
        # A recovery run only attaches the fault report when its config
        # can actually produce fault activity (scripted blade faults or
        # maintenance drains): attaching an all-zero report to a healthy
        # protected run would break its digest equality with the
        # unprotected stream.
        recovery_activity = (
            redundancy is not None and bool(redundancy.blade_faults)
        ) or (maintenance is not None and bool(maintenance.windows))
        attach_report = (
            track_faults or retry is not None or policy is not None
            or recovery_activity
        )
        return ClusterResult(
            servers=self._servers,
            throughput_rps=throughput,
            mean_response_ms=(
                sum(responses) / len(responses) if responses else 0.0
            ),
            qos_percentile_ms=(
                qos.percentile_ms() if qos and qos.count else 0.0
            ),
            qos_met=qos.satisfied() if qos else True,
            per_server_rps=throughput / self._servers,
            server_completions=[s.completions for s in servers],
            qos_violation_rate=qos.violation_rate() if qos else 0.0,
            availability=(
                tracker.mean_availability("rotation/")
                if tracker is not None
                else 1.0
            ),
            fault_report=report if attach_report else None,
            offered_rps=state["offered"] / window_s,
            goodput_rps=state["good"] / window_s,
            p99_ms=(
                qos.percentile_ms(0.99) if qos and qos.count else 0.0
            ),
            overload_report=overload_report,
            failslow_report=failslow_report,
            recovery_report=recovery_report,
        )

    def _inject_faults(
        self,
        sim: Simulation,
        servers: List[_Server],
        blade_state: dict,
        take_down,
        bring_up,
        tracker: Optional[AvailabilityTracker],
        report: FaultReport,
        recovery: Optional[RecoveryOrchestrator] = None,
    ) -> FaultInjector:
        """Register every hardware component with the fault injector."""
        assert self._faults is not None
        injector = FaultInjector(
            sim, self._faults, seed=self._fault_seed, tracker=tracker
        )

        for index, server in enumerate(servers):
            for ctype, label in (
                (ComponentType.SERVER, "hw"),
                (ComponentType.DISK, "disk"),
                (ComponentType.NIC, "nic"),
            ):
                injector.register(
                    f"server{index}/{label}",
                    ctype,
                    on_fail=lambda i=index: take_down(i),
                    on_repair=lambda i=index: bring_up(i),
                )
            disk_model = server.disk_model
            if hasattr(disk_model, "fail") and hasattr(disk_model, "recover"):
                injector.register(
                    f"server{index}/flash",
                    ComponentType.FLASH_CACHE,
                    on_fail=disk_model.fail,
                    on_repair=disk_model.recover,
                )

        if self._remote_memory is not None and recovery is not None:
            # Redundant placement: each blade in the group is its own
            # fault domain; the orchestrator handles failover routing
            # and schedules the rebuild when the replacement arrives.
            for b in range(recovery.group.nblades):
                injector.register(
                    f"blade{b}",
                    ComponentType.MEMORY_BLADE,
                    on_fail=lambda bb=b: recovery.blade_failed(bb),
                    on_repair=lambda bb=b: recovery.blade_repaired(bb),
                )
        elif self._remote_memory is not None:
            # Correlated domain: one blade fault degrades every attached
            # server at once (local-memory-only mode), and the repair
            # restores them together.
            def blade_failed() -> None:
                blade_state["up"] = False
                blade_state["down_since"] = sim.now

            def blade_repaired() -> None:
                blade_state["up"] = True
                report.blade_downtime_ms += sim.now - blade_state["down_since"]

            domain = injector.register_domain("blade", ComponentType.MEMORY_BLADE)
            domain.attach(blade_failed, blade_repaired)
            for server in servers:
                def degrade(s=server) -> None:
                    s.blade_down = True

                def restore(s=server) -> None:
                    s.blade_down = False

                domain.attach(degrade, restore)

        for start in range(0, len(servers), self._enclosure_size):
            members = list(range(start, min(start + self._enclosure_size,
                                            len(servers))))
            enclosure = start // self._enclosure_size
            fan = injector.register_domain(
                f"enclosure{enclosure}/fan", ComponentType.ENCLOSURE_FAN
            )
            psu = injector.register_domain(
                f"enclosure{enclosure}/psu", ComponentType.ENCLOSURE_PSU
            )
            for index in members:
                def throttle(i=index) -> None:
                    servers[i].cpu_throttle = FAN_DEGRADED_THROTTLE

                def unthrottle(i=index) -> None:
                    servers[i].cpu_throttle = 1.0

                # Fan loss degrades (thermal throttle); PSU loss is an
                # outage for the whole enclosure.
                fan.attach(throttle, unthrottle)
                psu.attach(
                    lambda i=index: take_down(i), lambda i=index: bring_up(i)
                )

        return injector
