"""Amdahl's-law limits on scale-out (paper section 4).

The paper's caveat: "our proposed solution assumes that the workload can
be partitioned to match the new levels of scale-out.  In reality, this
cannot be taken to extremes ... decreased efficiency of software
algorithms, increased sizes of software data structures, increased
latency variabilities, greater networking overheads."

:class:`ScaleOutModel` quantifies that caveat.  Replacing ``n0`` big
servers with ``n`` small ones changes cluster throughput by

    X(n) = n * x_server * partition_efficiency(n)

where the partition efficiency combines a serial (unpartitionable)
fraction, a per-server coordination/networking overhead, and a
data-structure inflation term that grows with the partition count
(each shard duplicates index/dictionary structures).  The model answers
the paper's open question -- the minimum capacity per server where
Amdahl's law bites -- by locating the partition count beyond which
aggregate throughput stops improving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def amdahl_speedup(n: float, serial_fraction: float) -> float:
    """Classic Amdahl speedup of ``n``-way parallelism."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= serial_fraction <= 1:
        raise ValueError("serial fraction must be in [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n)


@dataclass(frozen=True)
class ScaleOutModel:
    """Partitioning-efficiency model for one workload.

    ``serial_fraction``: share of per-request work that cannot be
    partitioned (request parsing, result aggregation).
    ``coordination_overhead``: extra work per request per doubling of the
    partition count (fan-out/merge networking).
    ``datastructure_inflation``: fractional growth of per-shard work per
    doubling (duplicated dictionaries, inflated indexes).
    """

    serial_fraction: float = 0.02
    coordination_overhead: float = 0.01
    datastructure_inflation: float = 0.015

    def __post_init__(self) -> None:
        if not 0 <= self.serial_fraction <= 1:
            raise ValueError("serial fraction must be in [0, 1]")
        if self.coordination_overhead < 0 or self.datastructure_inflation < 0:
            raise ValueError("overheads must be >= 0")

    def partition_efficiency(self, partitions: int) -> float:
        """Useful-work fraction when sharded ``partitions`` ways."""
        if partitions <= 0:
            raise ValueError("partition count must be positive")
        doublings = math.log2(partitions) if partitions > 1 else 0.0
        overhead = (
            self.coordination_overhead + self.datastructure_inflation
        ) * doublings
        amdahl = amdahl_speedup(partitions, self.serial_fraction) / partitions
        return amdahl / (1.0 + overhead)

    def cluster_throughput(self, servers: int, per_server_throughput: float) -> float:
        """Aggregate throughput of ``servers`` identical shards."""
        if per_server_throughput < 0:
            raise ValueError("per-server throughput must be >= 0")
        return servers * per_server_throughput * self.partition_efficiency(servers)

    def effective_servers(self, servers: int) -> float:
        """Servers' worth of useful capacity after partitioning losses."""
        return servers * self.partition_efficiency(servers)

    def max_useful_partitions(self, limit: int = 1 << 20) -> int:
        """Partition count beyond which aggregate throughput declines."""
        best_n, best_x = 1, self.cluster_throughput(1, 1.0)
        n = 1
        while n < limit:
            n *= 2
            x = self.cluster_throughput(n, 1.0)
            if x <= best_x:
                # Refine between the last improving power of two and n.
                lo, hi = best_n, n
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if self.cluster_throughput(mid, 1.0) > best_x:
                        lo, best_x = mid, self.cluster_throughput(mid, 1.0)
                    else:
                        hi = mid
                return lo
            best_n, best_x = n, x
        return best_n

    def equivalence_ratio(
        self, small_per_server: float, big_per_server: float,
        big_servers: int,
    ) -> float:
        """How many small servers replace one big server, with overheads.

        Solves for the small-server count that matches the big cluster's
        aggregate throughput and returns ``small_count / big_servers``.
        The naive ratio is ``big_per_server / small_per_server``; the
        returned value is larger because the deeper partitioning is less
        efficient -- the paper's warning against "overestimating benefits
        for smaller platforms".
        """
        if min(small_per_server, big_per_server) <= 0 or big_servers <= 0:
            raise ValueError("throughputs and server count must be positive")
        target = self.cluster_throughput(big_servers, big_per_server)
        n = big_servers
        while self.cluster_throughput(n, small_per_server) < target:
            n += max(1, n // 50)
            if n > (1 << 26):  # throughput has plateaued below the target
                return float("inf")
        return n / big_servers
