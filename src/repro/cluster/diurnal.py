"""Time-of-day load and ensemble energy (paper section 4 caveat).

The paper notes that real deployments see diurnal request distributions
(citing Fan et al.) while its study uses sustained load only.  This
module supplies the missing piece:

- :class:`DiurnalLoadModel`: a day-long load profile -- a sinusoid with a
  configurable peak-to-trough ratio plus optional weekday modulation --
  normalized so its *peak* equals 1.0 (fleets are provisioned for peak).
- :class:`EnsembleEnergyModel`: converts the profile plus a fleet size
  into daily energy, with an idle-power fraction (servers rarely idle at
  zero watts; Fan et al. report ~50-60% of peak at idle) and an optional
  ensemble power-management mode that parks idle servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class DiurnalLoadModel:
    """Normalized load profile over a 24-hour day."""

    peak_to_trough: float = 3.0
    peak_hour: float = 20.0  # evening peak, typical for consumer services
    weekend_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_to_trough < 1.0:
            raise ValueError("peak-to-trough ratio must be >= 1")
        if not 0 <= self.peak_hour < 24:
            raise ValueError("peak hour must be in [0, 24)")
        if not 0 < self.weekend_factor <= 1.0:
            raise ValueError("weekend factor must be in (0, 1]")

    def load_at(self, hour: float) -> float:
        """Relative load in [trough/peak, 1] at a given hour of day."""
        trough = 1.0 / self.peak_to_trough
        mid = (1.0 + trough) / 2.0
        amplitude = (1.0 - trough) / 2.0
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        return mid + amplitude * math.cos(phase)

    def hourly_profile(self) -> List[float]:
        """24 hourly load samples (midpoints)."""
        return [self.load_at(h + 0.5) for h in range(24)]

    @property
    def mean_utilization(self) -> float:
        """Average load relative to peak over the day."""
        profile = self.hourly_profile()
        return sum(profile) / len(profile)


@dataclass(frozen=True)
class EnsembleEnergyModel:
    """Daily fleet energy under a diurnal profile.

    ``idle_power_fraction``: power at zero load relative to peak power
    (per server); power scales linearly with load between idle and peak.
    ``parkable_fraction``: with ensemble power management, the share of
    the fleet that can be fully powered off at the daily trough (ramping
    linearly with load headroom).
    """

    peak_power_w: float
    idle_power_fraction: float = 0.6
    parkable_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_power_w <= 0:
            raise ValueError("peak power must be positive")
        if not 0 <= self.idle_power_fraction <= 1:
            raise ValueError("idle power fraction must be in [0, 1]")
        if not 0 <= self.parkable_fraction < 1:
            raise ValueError("parkable fraction must be in [0, 1)")

    def server_power_w(self, load: float) -> float:
        """One active server's draw at a given relative load."""
        if not 0 <= load <= 1:
            raise ValueError("load must be in [0, 1]")
        idle = self.idle_power_fraction * self.peak_power_w
        return idle + (self.peak_power_w - idle) * load

    def fleet_power_w(self, servers: int, load: float) -> float:
        """Fleet draw at a given relative load, with optional parking."""
        if servers <= 0:
            raise ValueError("fleet must have servers")
        if self.parkable_fraction <= 0:
            return servers * self.server_power_w(load)
        # Park up to parkable_fraction of servers as load drops; the
        # remaining servers run proportionally hotter.
        parked = self.parkable_fraction * (1.0 - load) * servers
        active = max(servers - parked, servers * (1 - self.parkable_fraction))
        per_server_load = min(1.0, load * servers / active)
        return active * self.server_power_w(per_server_load)

    def daily_energy_kwh(self, servers: int, profile: DiurnalLoadModel) -> float:
        """Fleet energy over one day, kWh."""
        total_w_hours = sum(
            self.fleet_power_w(servers, load) for load in profile.hourly_profile()
        )
        return total_w_hours / 1000.0

    def parking_savings(self, servers: int, profile: DiurnalLoadModel) -> float:
        """Fractional daily-energy saving from ensemble parking."""
        baseline = EnsembleEnergyModel(
            self.peak_power_w, self.idle_power_fraction, 0.0
        ).daily_energy_kwh(servers, profile)
        managed = self.daily_energy_kwh(servers, profile)
        return 1.0 - managed / baseline
