"""Analytic per-server serving capacity (shared sizing helper).

EXT-10 and the scenario compiler both provision open-loop traffic as a
fraction of a cluster's *analytic* capacity; this module is the single
implementation so a scenario-compiled run and the hand-wired experiment
compute bit-identical arrival rates (the digest-equality contract).

With a remote-memory blade, the remote-miss trap handling is folded
into the CPU demand and the result is bounded by the shared blade link
(one link serves the whole cluster).
"""

from __future__ import annotations

from repro.simulator.performance import measure_performance


def per_server_capacity_rps(
    platform,
    workload,
    *,
    remote_memory=None,
    disk_model=None,
    servers: int = 1,
) -> float:
    """Analytic steady-state capacity of one server, in requests/s."""
    slowdown = 1.0
    if remote_memory is not None:
        mean = workload.mean_demand()
        profile = workload.profile
        cpu_ms = platform.cpu_time_ms(
            mean.cpu_ms_ref,
            profile.cache_sensitivity,
            profile.inorder_ipc_factor,
            profile.stall_fraction,
        )
        slowdown = 1.0 + remote_memory.trap_cpu_ms(mean) / cpu_ms
    capacity = measure_performance(
        platform, workload, disk_model=disk_model,
        memory_slowdown=slowdown, method="analytic",
    ).throughput_rps
    if remote_memory is not None:
        link_ms = remote_memory.link_time_ms(workload.mean_demand())
        if link_ms > 0:
            capacity = min(capacity, 1000.0 / link_ms / servers)
    return capacity


def surge_queue_cap(capacity_rps: float, timeout_ms: float) -> int:
    """Protected-queue bound: a queue holds at most ~half the retry
    timeout's worth of per-server work, so even a full queue can still
    meet the deadline of the request at its tail (the EXT-10 rule)."""
    return max(4, int(capacity_rps * timeout_ms / 1000.0 * 0.5))


def open_loop_rate_rps(
    utilization: float,
    capacity_rps_per_server: float,
    servers: int,
) -> float:
    """Cluster offered load at a target utilization of analytic capacity."""
    return utilization * capacity_rps_per_server * servers


__all__ = [
    "per_server_capacity_rps",
    "surge_queue_cap",
    "open_loop_rate_rps",
]
