"""Workload-aware heterogeneous fleets (an extension the data begs for).

Figure 2(c) shows no single platform wins everywhere: webmail prefers
big cores, ytube and mapreduce prefer embedded, websearch sits between.
A datacenter running a *mix* of services can therefore beat any
homogeneous fleet by assigning each service to its best Perf/TCO-$
platform.

:class:`FleetOptimizer` does that arithmetic: given per-(platform,
service) throughputs, per-platform TCO, and a demand vector (aggregate
RPS per service), it sizes

- the best homogeneous fleet (one platform for everything), and
- the heterogeneous fleet (each service on its cheapest platform),

and reports the cost of forcing homogeneity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping


@dataclass(frozen=True)
class ServiceAssignment:
    """One service placed on one platform."""

    service: str
    platform: str
    servers: int
    fleet_cost_usd: float


@dataclass(frozen=True)
class FleetPlan:
    """A complete placement of every service."""

    label: str
    assignments: List[ServiceAssignment]

    @property
    def total_cost_usd(self) -> float:
        return sum(a.fleet_cost_usd for a in self.assignments)

    @property
    def total_servers(self) -> int:
        return sum(a.servers for a in self.assignments)

    def platform_of(self, service: str) -> str:
        for assignment in self.assignments:
            if assignment.service == service:
                return assignment.platform
        raise KeyError(f"service {service!r} not in plan")


class FleetOptimizer:
    """Sizes homogeneous and heterogeneous fleets for a service mix."""

    def __init__(
        self,
        throughput_rps: Mapping[str, Mapping[str, float]],
        tco_usd: Mapping[str, float],
    ):
        """``throughput_rps`` maps service -> platform -> per-server RPS;
        ``tco_usd`` maps platform -> per-server TCO."""
        if not throughput_rps:
            raise ValueError("need at least one service")
        platforms = None
        for service, per_platform in throughput_rps.items():
            names = set(per_platform)
            if platforms is None:
                platforms = names
            elif names != platforms:
                raise ValueError(
                    f"service {service!r} has a different platform set"
                )
            if any(v <= 0 for v in per_platform.values()):
                raise ValueError(f"throughputs for {service!r} must be positive")
        assert platforms is not None
        missing = platforms - set(tco_usd)
        if missing:
            raise ValueError(f"missing TCO for platforms: {sorted(missing)}")
        if any(v <= 0 for v in tco_usd.values()):
            raise ValueError("TCO values must be positive")
        self._throughput = {s: dict(p) for s, p in throughput_rps.items()}
        self._tco = dict(tco_usd)
        self._platforms = sorted(platforms)

    def _assignment(
        self, service: str, platform: str, demand_rps: float
    ) -> ServiceAssignment:
        servers = math.ceil(demand_rps / self._throughput[service][platform])
        return ServiceAssignment(
            service=service,
            platform=platform,
            servers=servers,
            fleet_cost_usd=servers * self._tco[platform],
        )

    def homogeneous_plan(
        self, platform: str, demand_rps: Mapping[str, float]
    ) -> FleetPlan:
        """Every service on one platform."""
        self._check_demand(demand_rps)
        if platform not in self._platforms:
            raise KeyError(f"unknown platform {platform!r}")
        return FleetPlan(
            label=f"homogeneous-{platform}",
            assignments=[
                self._assignment(service, platform, rps)
                for service, rps in demand_rps.items()
            ],
        )

    def best_homogeneous_plan(self, demand_rps: Mapping[str, float]) -> FleetPlan:
        """The cheapest single-platform fleet."""
        plans = [
            self.homogeneous_plan(platform, demand_rps)
            for platform in self._platforms
        ]
        return min(plans, key=lambda p: p.total_cost_usd)

    def heterogeneous_plan(self, demand_rps: Mapping[str, float]) -> FleetPlan:
        """Each service on its individually cheapest platform."""
        self._check_demand(demand_rps)
        assignments = []
        for service, rps in demand_rps.items():
            best = min(
                (
                    self._assignment(service, platform, rps)
                    for platform in self._platforms
                ),
                key=lambda a: a.fleet_cost_usd,
            )
            assignments.append(best)
        return FleetPlan(label="heterogeneous", assignments=assignments)

    def homogeneity_premium(self, demand_rps: Mapping[str, float]) -> float:
        """Fractional extra cost of the best homogeneous fleet over the
        heterogeneous one (0 = mixing buys nothing)."""
        hetero = self.heterogeneous_plan(demand_rps).total_cost_usd
        homo = self.best_homogeneous_plan(demand_rps).total_cost_usd
        return homo / hetero - 1.0

    def _check_demand(self, demand_rps: Mapping[str, float]) -> None:
        unknown = set(demand_rps) - set(self._throughput)
        if unknown:
            raise KeyError(f"unknown services: {sorted(unknown)}")
        if any(v <= 0 for v in demand_rps.values()):
            raise ValueError("demands must be positive")
