"""Cluster/ensemble-level models (paper section 4 extensions).

The paper's evaluation scores single servers and assumes cluster
performance is the aggregation of single-machine results, flagging three
open issues in section 4 that this package addresses:

- :mod:`~repro.cluster.scaleout` -- Amdahl's-law limits on scale-out:
  serial work, per-server networking overhead, and data-structure
  inflation bound how far a workload can be partitioned, biasing against
  very small platforms.
- :mod:`~repro.cluster.balancer` -- a multi-server cluster simulation
  (load balancer in front of N simulated servers) used to validate the
  aggregation assumption and to measure cluster-level tail latency.
- :mod:`~repro.cluster.diurnal` -- time-of-day request distributions
  (the paper studies only sustained load) and the ensemble-level
  provisioning/energy questions they raise.
- :mod:`~repro.cluster.overload` -- overload protection (admission
  control, retry budgets, circuit breakers, brownout) and the surge
  schedules that exercise it in open-loop mode.
"""

from repro.cluster.scaleout import ScaleOutModel, amdahl_speedup
from repro.cluster.balancer import (
    ClusterSimulator,
    ClusterResult,
    Dispatch,
    FaultReport,
    RetryPolicy,
)
from repro.cluster.diurnal import DiurnalLoadModel, EnsembleEnergyModel
from repro.cluster.heterogeneous import FleetOptimizer, FleetPlan, ServiceAssignment
from repro.cluster.overload import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionVerdict,
    BreakerPolicy,
    BreakerState,
    BrownoutPolicy,
    CircuitBreaker,
    OverloadPolicy,
    OverloadReport,
    RetryBudget,
    RetryBudgetPolicy,
    SurgeSchedule,
    TokenBucket,
)

__all__ = [
    "ScaleOutModel",
    "amdahl_speedup",
    "ClusterSimulator",
    "ClusterResult",
    "Dispatch",
    "FaultReport",
    "RetryPolicy",
    "DiurnalLoadModel",
    "EnsembleEnergyModel",
    "FleetOptimizer",
    "FleetPlan",
    "ServiceAssignment",
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionVerdict",
    "BreakerPolicy",
    "BreakerState",
    "BrownoutPolicy",
    "CircuitBreaker",
    "OverloadPolicy",
    "OverloadReport",
    "RetryBudget",
    "RetryBudgetPolicy",
    "SurgeSchedule",
    "TokenBucket",
]
