"""Overload protection for the simulated cluster.

The paper provisions its ensembles for *sustained* utilization; real
warehouse front-ends also survive surges.  An unprotected serving stack
exhibits *metastable failure* under a transient overload: queues grow
past the client timeout, every response arrives too late, every timeout
triggers retries, and the retry load keeps the system saturated long
after the offered load has returned to normal (Bronson et al.,
"Metastable Failures in Distributed Systems"; Hamilton's modular-DC
argument in PAPERS.md makes the same brownout-over-failover case).

This module holds the protection mechanisms every production stack
layers in front of that failure mode, as small deterministic state
machines the discrete-event cluster simulator
(:class:`repro.cluster.balancer.ClusterSimulator`) drives:

- :class:`TokenBucket` / :class:`AdmissionPolicy` -- dispatcher-side
  admission control: a hard rate limit plus adaptive shedding once the
  observed queueing delay crosses a fraction of the QoS budget;
- :class:`RetryBudget` -- a retry-token bucket shared by the whole
  client population that caps the *amplification* a retry policy can
  apply to the offered load (the classic 10%-retry-budget rule);
- :class:`CircuitBreaker` -- per-server closed -> open -> half-open
  breaker that stops dispatching to a server whose recent outcomes are
  dominated by timeouts/rejections, with bounded half-open probes;
- :class:`BrownoutPolicy` -- overloaded servers serve a reduced
  service-demand variant of each request (dropping optional result
  decoration, as section 3's QoS discussion permits) so goodput
  degrades smoothly instead of cliffing;
- :class:`OverloadPolicy` -- the bundle the cluster simulator accepts,
  including the per-server queue bound and deadline-based shedding;
- :class:`OverloadReport` -- shed/reject/drop counters plus goodput,
  offered-load, and breaker-state :class:`~repro.simulator.telemetry.TimeSeries`;
- :class:`SurgeSchedule` -- a piecewise-constant open-loop arrival-rate
  schedule used to drive a cluster through a traffic surge.

Everything is deterministic: stochastic decisions (probabilistic
shedding) draw from the caller-provided seeded ``random.Random``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.simulator.telemetry import TimeSeries

__all__ = [
    "TokenBucket",
    "AdmissionPolicy",
    "AdmissionController",
    "AdmissionVerdict",
    "RetryBudgetPolicy",
    "RetryBudget",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "BrownoutPolicy",
    "OverloadPolicy",
    "OverloadReport",
    "SurgeSchedule",
]


class TokenBucket:
    """A token-bucket rate limiter over simulated time.

    Tokens accrue at ``rate_per_s`` up to ``burst``; admitting a request
    spends one token.  Deterministic: refill is computed from the
    simulated clock passed to :meth:`try_acquire`.
    """

    __slots__ = ("_rate_per_ms", "_burst", "_tokens", "_last_ms")

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self._rate_per_ms = rate_per_s / 1000.0
        self._burst = float(burst)
        self._tokens = float(burst)
        self._last_ms = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_acquire(self, now_ms: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available at ``now_ms``."""
        if now_ms < self._last_ms:
            raise ValueError("token-bucket time must be monotonic")
        self._tokens = min(
            self._burst, self._tokens + (now_ms - self._last_ms) * self._rate_per_ms
        )
        self._last_ms = now_ms
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class AdmissionVerdict(enum.Enum):
    """Outcome of one admission decision at the dispatcher."""

    ADMIT = "admit"
    RATE_LIMITED = "rate-limited"
    SHED = "shed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AdmissionPolicy:
    """Dispatcher admission control: rate limit + adaptive shedding.

    ``rate_limit_rps`` (optional) is a hard token-bucket ceiling on
    admitted new requests.  The adaptive part watches an EWMA of the
    delay between dispatch and the start of CPU service (the queueing
    the request actually experienced): once it exceeds
    ``slo_fraction`` x the QoS latency budget, new arrivals are shed
    probabilistically, ramping to ``max_shed_probability`` at
    2x the threshold.
    """

    rate_limit_rps: Optional[float] = None
    burst: float = 32.0
    slo_fraction: float = 0.5
    ewma_alpha: float = 0.1
    max_shed_probability: float = 0.98

    def __post_init__(self) -> None:
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError("rate limit must be positive")
        if not 0 < self.slo_fraction:
            raise ValueError("slo_fraction must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 <= self.max_shed_probability <= 1:
            raise ValueError("max_shed_probability must be in [0, 1]")


class AdmissionController:
    """Runtime state for an :class:`AdmissionPolicy`.

    ``slo_ms`` is the latency budget the shedding threshold is a
    fraction of (typically the workload's QoS limit or the retry
    timeout).  ``rng`` supplies the probabilistic-shed draws, so
    decisions are deterministic per seed.
    """

    __slots__ = ("policy", "_slo_ms", "_rng", "_bucket", "_delay_ewma")

    def __init__(self, policy: AdmissionPolicy, slo_ms: float, rng):
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        self.policy = policy
        self._slo_ms = slo_ms
        self._rng = rng
        self._bucket = (
            TokenBucket(policy.rate_limit_rps, policy.burst)
            if policy.rate_limit_rps is not None
            else None
        )
        self._delay_ewma = 0.0

    @property
    def delay_ewma_ms(self) -> float:
        """Smoothed observed queueing delay, ms."""
        return self._delay_ewma

    def observe_delay(self, delay_ms: float) -> None:
        """Feed one observed dispatch-to-service delay into the EWMA."""
        if delay_ms < 0:
            raise ValueError("delay must be >= 0")
        a = self.policy.ewma_alpha
        self._delay_ewma = (1 - a) * self._delay_ewma + a * delay_ms

    def shed_probability(self) -> float:
        """Current adaptive shed probability in [0, max_shed_probability]."""
        threshold = self.policy.slo_fraction * self._slo_ms
        if self._delay_ewma <= threshold:
            return 0.0
        ramp = (self._delay_ewma - threshold) / threshold
        return min(self.policy.max_shed_probability, ramp)

    def admit(self, now_ms: float) -> AdmissionVerdict:
        """Decide one new request's fate at ``now_ms``."""
        if self._bucket is not None and not self._bucket.try_acquire(now_ms):
            return AdmissionVerdict.RATE_LIMITED
        p = self.shed_probability()
        if p > 0.0 and self._rng.random() < p:
            return AdmissionVerdict.SHED
        return AdmissionVerdict.ADMIT


@dataclass(frozen=True)
class RetryBudgetPolicy:
    """Shared retry-token budget (caps retry amplification).

    Every *first* attempt deposits ``token_ratio`` tokens (capped at
    ``burst``); every retry withdraws one.  With the default ratio the
    whole client population can add at most ~10% retry load on top of
    the offered load, which is what keeps a retry storm from sustaining
    an overload after the surge has passed.
    """

    token_ratio: float = 0.1
    burst: float = 32.0

    def __post_init__(self) -> None:
        if not 0 <= self.token_ratio <= 1:
            raise ValueError("token_ratio must be in [0, 1]")
        if self.burst < 1:
            raise ValueError("burst must allow at least one retry")


class RetryBudget:
    """Runtime token pool for a :class:`RetryBudgetPolicy`."""

    __slots__ = ("policy", "_tokens")

    def __init__(self, policy: RetryBudgetPolicy):
        self.policy = policy
        self._tokens = float(policy.burst)

    @property
    def tokens(self) -> float:
        return self._tokens

    def note_request(self) -> None:
        """Deposit the per-request token fraction (first attempts only)."""
        self._tokens = min(
            self.policy.burst, self._tokens + self.policy.token_ratio
        )

    def try_spend(self) -> bool:
        """Withdraw one retry token; False means the retry is denied."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class BreakerState(enum.Enum):
    """Circuit-breaker state machine states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-server circuit breaker configuration.

    The breaker trips OPEN when, over the last ``window`` recorded
    outcomes (and at least ``min_samples`` of them), the failure
    fraction reaches ``failure_threshold``.  After ``open_ms`` it moves
    to HALF_OPEN and admits up to ``half_open_probes`` concurrent probe
    requests: one probe success closes it, one probe failure re-opens
    it for another ``open_ms``.
    """

    failure_threshold: float = 0.5
    window: int = 20
    min_samples: int = 10
    open_ms: float = 1000.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.failure_threshold <= 1:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be positive")
        if self.min_samples > self.window:
            raise ValueError("min_samples cannot exceed the window")
        if self.open_ms <= 0:
            raise ValueError("open_ms must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be positive")


class CircuitBreaker:
    """Closed -> open -> half-open breaker over a rolling outcome window.

    Purely clock-driven (no wall time): callers pass the simulated time
    into every method.  ``on_transition(now_ms, state)`` is invoked on
    every state change so callers can keep a state timeline.
    """

    __slots__ = (
        "policy", "state", "opens", "_outcomes", "_opened_at",
        "_probes_in_flight", "_on_transition",
    )

    def __init__(
        self,
        policy: BreakerPolicy,
        on_transition: Optional[Callable[[float, BreakerState], None]] = None,
    ):
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.opens = 0
        self._outcomes: Deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._on_transition = on_transition

    def _transition(self, now_ms: float, state: BreakerState) -> None:
        self.state = state
        if state is BreakerState.OPEN:
            self.opens += 1
            self._opened_at = now_ms
        if self._on_transition is not None:
            self._on_transition(now_ms, state)

    def _failure_fraction(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self, now_ms: float) -> bool:
        """May a request be dispatched to this server right now?"""
        if self.state is BreakerState.OPEN:
            if now_ms - self._opened_at >= self.policy.open_ms:
                self._probes_in_flight = 0
                self._transition(now_ms, BreakerState.HALF_OPEN)
            else:
                return False
        if self.state is BreakerState.HALF_OPEN:
            return self._probes_in_flight < self.policy.half_open_probes
        return True

    def note_dispatch(self, now_ms: float) -> bool:
        """Record a dispatch; returns True if it is a half-open probe."""
        if self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self, now_ms: float, probe: bool = False) -> None:
        if probe:
            self._probes_in_flight = max(self._probes_in_flight - 1, 0)
        if self.state is BreakerState.HALF_OPEN:
            # One healthy probe closes the breaker and forgets the storm.
            self._outcomes.clear()
            self._transition(now_ms, BreakerState.CLOSED)
            return
        self._outcomes.append(True)

    def reset(self, now_ms: float) -> None:
        """Forget the outcome window and close the breaker.

        Used by the gray-failure detector when it re-admits a server
        from probation: the failures the breaker accumulated were the
        fail-slow episode's doing, and probes have since proved the
        server healthy -- stale evidence must not keep it dark.
        """
        self._outcomes.clear()
        self._probes_in_flight = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(now_ms, BreakerState.CLOSED)

    def record_failure(self, now_ms: float, probe: bool = False) -> None:
        if probe:
            self._probes_in_flight = max(self._probes_in_flight - 1, 0)
        if self.state is BreakerState.HALF_OPEN:
            self._transition(now_ms, BreakerState.OPEN)
            return
        if self.state is BreakerState.OPEN:
            return
        self._outcomes.append(False)
        if (
            len(self._outcomes) >= self.policy.min_samples
            and self._failure_fraction() >= self.policy.failure_threshold
        ):
            self._transition(now_ms, BreakerState.OPEN)


@dataclass(frozen=True)
class BrownoutPolicy:
    """Serve a reduced-demand request variant while overloaded.

    When a server's outstanding work reaches ``enter_outstanding``, its
    requests are served at ``demand_factor`` x the sampled demand
    (models dropping optional result decoration -- fewer index
    segments, no related-videos pane -- which section 3's QoS framing
    permits as long as the latency bound holds).
    """

    demand_factor: float = 0.6
    enter_outstanding: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.demand_factor <= 1:
            raise ValueError("demand_factor must be in (0, 1]")
        if self.enter_outstanding < 1:
            raise ValueError("enter_outstanding must be positive")


@dataclass(frozen=True)
class OverloadPolicy:
    """The full protection stack the cluster simulator can apply.

    Any layer can be disabled by setting it to ``None`` (or
    ``queue_cap=None`` for unbounded queues, the pre-overload-PR
    behaviour).  ``deadline_shedding`` drops an attempt at the moment
    CPU service would start if its timeout has already expired or
    cannot be met -- stale work is shed instead of served uselessly.
    """

    queue_cap: Optional[int] = 64
    deadline_shedding: bool = True
    admission: Optional[AdmissionPolicy] = field(
        default_factory=AdmissionPolicy
    )
    retry_budget: Optional[RetryBudgetPolicy] = field(
        default_factory=RetryBudgetPolicy
    )
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    brownout: Optional[BrownoutPolicy] = field(default_factory=BrownoutPolicy)
    #: Bucket width of the goodput/offered/breaker time series.
    telemetry_bucket_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError("queue_cap must be positive (or None)")
        if self.telemetry_bucket_ms <= 0:
            raise ValueError("telemetry bucket must be positive")

    @classmethod
    def unprotected(cls, telemetry_bucket_ms: float = 500.0) -> "OverloadPolicy":
        """No protection at all -- telemetry only (the naive baseline)."""
        return cls(
            queue_cap=None,
            deadline_shedding=False,
            admission=None,
            retry_budget=None,
            breaker=None,
            brownout=None,
            telemetry_bucket_ms=telemetry_bucket_ms,
        )


@dataclass
class OverloadReport:
    """Overload-protection counters and telemetry for one cluster run."""

    #: Dispatches refused because every candidate queue was at its cap.
    rejected_queue_full: int = 0
    #: Attempts dropped at service start because their deadline had
    #: passed (or provably could not be met).
    shed_deadline: int = 0
    #: New requests shed by the adaptive admission controller.
    shed_admission: int = 0
    #: New requests refused by the token-bucket rate limiter.
    rate_limited: int = 0
    #: Dispatches refused because every candidate breaker was open.
    breaker_rejections: int = 0
    #: Closed/half-open -> open breaker transitions across all servers.
    breaker_opens: int = 0
    #: Requests served in reduced-demand brownout mode.
    brownout_requests: int = 0
    #: Retries denied by the shared retry budget.
    retries_denied: int = 0
    #: Completions (any latency) per telemetry bucket.
    completed: TimeSeries = field(
        default_factory=lambda: TimeSeries(bucket_ms=500.0)
    )
    #: QoS-meeting completions per telemetry bucket.
    goodput: TimeSeries = field(
        default_factory=lambda: TimeSeries(bucket_ms=500.0)
    )
    #: New (first-attempt) requests offered per telemetry bucket.
    offered: TimeSeries = field(
        default_factory=lambda: TimeSeries(bucket_ms=500.0)
    )
    #: Breaker transitions to OPEN per telemetry bucket.
    breaker_open_series: TimeSeries = field(
        default_factory=lambda: TimeSeries(bucket_ms=500.0)
    )

    @property
    def total_shed(self) -> int:
        """Everything refused or dropped before useful service."""
        return (
            self.rejected_queue_full
            + self.shed_deadline
            + self.shed_admission
            + self.rate_limited
            + self.breaker_rejections
        )


@dataclass(frozen=True)
class SurgeSchedule:
    """Piecewise-constant open-loop arrival rate with one surge window.

    Arrivals are a Poisson process at ``base_rate_rps``, multiplied by
    ``surge_multiplier`` inside ``[surge_start_ms, surge_end_ms)``.
    Used by :class:`~repro.cluster.balancer.ClusterSimulator` in
    open-loop mode to model a diurnal peak or viral traffic spike
    against a cluster provisioned for the base rate.
    """

    base_rate_rps: float
    surge_multiplier: float = 5.0
    surge_start_ms: float = 0.0
    surge_end_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0:
            raise ValueError("base rate must be positive")
        if self.surge_multiplier < 1.0:
            raise ValueError("surge multiplier must be >= 1")
        if self.surge_start_ms < 0 or self.surge_end_ms < self.surge_start_ms:
            raise ValueError("surge window must be ordered and non-negative")

    def rate_rps(self, now_ms: float) -> float:
        """Offered arrival rate at simulated time ``now_ms``."""
        if self.surge_start_ms <= now_ms < self.surge_end_ms:
            return self.base_rate_rps * self.surge_multiplier
        return self.base_rate_rps
