"""Availability under faults: section 3.6's comparison with hardware failing.

The paper evaluates srvr1, N1, and N2 assuming every component is always
up, and argues (section 2) that warehouse deployments push
high-availability out of the hardware and "into the application stack".
This experiment prices that assumption and then tests the application
stack it implies:

- *cost layer*: using real-timescale MTBF/MTTR figures
  (:data:`repro.faults.DEFAULT_FAULT_PROFILE`) each design's serving
  path gets an expected repair bill and a series availability over the
  three-year cycle, giving an availability-weighted Perf/TCO-$ --
  ``perf x availability / (TCO + repair)`` -- relative to srvr1.
  Components with a graceful-degradation path (memory blade, flash
  cache, enclosure fan) earn partial credit instead of an outage.
- *behaviour layer*: each design's cluster is re-run under stochastic
  fault injection with the balancer's full degradation stack enabled
  (health checks, 500 ms timeout, 3 bounded retries with backoff,
  hedging at 250 ms).  Real MTBFs are 10^4-10^6 hours while a simulated
  run spans about a minute, so injection uses
  :data:`STRESS_FAULT_PROFILE`, an accelerated profile (MTBFs of
  40-480 *seconds*) that compresses three years of failure phenomenology
  into the window.  The interesting contrast is N2: its shared memory
  blade is a *correlated* failure domain -- one blade fault degrades
  every attached server to local-memory-only mode at once -- which shows
  up as a tail-latency spike that the retry/hedging machinery must keep
  from becoming QoS collapse.

Run on websearch (the heaviest remote-memory traffic and the tightest
QoS bound in the suite, 500 ms at the 95th percentile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.core.designs import baseline_design, n1_design, n2_design
from repro.costmodel.availability import RepairCostModel
from repro.costmodel.tco import TcoModel
from repro.costmodel.power import PowerModel
from repro.experiments.reporting import (
    ExperimentResult,
    dollars,
    format_table,
    percent,
)
from repro.faults.model import (
    ComponentType,
    DEFAULT_FAULT_PROFILE,
    FaultProfile,
    FaultSpec,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.workloads.suite import make_workload

_WORKLOAD = "websearch"
_TRACE_LENGTH = 200_000

#: Degradation stack used by every faulted run: timeout at the QoS bound,
#: three retries with exponential backoff, hedge at half the timeout.
RETRY_POLICY = RetryPolicy(
    timeout_ms=500.0, max_retries=3, backoff_base_ms=20.0, hedge_after_ms=250.0
)


def _seconds(mtbf_s: float, mttr_s: float) -> FaultSpec:
    return FaultSpec(mtbf_hours=mtbf_s / 3600.0, mttr_hours=mttr_s / 3600.0)


#: Accelerated profile for fault *injection* (MTBF/MTTR in seconds of
#: simulated time).  A measured window is ~60 s, so these rates make each
#: component class fail a handful of times per run -- the same relative
#: failure mix as :data:`DEFAULT_FAULT_PROFILE`, compressed.  Cost math
#: never uses this profile.
STRESS_FAULT_PROFILE = FaultProfile(
    "stress-60s-window",
    {
        ComponentType.SERVER: _seconds(90.0, 3.0),
        ComponentType.DISK: _seconds(240.0, 5.0),
        ComponentType.NIC: _seconds(480.0, 2.0),
        ComponentType.MEMORY_BLADE: _seconds(40.0, 3.0),
        ComponentType.FLASH_CACHE: _seconds(120.0, 3.0),
        ComponentType.ENCLOSURE_FAN: _seconds(150.0, 5.0),
        ComponentType.ENCLOSURE_PSU: _seconds(300.0, 4.0),
    },
)

#: Relative performance retained while a gracefully-degrading component
#: is down (used for the cost layer's availability credit): a fan loss
#: thermally throttles CPUs by 1.5x; a blade loss drops to
#: local-memory-only paging; a flash loss falls back to the raw disk.
DEGRADED_CREDIT: Dict[ComponentType, float] = {
    ComponentType.ENCLOSURE_FAN: 1.0 / 1.5,
    ComponentType.MEMORY_BLADE: 0.5,
    ComponentType.FLASH_CACHE: 0.8,
}

#: Servers sharing one enclosure (N1/N2 packaging) or one memory blade.
_ENCLOSURE_SHARE = 8
_BLADE_SHARE = 8


@dataclass(frozen=True)
class _DesignSetup:
    """Everything needed to simulate and price one design under faults."""

    name: str
    design: object
    #: Serving-path component classes for repair pricing / availability.
    components: tuple
    #: Servers splitting each shared component's repair bill.
    shared: Dict[ComponentType, int]
    #: Enclosure-level fault blast radius in the simulation: 1 for
    #: conventional 1U packaging (each server owns its fans/PSU), the
    #: whole sub-cluster for blade enclosures.
    enclosure_size: Optional[int]
    uses_remote_memory: bool = False
    uses_flash: bool = False


def _setups() -> list:
    base_path = (
        ComponentType.SERVER,
        ComponentType.DISK,
        ComponentType.NIC,
        ComponentType.ENCLOSURE_FAN,
        ComponentType.ENCLOSURE_PSU,
    )
    return [
        _DesignSetup(
            name="srvr1",
            design=baseline_design("srvr1"),
            components=base_path,
            shared={},
            enclosure_size=1,
        ),
        _DesignSetup(
            name="N1",
            design=n1_design(),
            components=base_path,
            shared={
                ComponentType.ENCLOSURE_FAN: _ENCLOSURE_SHARE,
                ComponentType.ENCLOSURE_PSU: _ENCLOSURE_SHARE,
            },
            enclosure_size=None,  # one shared enclosure for the sub-cluster
        ),
        _DesignSetup(
            name="N2",
            design=n2_design(),
            components=base_path
            + (ComponentType.MEMORY_BLADE, ComponentType.FLASH_CACHE),
            shared={
                ComponentType.ENCLOSURE_FAN: _ENCLOSURE_SHARE,
                ComponentType.ENCLOSURE_PSU: _ENCLOSURE_SHARE,
                ComponentType.MEMORY_BLADE: _BLADE_SHARE,
            },
            enclosure_size=None,
            uses_remote_memory=True,
            uses_flash=True,
        ),
    ]


def _simulate(
    setup: _DesignSetup,
    servers: int,
    clients_per_server: int,
    warmup: int,
    measure: int,
    seed: int,
    fault_seed: int,
    profile: FaultProfile,
):
    """One healthy and one fault-injected run of a design's cluster."""
    plat = setup.design.platform
    workload = make_workload(_WORKLOAD)
    remote = None
    if setup.uses_remote_memory:
        remote = make_remote_memory_model(
            _WORKLOAD, local_fraction=0.25, trace_length=_TRACE_LENGTH
        )
    factory = None
    if setup.uses_flash:
        config = disk_configuration("remote-laptop+flash")
        factory = lambda: config.make_disk_model(_WORKLOAD)  # noqa: E731

    common = dict(
        platform=plat,
        workload=workload,
        servers=servers,
        clients_per_server=clients_per_server,
        seed=seed,
        warmup_requests=warmup,
        measure_requests=measure,
        disk_model_factory=factory,
        remote_memory=remote,
    )
    healthy = ClusterSimulator(**common).run()
    faulted = ClusterSimulator(
        **common,
        faults=profile,
        fault_seed=fault_seed,
        retry=RETRY_POLICY,
        enclosure_size=setup.enclosure_size or servers,
    ).run()
    return healthy, faulted


def run(
    servers: int = 6,
    clients_per_server: int = 6,
    warmup: int = 200,
    measure: int = 1800,
    seed: int = 1,
    fault_seed: int = 7,
    profile: Optional[FaultProfile] = None,
) -> ExperimentResult:
    """Re-run the srvr1/N1/N2 comparison with hardware failing."""
    profile = profile or STRESS_FAULT_PROFILE
    repair_model = RepairCostModel(DEFAULT_FAULT_PROFILE)
    data: Dict[str, Dict[str, object]] = {}

    cost_rows = []
    degraded_rows = []
    handling_rows = []
    weighted = {}
    for setup in _setups():
        healthy, faulted = _simulate(
            setup, servers, clients_per_server, warmup, measure,
            seed, fault_seed, profile,
        )
        breakdown = setup.design.tco_breakdown()
        model = TcoModel(power_model=PowerModel(rack=setup.design.rack()))
        adjusted = model.availability_adjusted(
            setup.design.bill(),
            repair_model,
            setup.components,
            shared=setup.shared,
            degraded=DEGRADED_CREDIT,
        )
        metric = adjusted.availability_weighted_perf_per_tco(
            healthy.per_server_rps
        )
        weighted[setup.name] = metric
        report = faulted.fault_report
        retention = (
            faulted.per_server_rps / healthy.per_server_rps
            if healthy.per_server_rps
            else 0.0
        )
        data[setup.name] = {
            "healthy_rps": healthy.per_server_rps,
            "faulted_rps": faulted.per_server_rps,
            "throughput_retention": retention,
            "healthy_p95_ms": healthy.qos_percentile_ms,
            "faulted_p95_ms": faulted.qos_percentile_ms,
            "qos_violation_rate": faulted.qos_violation_rate,
            "measured_availability": faulted.availability,
            "analytic_availability": adjusted.availability,
            "tco_usd": breakdown.total_usd,
            "repair_usd": adjusted.repair_usd,
            "adjusted_tco_usd": adjusted.total_usd,
            "weighted_perf_per_tco": metric,
            "injected_failures": dict(report.injected_failures),
            "timeouts": report.timeouts,
            "retries": report.retries,
            "hedges": report.hedges,
            "gave_up": report.gave_up,
            "lost_in_flight": report.lost_in_flight,
            "degraded_requests": report.degraded_requests,
            "cache_bypassed_requests": report.cache_bypassed_requests,
            "blade_downtime_ms": report.blade_downtime_ms,
        }
        cost_rows.append(
            (
                setup.name,
                f"{healthy.per_server_rps:.1f}",
                f"{adjusted.availability:.6f}",
                dollars(adjusted.repair_usd),
                dollars(adjusted.total_usd),
            )
        )
        degraded_rows.append(
            (
                setup.name,
                f"{healthy.qos_percentile_ms:.0f} ms",
                f"{faulted.qos_percentile_ms:.0f} ms",
                percent(faulted.qos_violation_rate),
                percent(retention),
                f"{faulted.availability:.3f}",
            )
        )
        handling_rows.append(
            (
                setup.name,
                sum(report.injected_failures.values()),
                report.timeouts,
                report.retries,
                report.hedges,
                report.gave_up,
                f"{report.blade_downtime_ms / 1000.0:.1f} s",
            )
        )

    base = weighted["srvr1"]
    for name, metric in weighted.items():
        data[name]["relative_weighted_perf_per_tco"] = metric / base
    for i, row in enumerate(cost_rows):
        name = row[0]
        cost_rows[i] = row + (
            percent(data[name]["relative_weighted_perf_per_tco"]),
        )

    data["fault_profile"] = profile.name
    data["retry_policy"] = {
        "timeout_ms": RETRY_POLICY.timeout_ms,
        "max_retries": RETRY_POLICY.max_retries,
        "backoff_base_ms": RETRY_POLICY.backoff_base_ms,
        "hedge_after_ms": RETRY_POLICY.hedge_after_ms,
    }

    sections = {
        "availability-weighted Perf/TCO-$ (3-year MTBFs, vs srvr1)": format_table(
            ["Design", "rps/server", "avail.", "repair", "TCO+repair",
             "weighted Perf/TCO-$"],
            cost_rows,
        ),
        "degraded operation (accelerated fault injection)": format_table(
            ["Design", "healthy p95", "faulted p95", "QoS viol.",
             "tput retained", "in-rotation"],
            degraded_rows,
        ),
        "fault handling": format_table(
            ["Design", "failures", "timeouts", "retries", "hedges",
             "gave up", "blade down"],
            handling_rows,
        ),
        "conclusion": (
            "repair costs and serving-path availability barely move the "
            "Perf/TCO-$ ranking -- N2's shared blade and flash add "
            "failure modes, but every one degrades instead of killing "
            "the path.  Under accelerated injection the correlated "
            "blade domain is visible as N2's tail-latency spike "
            "(every attached server drops to local-memory paging at "
            "once), yet timeouts, bounded retries, and hedging keep the "
            "QoS violation rate bounded and throughput within a few "
            "percent of healthy."
        ),
    }
    return ExperimentResult(
        experiment_id="EXT-8",
        title="Availability-weighted unified designs",
        paper_reference="sections 2 and 3.6 under faults",
        sections=sections,
        data=data,
    )
